"""Packaging for the MotherNets reproduction.

Kept as a plain ``setup.py`` (no ``pyproject.toml`` build isolation) so that
legacy editable installs (``pip install -e .``) work in offline environments
that lack the ``wheel`` package.  The version is the single source of truth in
``src/repro/__init__.py``.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def _read_version() -> str:
    text = (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text(encoding="utf-8")
    match = re.search(r'^__version__ = "([^"]+)"', text, re.MULTILINE)
    if not match:
        raise RuntimeError("could not find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-mothernets",
    version=_read_version(),
    description="Reproduction of MotherNets: Rapid Deep Ensemble Learning (MLSys 2020)",
    long_description=(Path(__file__).parent / "README.md").read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro = repro.__main__:main"]},
)

"""Partitioned job broker for the horizontal serving tier (stdlib only).

The queue-mode serving front (:class:`~repro.fleet.front.FleetFront`) does
not hand prediction requests to a local worker pool directly; it publishes
them onto a **broker** and lets consumer workers — in this process, in other
processes on this host, or on other hosts — lease, execute, and acknowledge
them.  The broker abstraction is deliberately Kafka-shaped (partitions,
round-robin publishing, consumer assignment, at-least-once delivery) so an
external broker can be slotted in later; :class:`InProcBroker` is the
dependency-free stdlib implementation that ships first, built on bounded
deques and one condition variable, and served to out-of-process consumers
through ``multiprocessing.managers`` (see :func:`serve_broker` /
:func:`connect_broker`).

Delivery semantics — **at-least-once**:

* ``publish`` appends a job to a partition chosen round-robin (bounded:
  :class:`BrokerFull` when every partition is at capacity — backpressure the
  HTTP front turns into a 503 rather than buffering unboundedly).
* ``lease`` hands a consumer the oldest job from one of its *assigned*
  partitions and starts a **visibility timeout**; a job not acked before the
  timeout is assumed lost with its consumer and is requeued at the front of
  its partition (``repro_fleet_redeliveries_total``).  A SIGKILL'd consumer
  therefore delays its in-flight jobs by at most one visibility window — it
  never loses them.
* ``ack`` completes a job with its result.  Because a slow-but-alive
  consumer's lease can expire and the job be redelivered, the same job can
  be executed twice; the first ack wins and later acks (and the requeued
  duplicate) are dropped.  Execution is idempotent here — predictions are
  pure — so duplicates cost only compute.
* ``nack`` requeues a failed job immediately; after ``max_deliveries``
  total deliveries the job completes with an error instead of looping
  forever.

Partition **assignment** is round-robin over attached consumers and
rebalances on every attach/detach.  Consumers that stop calling in (no
lease/ack within ``consumer_deadline`` seconds, their in-flight leases
expired) are reaped and their partitions reassigned, so a dead consumer's
*queued* jobs are picked up by survivors too, not just its in-flight ones.
A reaped consumer that was merely slow re-attaches implicitly on its next
lease call.

The background sweeper thread drives both clocks (lease expiry, consumer
expiry); everything else happens inside the calling thread under one broker
lock — call rates are request-scale, not row-scale, so a single lock is
plenty.
"""

from __future__ import annotations

import secrets
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.events import log_event
from repro.obs.metrics import get_registry
from repro.utils.logging import get_logger

logger = get_logger("fleet.broker")

_metrics = get_registry()
_QUEUE_DEPTH = _metrics.gauge(
    "repro_fleet_queue_depth",
    "Jobs waiting (not leased) in each broker partition.",
    ("partition",),
)
_REDELIVERIES = _metrics.counter(
    "repro_fleet_redeliveries_total",
    "Jobs requeued after their consumer's visibility timeout expired.",
)
_CONSUMERS = _metrics.gauge(
    "repro_fleet_consumers", "Consumers currently attached to the broker."
)
_JOBS = _metrics.counter(
    "repro_fleet_jobs_total",
    "Broker job lifecycle transitions.",
    ("event",),
)

__all__ = [
    "Broker",
    "BrokerFull",
    "CompletedJob",
    "InProcBroker",
    "Job",
    "connect_broker",
    "serve_broker",
]


class BrokerFull(RuntimeError):
    """Every partition is at capacity; the caller should shed load."""


@dataclass
class Job:
    """One unit of work as the consumer sees it (small and picklable).

    ``deliveries`` counts how many times the job has been handed out
    (1 on first delivery); ``enqueued`` is the broker process's monotonic
    clock at publish time — meaningful only broker-side, where it feeds the
    oldest-job-age stat and the end-to-end job latency histogram.
    """

    job_id: str
    payload: Any
    partition: int
    enqueued: float
    deliveries: int = 0


@dataclass
class CompletedJob:
    """One finished job as the front drains it from the broker."""

    job_id: str
    result: Any
    error: Optional[str]
    deliveries: int
    enqueued: float
    # Delta snapshot of the consumer's repro.obs registry (throttled; often
    # None) — the front merges it so /metrics aggregates the whole fleet.
    metrics: Optional[Dict[str, Dict[str, object]]] = None


@dataclass
class _Lease:
    job: Job
    consumer_id: str
    deadline: float


class Broker:
    """Abstract broker protocol the serving tier programs against.

    Everything the front and the consumers call goes through these seven
    methods, so an external broker (Kafka, SQS, Redis streams) only has to
    implement this surface.  :class:`InProcBroker` is the reference.
    """

    def publish(self, payload: Any, job_id: Optional[str] = None) -> str:
        raise NotImplementedError

    def attach(self, consumer_id: str) -> List[int]:
        raise NotImplementedError

    def detach(self, consumer_id: str) -> None:
        raise NotImplementedError

    def lease(self, consumer_id: str, timeout: float = 1.0) -> Optional[Job]:
        raise NotImplementedError

    def ack(
        self,
        consumer_id: str,
        job_id: str,
        result: Any,
        metrics: Optional[Dict[str, Dict[str, object]]] = None,
    ) -> bool:
        raise NotImplementedError

    def nack(self, consumer_id: str, job_id: str, error: str) -> None:
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        raise NotImplementedError

    # Control channel — broadcast commands (artifact hot-swaps) to every
    # attached consumer, with per-consumer acknowledgements so the front can
    # tell when the fleet has converged.
    def post_control(self, command: Dict[str, Any]) -> int:
        raise NotImplementedError

    def get_control(
        self, consumer_id: str, after: int
    ) -> Optional[Tuple[int, Dict[str, Any]]]:
        raise NotImplementedError

    def ack_control(
        self, consumer_id: str, revision: int, ok: bool, detail: Optional[str] = None
    ) -> None:
        raise NotImplementedError

    def control_status(self) -> Dict[str, Any]:
        raise NotImplementedError


class InProcBroker(Broker):
    """Stdlib in-process broker: bounded deques + one condition variable.

    Lives in the serving front's process; out-of-process consumers reach it
    through a ``multiprocessing.managers`` proxy (every proxy call executes
    *here*, in a manager server thread, so the metrics it touches land in
    the front's registry — exactly what ``/metrics`` scrapes).
    """

    def __init__(
        self,
        partitions: int = 4,
        partition_capacity: int = 1024,
        visibility_timeout: float = 30.0,
        max_deliveries: int = 5,
        consumer_deadline: Optional[float] = None,
        sweep_interval: float = 0.2,
    ):
        if partitions < 1:
            raise ValueError("broker needs at least one partition")
        if partition_capacity < 1:
            raise ValueError("partition_capacity must be positive")
        if visibility_timeout <= 0:
            raise ValueError("visibility_timeout must be positive")
        if max_deliveries < 1:
            raise ValueError("max_deliveries must be at least 1")
        self.partitions = int(partitions)
        self.partition_capacity = int(partition_capacity)
        self.visibility_timeout = float(visibility_timeout)
        self.max_deliveries = int(max_deliveries)
        # A consumer that has not called in for this long is presumed dead
        # and its partitions are reassigned; default scales with (but never
        # below) the visibility window so both clocks tell one story.
        self.consumer_deadline = (
            float(consumer_deadline)
            if consumer_deadline is not None
            else max(2.0, 2.0 * self.visibility_timeout)
        )

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queues: List[Deque[Job]] = [deque() for _ in range(self.partitions)]
        self._publish_counter = 0
        self._inflight: Dict[str, _Lease] = {}
        # Jobs acked (or failed) whose CompletedJob the front has not drained
        # yet, in completion order; _finished_ids dedupes late acks and makes
        # lease() drop requeued duplicates of already-completed jobs.
        self._completed: Deque[CompletedJob] = deque()
        self._finished_ids: Dict[str, float] = {}
        # consumer_id -> last time it called in; attach order drives the
        # round-robin partition assignment (partition i -> consumer i % n).
        self._consumers: Dict[str, float] = {}
        self._consumer_order: List[str] = []
        self._assignment: Dict[int, Optional[str]] = {
            i: None for i in range(self.partitions)
        }
        self._rotation: Dict[str, int] = {}
        self._redeliveries = 0
        # Control channel: one monotonically-increasing revision, the latest
        # command (later posts supersede earlier ones — consumers converge on
        # the newest state, which is all a swap needs), and per-consumer acks
        # for the current revision.
        self._control_revision = 0
        self._control_command: Optional[Dict[str, Any]] = None
        self._control_acks: Dict[str, Dict[str, Any]] = {}
        self._closed = False

        self._sweeper = threading.Thread(
            target=self._sweep_loop,
            args=(float(sweep_interval),),
            name="repro-fleet-broker-sweep",
            daemon=True,
        )
        self._sweeper.start()

    # -------------------------------------------------------------- producer
    def publish(self, payload: Any, job_id: Optional[str] = None) -> str:
        """Enqueue a job round-robin; raises :class:`BrokerFull` when no
        partition has room.  ``job_id`` may be supplied by the caller (the
        front does, so it can register a result future *before* any consumer
        can possibly answer)."""
        job_id = job_id if job_id is not None else secrets.token_hex(8)
        with self._cond:
            if self._closed:
                raise RuntimeError("broker is closed")
            for step in range(self.partitions):
                partition = (self._publish_counter + step) % self.partitions
                if len(self._queues[partition]) < self.partition_capacity:
                    break
            else:
                raise BrokerFull(
                    f"all {self.partitions} partitions are at capacity "
                    f"({self.partition_capacity} jobs each)"
                )
            self._publish_counter += 1
            job = Job(
                job_id=job_id,
                payload=payload,
                partition=partition,
                enqueued=time.monotonic(),
            )
            self._queues[partition].append(job)
            self._set_depth(partition)
            _JOBS.labels("published").inc()
            self._cond.notify_all()
            return job_id

    # -------------------------------------------------------------- consumers
    def attach(self, consumer_id: str) -> List[int]:
        """Register a consumer and return its assigned partitions."""
        with self._cond:
            now = time.monotonic()
            if consumer_id not in self._consumers:
                self._consumer_order.append(consumer_id)
                log_event("fleet.consumer_attached", consumer=consumer_id)
            self._consumers[consumer_id] = now
            self._rebalance()
            return self._assigned_partitions(consumer_id)

    def detach(self, consumer_id: str) -> None:
        with self._cond:
            self._detach_locked(consumer_id, reason="detach")

    def _detach_locked(self, consumer_id: str, reason: str) -> None:
        if consumer_id not in self._consumers:
            return
        del self._consumers[consumer_id]
        self._consumer_order.remove(consumer_id)
        self._rotation.pop(consumer_id, None)
        self._rebalance()
        log_event("fleet.consumer_detached", consumer=consumer_id, reason=reason)
        self._cond.notify_all()

    def _rebalance(self) -> None:
        """Round-robin partitions over attached consumers (lock held)."""
        consumers = self._consumer_order
        for partition in range(self.partitions):
            self._assignment[partition] = (
                consumers[partition % len(consumers)] if consumers else None
            )
        _CONSUMERS.set(len(consumers))

    def _assigned_partitions(self, consumer_id: str) -> List[int]:
        return [
            partition
            for partition, owner in self._assignment.items()
            if owner == consumer_id
        ]

    def lease(self, consumer_id: str, timeout: float = 1.0) -> Optional[Job]:
        """Oldest job from one of the consumer's partitions, or ``None``.

        Blocks up to ``timeout`` for work.  An unknown consumer (never
        attached, or reaped while slow) is attached implicitly, so a
        consumer that went quiet long enough to lose its partitions heals by
        simply calling ``lease`` again.
        """
        deadline = time.monotonic() + max(0.0, float(timeout))
        with self._cond:
            while not self._closed:
                now = time.monotonic()
                if consumer_id not in self._consumers:
                    if consumer_id not in self._consumer_order:
                        self._consumer_order.append(consumer_id)
                        log_event("fleet.consumer_attached", consumer=consumer_id)
                    self._consumers[consumer_id] = now
                    self._rebalance()
                self._consumers[consumer_id] = now
                job = self._take_job(consumer_id, now)
                if job is not None:
                    return job
                remaining = deadline - now
                if remaining <= 0:
                    return None
                self._cond.wait(min(remaining, 0.25))
            return None

    def _take_job(self, consumer_id: str, now: float) -> Optional[Job]:
        """Pop the next deliverable job from the consumer's partitions
        (lock held); rotates the starting partition for fairness."""
        assigned = self._assigned_partitions(consumer_id)
        if not assigned:
            return None
        start = self._rotation.get(consumer_id, 0)
        for step in range(len(assigned)):
            partition = assigned[(start + step) % len(assigned)]
            queue = self._queues[partition]
            while queue:
                job = queue.popleft()
                if job.job_id in self._finished_ids:
                    # A requeued duplicate of a job another delivery already
                    # completed — drop it silently (first ack won).
                    continue
                self._set_depth(partition)
                self._rotation[consumer_id] = (start + step + 1) % len(assigned)
                job.deliveries += 1
                self._inflight[job.job_id] = _Lease(
                    job=job,
                    consumer_id=consumer_id,
                    deadline=now + self.visibility_timeout,
                )
                _JOBS.labels("leased").inc()
                return job
            self._set_depth(partition)
        return None

    def ack(
        self,
        consumer_id: str,
        job_id: str,
        result: Any,
        metrics: Optional[Dict[str, Dict[str, object]]] = None,
    ) -> bool:
        """Complete a job with its result; ``False`` for a late duplicate."""
        with self._cond:
            now = time.monotonic()
            if consumer_id in self._consumers:
                self._consumers[consumer_id] = now
            if job_id in self._finished_ids:
                _JOBS.labels("duplicate_ack").inc()
                return False
            lease = self._inflight.pop(job_id, None)
            if lease is not None:
                job = lease.job
            else:
                # The lease expired and the duplicate is still queued: find
                # and remove it so nobody executes it a second time.
                job = self._remove_queued(job_id)
                if job is None:
                    _JOBS.labels("duplicate_ack").inc()
                    return False
            self._finish(job, result=result, error=None, metrics=metrics)
            return True

    def nack(self, consumer_id: str, job_id: str, error: str) -> None:
        """Return a failed job for redelivery (or fail it for good once
        ``max_deliveries`` is spent)."""
        with self._cond:
            if consumer_id in self._consumers:
                self._consumers[consumer_id] = time.monotonic()
            lease = self._inflight.pop(job_id, None)
            if lease is None:
                return
            self._requeue(lease.job, error=error)

    def _remove_queued(self, job_id: str) -> Optional[Job]:
        for partition, queue in enumerate(self._queues):
            for job in queue:
                if job.job_id == job_id:
                    queue.remove(job)
                    self._set_depth(partition)
                    return job
        return None

    def _requeue(self, job: Job, error: str) -> None:
        """Redeliver (front of the partition, oldest first) or give up."""
        if job.deliveries >= self.max_deliveries:
            self._finish(
                job,
                result=None,
                error=(
                    f"job {job.job_id} failed after {job.deliveries} deliveries: "
                    f"{error}"
                ),
                metrics=None,
            )
            return
        self._queues[job.partition].appendleft(job)
        self._set_depth(job.partition)
        _JOBS.labels("requeued").inc()
        self._cond.notify_all()

    def _finish(
        self,
        job: Job,
        result: Any,
        error: Optional[str],
        metrics: Optional[Dict[str, Dict[str, object]]],
    ) -> None:
        """Record a terminal outcome and wake the front (lock held)."""
        self._finished_ids[job.job_id] = time.monotonic()
        self._completed.append(
            CompletedJob(
                job_id=job.job_id,
                result=result,
                error=error,
                deliveries=job.deliveries,
                enqueued=job.enqueued,
                metrics=metrics,
            )
        )
        _JOBS.labels("completed" if error is None else "failed").inc()
        self._cond.notify_all()

    # --------------------------------------------------------------- control
    def post_control(self, command: Dict[str, Any]) -> int:
        """Broadcast a command to the fleet; returns its revision.

        Consumers observe it through :meth:`get_control` on their next lease
        cycle and report back with :meth:`ack_control`; the front polls
        :meth:`control_status` until every attached consumer has acked.
        A newer post supersedes an unconsumed older one.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("broker is closed")
            self._control_revision += 1
            self._control_command = dict(command)
            self._control_acks = {}
            log_event(
                "fleet.control_posted",
                revision=self._control_revision,
                command=dict(command),
            )
            self._cond.notify_all()
            return self._control_revision

    def get_control(
        self, consumer_id: str, after: int
    ) -> Optional[Tuple[int, Dict[str, Any]]]:
        """The current command if newer than ``after``, else ``None``.

        Also refreshes the consumer's keepalive — a consumer stalled rolling
        its pool through a swap is alive, not reap-worthy.
        """
        with self._cond:
            now = time.monotonic()
            if consumer_id in self._consumers:
                self._consumers[consumer_id] = now
            if self._control_command is None or self._control_revision <= after:
                return None
            return self._control_revision, dict(self._control_command)

    def ack_control(
        self, consumer_id: str, revision: int, ok: bool, detail: Optional[str] = None
    ) -> None:
        """Record one consumer's outcome for a control revision."""
        with self._cond:
            if consumer_id in self._consumers:
                self._consumers[consumer_id] = time.monotonic()
            if revision != self._control_revision:
                return  # superseded; only the newest revision is tracked
            self._control_acks[consumer_id] = {
                "revision": revision,
                "ok": bool(ok),
                "detail": detail,
            }
            log_event(
                "fleet.control_acked",
                consumer=consumer_id,
                revision=revision,
                ok=bool(ok),
                detail=detail,
            )
            self._cond.notify_all()

    def control_status(self) -> Dict[str, Any]:
        """Snapshot of the current control revision and its acks."""
        with self._lock:
            return {
                "revision": self._control_revision,
                "command": (
                    dict(self._control_command)
                    if self._control_command is not None
                    else None
                ),
                "acks": {
                    consumer_id: dict(ack)
                    for consumer_id, ack in self._control_acks.items()
                },
                "consumers": list(self._consumer_order),
            }

    # ----------------------------------------------------------------- front
    def poll_completed(self, timeout: float = 0.2) -> List[CompletedJob]:
        """Drain finished jobs (the front's result loop calls this)."""
        deadline = time.monotonic() + max(0.0, float(timeout))
        with self._cond:
            while not self._completed and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(min(remaining, 0.25))
            drained = list(self._completed)
            self._completed.clear()
            return drained

    # --------------------------------------------------------------- sweeper
    def _sweep_loop(self, interval: float) -> None:
        while True:
            time.sleep(interval)
            with self._cond:
                if self._closed:
                    return
                try:
                    self._sweep_locked(time.monotonic())
                except Exception:  # pragma: no cover - sweeper must survive
                    logger.exception("broker sweep failed")

    def _sweep_locked(self, now: float) -> None:
        # 1. Expired leases: the consumer holding the job is presumed dead
        #    (or wedged past the visibility window); redeliver.
        expired = [
            lease for lease in self._inflight.values() if now > lease.deadline
        ]
        for lease in expired:
            del self._inflight[lease.job.job_id]
            self._redeliveries += 1
            _REDELIVERIES.inc()
            logger.warning(
                "job %s visibility timeout expired on consumer %s (delivery %d); "
                "redelivering",
                lease.job.job_id,
                lease.consumer_id,
                lease.job.deliveries,
            )
            log_event(
                "fleet.job_redelivered",
                job=lease.job.job_id,
                consumer=lease.consumer_id,
                deliveries=lease.job.deliveries,
            )
            self._requeue(lease.job, error="visibility timeout expired")
        # 2. Silent consumers: reassign their partitions to survivors.
        for consumer_id, last_seen in list(self._consumers.items()):
            if now - last_seen > self.consumer_deadline:
                logger.warning(
                    "consumer %s silent for %.1fs; reassigning its partitions",
                    consumer_id,
                    now - last_seen,
                )
                self._detach_locked(consumer_id, reason="deadline")
        # 3. Prune the finished-id dedupe set: anything older than one full
        #    delivery cycle can no longer have a duplicate in flight.
        horizon = now - (self.max_deliveries + 1) * self.visibility_timeout
        for job_id, finished_at in list(self._finished_ids.items()):
            if finished_at < horizon:
                del self._finished_ids[job_id]

    # ------------------------------------------------------------- introspection
    def _set_depth(self, partition: int) -> None:
        _QUEUE_DEPTH.labels(str(partition)).set(len(self._queues[partition]))

    def depth(self) -> int:
        """Jobs waiting (not leased, not finished) across all partitions."""
        with self._lock:
            return sum(len(queue) for queue in self._queues)

    def consumer_count(self) -> int:
        with self._lock:
            return len(self._consumers)

    def redeliveries(self) -> int:
        with self._lock:
            return self._redeliveries

    def stats(self) -> Dict[str, Any]:
        """JSON-friendly broker snapshot for ``/info`` and ``fleet-status``."""
        with self._lock:
            now = time.monotonic()
            oldest: Optional[float] = None
            for queue in self._queues:
                if queue:
                    age = now - queue[0].enqueued
                    oldest = age if oldest is None else max(oldest, age)
            return {
                "partitions": self.partitions,
                "partition_capacity": self.partition_capacity,
                "visibility_timeout_seconds": self.visibility_timeout,
                "max_deliveries": self.max_deliveries,
                "depth": sum(len(queue) for queue in self._queues),
                "depth_per_partition": [len(queue) for queue in self._queues],
                "oldest_job_age_seconds": oldest,
                "inflight": len(self._inflight),
                "redeliveries": self._redeliveries,
                "control_revision": self._control_revision,
                "consumers": {
                    consumer_id: self._assigned_partitions(consumer_id)
                    for consumer_id in self._consumer_order
                },
            }

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Fail everything still queued/in flight and stop the sweeper."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            error = "broker closed"
            for lease in list(self._inflight.values()):
                self._finish(lease.job, result=None, error=error, metrics=None)
            self._inflight.clear()
            for partition, queue in enumerate(self._queues):
                while queue:
                    self._finish(queue.popleft(), result=None, error=error, metrics=None)
                self._set_depth(partition)
            self._cond.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InProcBroker(partitions={self.partitions}, "
            f"visibility_timeout={self.visibility_timeout})"
        )


# --------------------------------------------------------------------- manager
# The in-process broker crosses process boundaries through the stdlib
# multiprocessing manager: the front serves its broker on a TCP socket and
# `repro fleet-worker` processes connect with the shared authkey.  Every
# proxy call runs inside the front's process, which is what keeps the broker
# "in-process" (one condition variable, one metrics registry) while the
# consumers scale out horizontally.


def serve_broker(
    broker: Broker, host: str = "127.0.0.1", port: int = 0, authkey: str = "repro-fleet"
) -> Tuple[Tuple[str, int], Callable[[], None]]:
    """Expose ``broker`` on ``host:port`` (0 picks an ephemeral port).

    Returns ``((host, port), stop)`` — ``stop()`` shuts the listener down.
    The server threads are daemons; ``authkey`` must match what consumers
    pass to :func:`connect_broker` (loopback + shared key is the intended
    deployment; put a real transport in front of it for untrusted networks).
    """
    from multiprocessing.managers import BaseManager

    class _BrokerManager(BaseManager):
        pass

    _BrokerManager.register("get_broker", callable=lambda: broker)
    manager = _BrokerManager(address=(host, int(port)), authkey=authkey.encode())
    server = manager.get_server()

    def _serve() -> None:
        try:
            server.serve_forever()
        except SystemExit:
            # serve_forever leaves via sys.exit(0) when the stop event is
            # set; in our daemon thread that is a clean shutdown, not an
            # error worth propagating.
            pass

    thread = threading.Thread(
        target=_serve, name="repro-fleet-broker-server", daemon=True
    )
    thread.start()

    def stop() -> None:
        try:
            server.stop_event.set()
        except AttributeError:  # pragma: no cover - stdlib internals moved
            pass
        try:
            server.listener.close()
        except Exception:  # pragma: no cover
            pass

    return server.address, stop


def connect_broker(
    address: Tuple[str, int], authkey: str = "repro-fleet"
) -> Broker:
    """Connect to a broker served by :func:`serve_broker`; returns a proxy
    implementing the :class:`Broker` surface."""
    from multiprocessing.managers import BaseManager

    class _BrokerManager(BaseManager):
        pass

    _BrokerManager.register("get_broker")
    manager = _BrokerManager(
        address=(address[0], int(address[1])), authkey=authkey.encode()
    )
    manager.connect()
    return manager.get_broker()

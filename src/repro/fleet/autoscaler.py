"""Load-aware autoscaler for the fleet's consumer capacity.

Scaling decisions are made from the two signals the queue tier already
measures: **backlog** (the broker's queue-depth gauge, normalised per
consumer) and **tail latency** (a windowed p99 of the end-to-end job latency
histogram — :func:`repro.obs.metrics.quantile_from_counts` over the bucket
counts observed since the previous tick).  Capacity grows when either signal
is hot and shrinks only when *both* are cold.

Two mechanisms keep it from flapping:

* **Hysteresis** — the scale-down thresholds sit strictly below the
  scale-up thresholds, so a load level that just triggered growth can never
  immediately justify shrinking back.
* **Cooldown** — after any action the scaler holds still for
  ``cooldown_seconds``, long enough for the new capacity to show up in the
  signals (a freshly spawned consumer takes seconds to warm its pool).

The class is deliberately mechanism-free: it reads signals through a
callable and acts through ``scale_up``/``scale_down`` callbacks, with an
injectable clock — :meth:`tick` is therefore unit-testable with synthetic
bursts, and the serving front wires the same object to its real broker and
consumer manager.  :meth:`start` runs the tick on a background thread.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs.events import log_event
from repro.obs.metrics import get_registry
from repro.utils.logging import get_logger

logger = get_logger("fleet.autoscaler")

_metrics = get_registry()
_DESIRED = _metrics.gauge(
    "repro_fleet_desired_consumers",
    "Consumer capacity the autoscaler currently wants.",
)
_ACTIONS = _metrics.counter(
    "repro_fleet_autoscale_actions_total",
    "Autoscaler capacity changes.",
    ("direction",),
)

__all__ = ["Autoscaler", "AutoscaleSignals"]


@dataclass
class AutoscaleSignals:
    """One tick's view of the fleet."""

    queue_depth: int
    p99_seconds: float  # nan when nothing was observed in the window
    consumers: int  # current capacity the scaler is steering


class Autoscaler:
    """Grow/shrink consumer capacity between ``min_consumers`` and
    ``max_consumers`` from queue depth and tail latency.

    ``get_signals`` returns an :class:`AutoscaleSignals`; ``scale_up`` /
    ``scale_down`` change capacity by one consumer.  Scale-up fires when the
    per-consumer backlog exceeds ``up_queue_depth`` *or* the windowed p99
    exceeds ``up_p99_seconds``; scale-down requires the backlog at or below
    ``down_queue_depth`` *and* the p99 below ``down_p99_seconds`` (an empty
    window counts as cold).  One action per tick, never inside the cooldown.
    """

    def __init__(
        self,
        min_consumers: int,
        max_consumers: int,
        get_signals: Callable[[], AutoscaleSignals],
        scale_up: Callable[[], None],
        scale_down: Callable[[], None],
        up_queue_depth: float = 4.0,
        up_p99_seconds: float = 2.0,
        down_queue_depth: float = 1.0,
        down_p99_seconds: float = 0.5,
        cooldown_seconds: float = 10.0,
        interval: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if min_consumers < 1:
            raise ValueError("min_consumers must be at least 1")
        if max_consumers < min_consumers:
            raise ValueError("need min_consumers <= max_consumers")
        if down_queue_depth >= up_queue_depth:
            raise ValueError(
                "hysteresis requires down_queue_depth < up_queue_depth"
            )
        if down_p99_seconds >= up_p99_seconds:
            raise ValueError(
                "hysteresis requires down_p99_seconds < up_p99_seconds"
            )
        if cooldown_seconds < 0 or interval <= 0:
            raise ValueError("cooldown_seconds must be >= 0 and interval > 0")
        self.min_consumers = int(min_consumers)
        self.max_consumers = int(max_consumers)
        self.up_queue_depth = float(up_queue_depth)
        self.up_p99_seconds = float(up_p99_seconds)
        self.down_queue_depth = float(down_queue_depth)
        self.down_p99_seconds = float(down_p99_seconds)
        self.cooldown_seconds = float(cooldown_seconds)
        self.interval = float(interval)
        self._get_signals = get_signals
        self._scale_up = scale_up
        self._scale_down = scale_down
        self._clock = clock
        # Cold start: allow an action on the very first tick.
        self._last_action_at: Optional[float] = None
        self._last_action: Optional[str] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ core
    def tick(self) -> Optional[str]:
        """Evaluate the signals once; returns ``"up"``/``"down"``/``None``."""
        now = self._clock()
        if (
            self._last_action_at is not None
            and now - self._last_action_at < self.cooldown_seconds
        ):
            return None
        signals = self._get_signals()
        consumers = max(1, int(signals.consumers))
        backlog_per_consumer = signals.queue_depth / consumers
        p99 = float(signals.p99_seconds)
        latency_hot = not math.isnan(p99) and p99 > self.up_p99_seconds
        latency_cold = math.isnan(p99) or p99 < self.down_p99_seconds

        action: Optional[str] = None
        if (
            backlog_per_consumer > self.up_queue_depth or latency_hot
        ) and signals.consumers < self.max_consumers:
            self._scale_up()
            _ACTIONS.labels("up").inc()
            _DESIRED.set(signals.consumers + 1)
            action = "up"
        elif (
            backlog_per_consumer <= self.down_queue_depth
            and latency_cold
            and signals.consumers > self.min_consumers
        ):
            self._scale_down()
            _ACTIONS.labels("down").inc()
            _DESIRED.set(signals.consumers - 1)
            action = "down"
        if action is not None:
            self._last_action_at = now
            self._last_action = action
            logger.info(
                "autoscale %s: depth/consumer=%.1f p99=%.3fs consumers=%d",
                action,
                backlog_per_consumer,
                p99,
                signals.consumers,
            )
            log_event(
                "fleet.autoscale",
                direction=action,
                queue_depth=signals.queue_depth,
                p99_seconds=None if math.isnan(p99) else p99,
                consumers=signals.consumers,
            )
        return action

    def state(self) -> Dict[str, object]:
        """JSON-friendly scaler state for ``/info``."""
        return {
            "min_consumers": self.min_consumers,
            "max_consumers": self.max_consumers,
            "cooldown_seconds": self.cooldown_seconds,
            "up_queue_depth": self.up_queue_depth,
            "up_p99_seconds": self.up_p99_seconds,
            "down_queue_depth": self.down_queue_depth,
            "down_p99_seconds": self.down_p99_seconds,
            "last_action": self._last_action,
        }

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "Autoscaler":
        self._thread = threading.Thread(
            target=self._loop, name="repro-fleet-autoscale", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except Exception:  # pragma: no cover - scaler must survive
                logger.exception("autoscaler tick failed")

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10)

"""Queue-backed serving front: publish prediction jobs, collect results.

:class:`FleetFront` is what ``repro serve --mode queue`` builds instead of a
local :class:`~repro.parallel.serving.PoolPredictor`.  It owns:

* the **broker** (:class:`~repro.fleet.broker.InProcBroker`), served over a
  ``multiprocessing.managers`` socket so `repro fleet-worker` processes on
  this or other hosts can attach;
* a **result loop** that drains completed jobs, resolves waiting futures,
  observes the end-to-end job latency histogram, stores results for the
  poll API (``/result/<id>``), and merges the consumers' shipped
  ``repro.obs`` snapshots so ``/metrics`` aggregates the fleet;
* a **local consumer manager** that keeps ``desired`` consumer subprocesses
  (``repro fleet-worker`` against the loopback broker address) running —
  reconciling every ``reconcile_interval``: dead consumers are respawned,
  surplus ones are SIGTERMed and drain gracefully;
* the **autoscaler** (:class:`~repro.fleet.autoscaler.Autoscaler`) steering
  ``desired`` between ``min_consumers`` and ``max_consumers`` from queue
  depth and windowed p99 job latency.

Client calls (`submit` / `result` / `predict_proba`) are thread-safe; each
blocks only on its own job's future.  Results are bitwise identical to a
single-process ``EnsemblePredictor`` because the consumers run the proven
``PoolPredictor`` path unchanged.
"""

from __future__ import annotations

import os
import secrets
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.artifact_store import ARTIFACT_GENERATION, resolve_artifact
from repro.core.ensemble import resolve_combination_method
from repro.fleet.autoscaler import Autoscaler, AutoscaleSignals
from repro.fleet.broker import InProcBroker, serve_broker
from repro.obs.events import log_event
from repro.obs.metrics import get_registry, quantile_from_counts
from repro.utils.logging import get_logger

logger = get_logger("fleet.front")

_metrics = get_registry()
_JOB_LATENCY = _metrics.histogram(
    "repro_fleet_job_latency_seconds",
    "End-to-end job latency: publish to completed result at the front.",
)

__all__ = ["FleetFront"]

#: How long a fetched-by-poll result is retained before the sweep drops it.
DEFAULT_RESULT_TTL = 120.0


@dataclass
class _JobEntry:
    future: Future = field(default_factory=Future)
    want_proba: bool = True
    done: bool = False
    result: Optional[np.ndarray] = None
    error: Optional[str] = None
    expires: Optional[float] = None


@dataclass
class _LocalConsumer:
    consumer_id: str
    process: subprocess.Popen
    draining: bool = False
    kill_at: Optional[float] = None


class FleetFront:
    """Producer front over a partitioned broker plus managed consumers.

    With ``spawn_local=False`` no consumer subprocesses are started (and the
    autoscaler stays off) — the caller attaches its own consumers, in
    process or via the broker address; this is how the chaos tests drive
    externally-SIGKILLed `fleet-worker` processes.
    """

    def __init__(
        self,
        artifact: Union[str, Path],
        partitions: int = 4,
        partition_capacity: int = 1024,
        visibility_timeout: float = 30.0,
        max_deliveries: int = 5,
        method: str = "average",
        min_consumers: int = 1,
        max_consumers: int = 4,
        consumer_workers: int = 1,
        batch_size: int = 256,
        max_batch: int = 1024,
        transport: str = "shm",
        spawn_local: bool = True,
        autoscale: bool = True,
        autoscale_cooldown: float = 10.0,
        autoscale_interval: float = 1.0,
        up_queue_depth: float = 4.0,
        down_queue_depth: float = 1.0,
        up_p99_seconds: float = 2.0,
        down_p99_seconds: float = 0.5,
        host: str = "127.0.0.1",
        fleet_port: int = 0,
        fleet_authkey: str = "repro-fleet",
        request_timeout: float = 300.0,
        result_ttl: float = DEFAULT_RESULT_TTL,
        reconcile_interval: float = 0.5,
        log_format: Optional[str] = None,
        log_file: Optional[Union[str, Path]] = None,
    ):
        from repro.api.artifacts import read_manifest

        if min_consumers < 1:
            raise ValueError("min_consumers must be at least 1")
        if max_consumers < min_consumers:
            raise ValueError("need min_consumers <= max_consumers")
        # Like the pool: resolve the (possibly store-layout) path once, keep
        # the caller's root in self.path so swap() can re-resolve CURRENT.
        resolved = resolve_artifact(artifact)
        manifest = read_manifest(resolved.path)
        resolve_combination_method(method, has_super_learner=True)
        self.path = Path(artifact)
        self._artifact_dir = resolved.path
        self.generation = resolved.generation
        self.method = method
        self.input_shape = tuple(int(d) for d in manifest["input_shape"])
        self.num_classes = int(manifest["num_classes"])
        self.num_members = len(manifest["members"])
        self.approach = manifest["approach"]
        self._has_super_learner = manifest.get("super_learner_weights") is not None
        resolve_combination_method(method, has_super_learner=self._has_super_learner)
        self.min_consumers = int(min_consumers)
        self.max_consumers = int(max_consumers)
        self.consumer_workers = int(consumer_workers)
        self.batch_size = int(batch_size)
        self.max_batch = int(max_batch)
        self.transport = transport
        self.request_timeout = float(request_timeout)
        self.result_ttl = float(result_ttl)
        self.spawn_local = bool(spawn_local)
        self._log_format = log_format
        self._log_file = log_file
        self._fleet_authkey = fleet_authkey

        self.broker = InProcBroker(
            partitions=partitions,
            partition_capacity=partition_capacity,
            visibility_timeout=visibility_timeout,
            max_deliveries=max_deliveries,
        )
        self.broker_address, self._stop_broker_server = serve_broker(
            self.broker, host=host, port=fleet_port, authkey=fleet_authkey
        )

        self._lock = threading.Lock()
        self._entries: Dict[str, _JobEntry] = {}
        self._closed = False
        self._stop = threading.Event()
        self._result_thread = threading.Thread(
            target=self._result_loop, name="repro-fleet-results", daemon=True
        )
        self._result_thread.start()

        # ---------------------------------------------- local consumer fleet
        self._local: List[_LocalConsumer] = []
        self._desired = self.min_consumers if self.spawn_local else 0
        self._spawned = 0
        self._reconcile_thread: Optional[threading.Thread] = None
        if self.spawn_local:
            self._reconcile_thread = threading.Thread(
                target=self._reconcile_loop,
                args=(float(reconcile_interval),),
                name="repro-fleet-reconcile",
                daemon=True,
            )
            self._reconcile_thread.start()

        # -------------------------------------------------------- autoscaler
        self._latency_window_counts = _JOB_LATENCY.bucket_counts()
        self.autoscaler: Optional[Autoscaler] = None
        if self.spawn_local and autoscale and self.max_consumers > self.min_consumers:
            self.autoscaler = Autoscaler(
                min_consumers=self.min_consumers,
                max_consumers=self.max_consumers,
                get_signals=self._signals,
                scale_up=self.scale_up,
                scale_down=self.scale_down,
                up_queue_depth=up_queue_depth,
                down_queue_depth=down_queue_depth,
                up_p99_seconds=up_p99_seconds,
                down_p99_seconds=down_p99_seconds,
                cooldown_seconds=autoscale_cooldown,
                interval=autoscale_interval,
            ).start()
        logger.info(
            "fleet front for %s: broker %s:%d, %d partitions, consumers %d..%d",
            artifact,
            self.broker_address[0],
            self.broker_address[1],
            partitions,
            self.min_consumers,
            self.max_consumers,
        )

    # ----------------------------------------------------------------- client
    def _resolve_method(self, method: Optional[str]) -> str:
        return resolve_combination_method(
            method, default=self.method, has_super_learner=self._has_super_learner
        )

    def submit(
        self,
        x: np.ndarray,
        method: Optional[str] = None,
        want_proba: bool = True,
    ) -> str:
        """Validate and publish one prediction job; returns its job id.

        The result future is registered *before* the publish, so a consumer
        can never answer a job the front does not yet know about.
        """
        if self._closed:
            raise RuntimeError("FleetFront is closed")
        from repro.api.predictor import validate_batch

        x = validate_batch(x, self.input_shape)
        resolved = self._resolve_method(method)
        job_id = secrets.token_hex(8)
        entry = _JobEntry(want_proba=want_proba)
        with self._lock:
            self._entries[job_id] = entry
        try:
            self.broker.publish({"x": x, "method": resolved}, job_id=job_id)
        except BaseException:
            with self._lock:
                self._entries.pop(job_id, None)
            raise
        return job_id

    def result(self, job_id: str, timeout: Optional[float] = None) -> np.ndarray:
        """Block until ``job_id`` completes; returns the probabilities."""
        with self._lock:
            entry = self._entries.get(job_id)
        if entry is None:
            raise KeyError(f"unknown job id {job_id!r}")
        try:
            result = entry.future.result(timeout=timeout or self.request_timeout)
        finally:
            with self._lock:
                self._entries.pop(job_id, None)
        return result

    def poll(self, job_id: str) -> Tuple[str, Optional[np.ndarray], Optional[str], bool]:
        """Non-blocking result check: ``(status, proba, error, want_proba)``.

        ``status`` is ``"done"`` (the entry is consumed), ``"pending"``, or
        ``"unknown"`` (never submitted, already fetched, or expired).
        """
        with self._lock:
            entry = self._entries.get(job_id)
            if entry is None:
                return "unknown", None, None, True
            if not entry.done:
                return "pending", None, None, entry.want_proba
            del self._entries[job_id]
            return "done", entry.result, entry.error, entry.want_proba

    def predict_proba(
        self,
        x: np.ndarray,
        method: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Synchronous publish-and-wait; bitwise equal to the pool path."""
        return self.result(self.submit(x, method=method), timeout=timeout)

    def predict(
        self,
        x: np.ndarray,
        method: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        return self.predict_proba(x, method=method, timeout=timeout).argmax(axis=1)

    # ------------------------------------------------------------ result loop
    def _result_loop(self) -> None:
        registry = get_registry()
        while not self._stop.is_set():
            completed = self.broker.poll_completed(timeout=0.2)
            now = time.monotonic()
            for job in completed:
                if job.metrics is not None:
                    registry.merge_snapshot(job.metrics)
                _JOB_LATENCY.observe(max(0.0, now - job.enqueued))
                with self._lock:
                    entry = self._entries.get(job.job_id)
                    if entry is None:
                        continue
                    entry.done = True
                    entry.result = job.result
                    entry.error = job.error
                    entry.expires = now + self.result_ttl
                if job.error is not None:
                    entry.future.set_exception(RuntimeError(job.error))
                else:
                    entry.future.set_result(job.result)
            self._sweep_entries(now)

    def _sweep_entries(self, now: float) -> None:
        with self._lock:
            expired = [
                job_id
                for job_id, entry in self._entries.items()
                if entry.done and entry.expires is not None and now > entry.expires
            ]
            for job_id in expired:
                del self._entries[job_id]

    # ------------------------------------------------------ local consumers
    def _spawn_consumer(self) -> _LocalConsumer:
        import repro

        consumer_id = f"local-{self._spawned}"
        self._spawned += 1
        env = dict(os.environ)
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        argv = [
            sys.executable,
            "-m",
            "repro",
            "fleet-worker",
            "--broker",
            f"{self.broker_address[0]}:{self.broker_address[1]}",
            "--authkey",
            self._fleet_authkey,
            "--artifact",
            str(self.path),
            "--consumer-id",
            consumer_id,
            "--workers",
            str(self.consumer_workers),
            "--method",
            self.method,
            "--batch-size",
            str(self.batch_size),
            "--max-batch",
            str(self.max_batch),
            "--transport",
            self.transport,
        ]
        if self._log_format is not None:
            argv += ["--log-format", self._log_format]
        if self._log_file is not None:
            argv += ["--log-file", str(self._log_file)]
        # stdout would interleave the consumer's banner with the front's own
        # machine-readable banner; stderr (structured events) passes through.
        process = subprocess.Popen(argv, stdout=subprocess.DEVNULL, env=env)
        log_event("fleet.consumer_spawned", consumer=consumer_id, pid=process.pid)
        logger.info("spawned local consumer %s (pid %d)", consumer_id, process.pid)
        return _LocalConsumer(consumer_id=consumer_id, process=process)

    def _reconcile_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                self._reconcile()
            except Exception:  # pragma: no cover - manager must survive
                logger.exception("consumer reconcile failed")

    def _reconcile(self) -> None:
        now = time.monotonic()
        with self._lock:
            desired = self._desired
            # Prune exited processes; escalate draining stragglers.
            survivors: List[_LocalConsumer] = []
            for consumer in self._local:
                code = consumer.process.poll()
                if code is not None:
                    log_event(
                        "fleet.consumer_exited",
                        consumer=consumer.consumer_id,
                        returncode=code,
                        draining=consumer.draining,
                    )
                    if not consumer.draining:
                        logger.warning(
                            "local consumer %s exited unexpectedly (code %s)",
                            consumer.consumer_id,
                            code,
                        )
                    continue
                if (
                    consumer.draining
                    and consumer.kill_at is not None
                    and now > consumer.kill_at
                ):  # pragma: no cover - drain wedged
                    consumer.process.kill()
                survivors.append(consumer)
            self._local = survivors
            running = [c for c in self._local if not c.draining]
            # Surplus: drain the newest first (oldest consumers keep serving).
            for consumer in running[desired:]:
                consumer.draining = True
                consumer.kill_at = now + 30.0
                try:
                    consumer.process.send_signal(signal.SIGTERM)
                except OSError:  # pragma: no cover - exited between poll and kill
                    pass
                log_event("fleet.consumer_draining", consumer=consumer.consumer_id)
            shortfall = desired - len(running)
        # Spawns happen outside the lock (subprocess start is slow).
        for _ in range(max(0, shortfall)):
            consumer = self._spawn_consumer()
            with self._lock:
                if self._closed:
                    consumer.process.terminate()
                    return
                self._local.append(consumer)

    def scale_up(self) -> None:
        with self._lock:
            self._desired = min(self.max_consumers, self._desired + 1)

    def scale_down(self) -> None:
        with self._lock:
            self._desired = max(self.min_consumers, self._desired - 1)

    def local_consumers(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "desired": self._desired,
                "running": sum(1 for c in self._local if not c.draining),
                "draining": sum(1 for c in self._local if c.draining),
                "pids": [c.process.pid for c in self._local if not c.draining],
            }

    # -------------------------------------------------------------- signals
    def _signals(self) -> AutoscaleSignals:
        """Autoscaler inputs: backlog now, p99 over the last tick window."""
        counts = _JOB_LATENCY.bucket_counts()
        delta = [
            current - previous
            for current, previous in zip(counts, self._latency_window_counts)
        ]
        self._latency_window_counts = counts
        p99 = quantile_from_counts(_JOB_LATENCY.buckets, delta, 0.99)
        with self._lock:
            desired = self._desired
        return AutoscaleSignals(
            queue_depth=self.broker.depth(), p99_seconds=p99, consumers=desired
        )

    # -------------------------------------------------------------- hot swap
    def swap(
        self, generation: Optional[int] = None, timeout: float = 60.0
    ) -> Dict[str, Any]:
        """Converge the whole consumer fleet onto a new artifact generation.

        Re-resolves the front's artifact path (picking up the store's moved
        ``CURRENT`` pointer, or the explicit ``generation``), posts a
        ``{"op": "swap"}`` control message on the broker, and blocks until
        every currently-attached consumer has acknowledged rolling its pool
        — consumers keep leasing and answering jobs throughout, each
        response computed entirely on one generation.  Consumers that attach
        mid-swap (autoscaler replacements) load the new ``CURRENT`` directly
        and ack without rolling.  Raises ``RuntimeError`` on a failed
        consumer ack or on timeout.
        """
        if self._closed:
            raise RuntimeError("FleetFront is closed")
        resolved = resolve_artifact(self.path, generation=generation)
        from repro.api.artifacts import read_manifest

        manifest = read_manifest(resolved.path)
        new_shape = tuple(int(d) for d in manifest["input_shape"])
        new_classes = int(manifest["num_classes"])
        if new_shape != self.input_shape or new_classes != self.num_classes:
            raise ValueError(
                f"cannot hot-swap to generation {resolved.generation}: its "
                f"input_shape={new_shape} / num_classes={new_classes} differ "
                f"from the fleet's {self.input_shape} / {self.num_classes}"
            )
        previous_generation = self.generation
        if resolved.path == self._artifact_dir:
            return {
                "status": "noop",
                "generation": self.generation,
                "previous_generation": previous_generation,
                "consumers_acked": 0,
                "swap_seconds": 0.0,
            }
        start = time.monotonic()
        deadline = start + float(timeout)
        log_event(
            "swap.started",
            artifact=str(self.path),
            mode="queue",
            from_generation=previous_generation,
            to_generation=resolved.generation,
        )
        # Future consumers (autoscaler spawns pass self.path) resolve the
        # new CURRENT themselves; existing ones roll via the control channel.
        self._artifact_dir = resolved.path
        self.generation = resolved.generation
        self.num_members = len(manifest["members"])
        self.approach = manifest["approach"]
        self._has_super_learner = manifest.get("super_learner_weights") is not None
        revision = self.broker.post_control(
            {"op": "swap", "generation": resolved.generation}
        )
        while True:
            status = self.broker.control_status()
            acks = {
                consumer_id: ack
                for consumer_id, ack in status["acks"].items()
                if ack["revision"] == revision
            }
            failed = [
                f"{consumer_id}: {ack['detail']}"
                for consumer_id, ack in acks.items()
                if not ack["ok"]
            ]
            if failed:
                log_event(
                    "swap.failed",
                    mode="queue",
                    to_generation=resolved.generation,
                    errors=failed,
                )
                raise RuntimeError(
                    "fleet swap failed on "
                    + "; ".join(failed)
                )
            attached = set(status["consumers"])
            if attached and attached <= set(acks):
                break
            if time.monotonic() > deadline:
                missing = sorted(attached - set(acks))
                log_event(
                    "swap.failed",
                    mode="queue",
                    to_generation=resolved.generation,
                    errors=[f"timeout waiting for acks from {missing}"],
                )
                raise RuntimeError(
                    f"fleet swap timed out after {timeout:.0f}s waiting for "
                    f"consumers {missing} to acknowledge generation "
                    f"{resolved.generation}"
                )
            time.sleep(0.05)
        elapsed = time.monotonic() - start
        ARTIFACT_GENERATION.set(self.generation)
        log_event(
            "swap.completed",
            mode="queue",
            from_generation=previous_generation,
            to_generation=self.generation,
            consumers=len(acks),
            seconds=elapsed,
        )
        logger.info(
            "fleet hot-swapped %s: generation %d -> %d (%d consumers in %.2fs)",
            self.path,
            previous_generation,
            self.generation,
            len(acks),
            elapsed,
        )
        return {
            "status": "ok",
            "generation": self.generation,
            "previous_generation": previous_generation,
            "consumers_acked": len(acks),
            "swap_seconds": elapsed,
        }

    # ---------------------------------------------------------- health / info
    def wait_ready(self, timeout: float = 180.0) -> None:
        """Block until ``min_consumers`` consumers are attached (pool-warm)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.broker.consumer_count() >= self.min_consumers:
                return
            time.sleep(0.1)
        raise RuntimeError(
            f"fleet consumers failed to attach within {timeout:.0f}s "
            f"(attached {self.broker.consumer_count()}/{self.min_consumers})"
        )

    def healthz(self) -> Dict[str, Any]:
        attached = self.broker.consumer_count()
        local = self.local_consumers() if self.spawn_local else None
        if attached >= self.min_consumers:
            status = "ok"
        elif attached > 0 or (local is not None and local["running"] > 0):
            status = "degraded"
        else:
            status = "down"
        health = {
            "status": status,
            "mode": "queue",
            "generation": self.generation,
            "consumers": attached,
            "min_consumers": self.min_consumers,
            "max_consumers": self.max_consumers,
            "queue_depth": self.broker.depth(),
            "redeliveries": self.broker.redeliveries(),
        }
        if local is not None:
            health["local_consumers"] = local
        return health

    def info(self) -> Dict[str, Any]:
        """JSON-friendly description for the ``/info`` endpoint."""
        return {
            "artifact": str(self.path),
            "approach": self.approach,
            "mode": "queue",
            "generation": self.generation,
            "num_members": self.num_members,
            "num_classes": self.num_classes,
            "input_shape": list(self.input_shape),
            "method": self.method,
            "super_learner": self._has_super_learner,
            "transport": self.transport,
            "broker_address": list(self.broker_address),
            "queue": self.broker.stats(),
            "consumers": self.broker.consumer_count(),
            "local_consumers": self.local_consumers() if self.spawn_local else None,
            "autoscaler": self.autoscaler.state() if self.autoscaler else None,
            "job_latency_seconds": {
                "p50": _JOB_LATENCY.quantile(0.5),
                "p99": _JOB_LATENCY.quantile(0.99),
            },
        }

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Stop scaling, drain local consumers, fail anything unresolved."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self.autoscaler is not None:
            self.autoscaler.stop()
        self._stop.set()
        if self._reconcile_thread is not None:
            self._reconcile_thread.join(timeout=10)
        with self._lock:
            local = list(self._local)
            self._local = []
        for consumer in local:
            if consumer.process.poll() is None:
                consumer.process.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 60.0
        for consumer in local:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                consumer.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:  # pragma: no cover - wedged drain
                consumer.process.kill()
                consumer.process.wait(timeout=10)
        self.broker.close()
        self._result_thread.join(timeout=10)
        self._stop_broker_server()
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            if not entry.future.done():
                entry.future.set_exception(RuntimeError("FleetFront closed"))
        log_event("fleet.front_closed", artifact=str(self.path))

    def __enter__(self) -> "FleetFront":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Fleet consumer: lease prediction jobs, run them on a ``PoolPredictor``.

One :class:`FleetConsumer` is one horizontal unit of serving capacity.  It
attaches to the broker (in-process object or a
:func:`~repro.fleet.broker.connect_broker` proxy — the loop cannot tell the
difference), leases jobs from its assigned partitions, answers them through
the *existing* multi-process :class:`~repro.parallel.serving.PoolPredictor`
(shm transport, micro-batching, and the self-healing supervisor all reused
unchanged), and acks each result back.  Results are therefore **bitwise
identical** to a single-process ``EnsemblePredictor`` on the same rows — the
queue tier adds scheduling, never arithmetic.

Fleet-wide observability: alongside each ack the consumer periodically ships
a *delta* snapshot of its ``repro.obs`` registry (``metrics_interval``
throttled, counters/histograms accumulate on merge), so the front's
``/metrics`` aggregates request latency and pool-supervisor activity across
every consumer in the fleet without scraping N processes.

Chaos hooks: ``repro.faults`` injection points ``fleet_consume`` (after the
lease, before inference — a crash here strands a leased job, exercising
visibility-timeout redelivery) and ``fleet_ack`` (after inference, before
the ack — a crash here loses a *computed* result, the worst case for
exactly-once pretenders; at-least-once redelivery recomputes it).  Context
fields ``consumer``, ``job`` and ``attempt`` (0-based delivery index) are
matchable as ``REPRO_FAULTS`` qualifiers.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.faults import fire
from repro.fleet.broker import Broker, Job
from repro.obs.events import log_event
from repro.obs.metrics import get_registry
from repro.parallel.serving import PoolPredictor
from repro.utils.logging import get_logger

logger = get_logger("fleet.consumer")

_metrics = get_registry()
_CONSUMED = _metrics.counter(
    "repro_fleet_consumed_jobs_total",
    "Jobs this consumer leased and answered.",
    ("status",),
)

__all__ = ["FleetConsumer"]


class FleetConsumer:
    """Run one serving pool against broker partitions until stopped.

    ``broker`` is anything implementing the :class:`~repro.fleet.broker.
    Broker` surface — the in-process object in tests, a manager proxy in
    ``repro fleet-worker``.  ``close()`` drains first: the loop stops
    leasing, the in-flight job (if any) finishes and acks, then the consumer
    detaches and the pool shuts down — the same mechanism a scale-down rides.
    Artifact hot-swaps arrive as broker *control* messages: between jobs the
    loop polls :meth:`~repro.fleet.broker.Broker.get_control`, applies
    ``{"op": "swap", ...}`` by rolling its own pool
    (:meth:`~repro.parallel.serving.PoolPredictor.swap`), and acks the
    revision so the front can tell when the fleet has converged.
    """

    def __init__(
        self,
        broker: Broker,
        artifact: Union[str, Path],
        consumer_id: str,
        workers: int = 1,
        method: str = "average",
        batch_size: int = 256,
        max_batch: int = 1024,
        max_wait_ms: float = 2.0,
        transport: str = "shm",
        lease_timeout: float = 0.5,
        metrics_interval: float = 1.0,
        restart_workers: bool = True,
    ):
        self.consumer_id = str(consumer_id)
        self.broker = broker
        self.lease_timeout = float(lease_timeout)
        self.metrics_interval = float(metrics_interval)
        self.pool = PoolPredictor(
            artifact,
            workers=workers,
            method=method,
            batch_size=batch_size,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            transport=transport,
            restart_workers=restart_workers,
        )
        self._stop = threading.Event()
        self._last_metrics_ship = 0.0
        # Highest broker control revision this consumer has applied (or
        # deliberately skipped at start-up — the pool just loaded CURRENT, so
        # a pre-existing swap command is already satisfied).
        self._control_revision = 0
        self._thread = threading.Thread(
            target=self._run, name=f"repro-fleet-consumer-{consumer_id}", daemon=True
        )

    def start(self) -> "FleetConsumer":
        self.broker.attach(self.consumer_id)
        try:
            # Skip any control revision posted before we existed: our pool
            # loaded the store's CURRENT pointer moments ago, so an older
            # swap broadcast is already satisfied (an autoscaler replacement
            # consumer must not redundantly roll its freshly-warm workers) —
            # but it still needs acking or the front would wait on us.
            status = self.broker.control_status()
            self._control_revision = int(status.get("revision", 0))
            if self._control_revision > 0:
                self.broker.ack_control(
                    self.consumer_id,
                    self._control_revision,
                    True,
                    detail="joined on current generation",
                )
        except (AttributeError, EOFError, ConnectionError, OSError):
            pass  # pragma: no cover - broker without a control channel
        self._thread.start()
        log_event("fleet.consumer_started", consumer=self.consumer_id)
        return self

    # ------------------------------------------------------------------ loop
    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self._poll_control()
                job = self.broker.lease(self.consumer_id, timeout=self.lease_timeout)
            except (EOFError, ConnectionError, OSError):
                # The broker (front) went away; nothing left to serve.
                logger.warning(
                    "consumer %s lost its broker connection; stopping",
                    self.consumer_id,
                )
                self._stop.set()
                return
            if job is None:
                continue
            self._handle(job)

    def _poll_control(self) -> None:
        """Apply any control command posted since the last lease cycle.

        Runs between jobs, never mid-job: the job in flight finishes (and
        acks its result computed on the *old* generation) before the pool
        rolls, so no response ever mixes generations.
        """
        pending = self.broker.get_control(self.consumer_id, self._control_revision)
        if pending is None:
            return
        revision, command = pending
        self._control_revision = revision
        ok, detail = True, None
        try:
            self._apply_control(command)
        except Exception as exc:
            ok, detail = False, f"{type(exc).__name__}: {exc}"
            logger.error(
                "consumer %s failed control revision %d (%s): %s",
                self.consumer_id,
                revision,
                command,
                detail,
            )
        self.broker.ack_control(self.consumer_id, revision, ok, detail=detail)

    def _apply_control(self, command: Dict[str, object]) -> None:
        op = command.get("op")
        if op == "swap":
            generation = command.get("generation")
            summary = self.pool.swap(
                generation=int(generation) if generation is not None else None
            )
            log_event(
                "fleet.consumer_swapped",
                consumer=self.consumer_id,
                generation=summary["generation"],
                workers_respawned=summary["workers_respawned"],
            )
        else:
            raise ValueError(f"unknown control op {op!r}")

    def _handle(self, job: Job) -> None:
        attempt = max(0, job.deliveries - 1)
        fire("fleet_consume", consumer=self.consumer_id, job=job.job_id, attempt=attempt)
        try:
            payload = job.payload
            proba = self.pool.predict_proba(payload["x"], method=payload.get("method"))
            # A shm-transport result is a zero-copy view of a pool worker's
            # arena; materialise it so the ack (which may pickle it over the
            # manager connection) releases the arena region promptly.
            proba = np.array(proba, copy=True)
        except Exception as exc:
            _CONSUMED.labels("error").inc()
            try:
                self.broker.nack(
                    self.consumer_id, job.job_id, f"{type(exc).__name__}: {exc}"
                )
            except (EOFError, ConnectionError, OSError):  # pragma: no cover
                self._stop.set()
            return
        fire("fleet_ack", consumer=self.consumer_id, job=job.job_id, attempt=attempt)
        try:
            self.broker.ack(
                self.consumer_id, job.job_id, result=proba, metrics=self._ship_metrics()
            )
            _CONSUMED.labels("ok").inc()
        except (EOFError, ConnectionError, OSError):  # pragma: no cover
            self._stop.set()

    def _ship_metrics(self) -> Optional[Dict[str, Dict[str, object]]]:
        """Throttled delta snapshot of this process's registry.

        Snapshot-then-reset makes each shipment a delta, so the front can
        merge counters/histograms without double counting; shipping with the
        ack (rather than on a side channel) means the front's view is always
        at least as fresh as the results it serves.
        """
        registry = get_registry()
        if not registry.enabled:
            return None
        now = time.monotonic()
        if now - self._last_metrics_ship < self.metrics_interval:
            return None
        self._last_metrics_ship = now
        snapshot = registry.snapshot()
        registry.reset()
        return snapshot

    # ------------------------------------------------------------- lifecycle
    def alive(self) -> bool:
        """True while the lease loop is still serving (broker reachable)."""
        return self._thread.is_alive() and not self._stop.is_set()

    def close(self) -> None:
        """Drain and shut down (idempotent): stop leasing, finish the job in
        flight, detach from the broker, close the pool."""
        if self._stop.is_set() and not self._thread.is_alive():
            self.pool.close()
            return
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=60)
        try:
            self.broker.detach(self.consumer_id)
        except (EOFError, ConnectionError, OSError):  # pragma: no cover
            pass
        self.pool.close()
        log_event("fleet.consumer_stopped", consumer=self.consumer_id)

    def __enter__(self) -> "FleetConsumer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Queue-backed horizontal serving tier (``repro serve --mode queue``).

The fleet splits serving into three roles connected by a partitioned,
at-least-once job broker:

* **front** (:class:`~repro.fleet.front.FleetFront`) — validates requests,
  publishes prediction jobs, resolves result futures, manages local
  consumer subprocesses, and autoscales them;
* **broker** (:class:`~repro.fleet.broker.InProcBroker`) — bounded
  partitions, round-robin assignment, visibility-timeout redelivery when a
  consumer dies mid-job; served cross-process via
  :func:`~repro.fleet.broker.serve_broker` / :func:`~repro.fleet.broker.connect_broker`;
* **consumers** (:class:`~repro.fleet.consumer.FleetConsumer`, the
  ``repro fleet-worker`` CLI) — each one runs the existing
  :class:`~repro.parallel.serving.PoolPredictor` unchanged, so fleet
  results stay bitwise identical to single-process serving.

Scaling policy lives in :class:`~repro.fleet.autoscaler.Autoscaler`:
queue-depth + windowed-p99 signals, hysteresis, and cooldown.
"""

from repro.fleet.autoscaler import Autoscaler, AutoscaleSignals
from repro.fleet.broker import (
    Broker,
    BrokerFull,
    CompletedJob,
    InProcBroker,
    Job,
    connect_broker,
    serve_broker,
)
from repro.fleet.consumer import FleetConsumer
from repro.fleet.front import FleetFront

__all__ = [
    "Autoscaler",
    "AutoscaleSignals",
    "Broker",
    "BrokerFull",
    "CompletedJob",
    "FleetConsumer",
    "FleetFront",
    "InProcBroker",
    "Job",
    "connect_broker",
    "serve_broker",
]

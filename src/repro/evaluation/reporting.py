"""Plain-text reporting helpers used by the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures; these
helpers turn the measured numbers into the same rows/series the paper
reports so that the shape of the result can be compared at a glance (and so
EXPERIMENTS.md can be filled from the bench output).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render a fixed-width text table."""
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_series(series: Mapping[str, Sequence[float]], x_values: Sequence[object], x_label: str = "x") -> str:
    """Render one or more named series over common x-values as a table (the
    textual equivalent of a figure's line plot)."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *[values[i] for values in series.values()]])
    return format_table(headers, rows)


def format_error_rates(error_rates: Mapping[str, float], title: str = "error rate (%)") -> str:
    """Render a mapping of inference-method -> error-rate."""
    return format_table(
        ["method", "error rate (%)"], [[k, v] for k, v in error_rates.items()], title=title
    )


def format_time_breakdown(breakdown: Mapping[str, float], title: str = "training time (s)") -> str:
    """Render a per-network training-time breakdown (Figure 5b's stacked bars)."""
    rows = [[name, seconds] for name, seconds in breakdown.items()]
    rows.append(["TOTAL", float(sum(breakdown.values()))])
    return format_table(["network", "seconds"], rows, title=title)


def comparison_summary(
    totals: Mapping[str, float], reference: str = "mothernets"
) -> Dict[str, float]:
    """Speedups of ``reference`` relative to every other approach (e.g. the
    "up to 6x faster" headline numbers)."""
    if reference not in totals:
        raise KeyError(f"reference approach {reference!r} missing from totals")
    ref = totals[reference]
    if ref <= 0:
        raise ValueError("reference total must be positive")
    return {name: value / ref for name, value in totals.items() if name != reference}


def expectation_note(lines: Sequence[str]) -> str:
    """Format the paper's qualitative expectations next to measured output."""
    return "\n".join(f"  [paper] {line}" for line in lines)

"""Ensemble-level evaluation metrics.

These complement the per-model metrics of ``repro.nn.metrics`` with the
quantities discussed in the paper's evaluation: error under the four
inference methods, oracle error, member-quality consistency, and diversity.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.ensemble import Ensemble, METHOD_ABBREVIATIONS


def evaluate_ensemble(
    ensemble: Ensemble,
    x: np.ndarray,
    y: np.ndarray,
    methods: Sequence[str] = ("average", "vote", "super_learner", "oracle"),
    batch_size: int = 256,
) -> Dict[str, float]:
    """Error rate (percent) of ``ensemble`` under each inference method, keyed
    by the paper's abbreviations (EA, Vote, SL, O)."""
    raw = ensemble.evaluate(x, y, methods=methods, batch_size=batch_size)
    return {METHOD_ABBREVIATIONS.get(method, method): value for method, value in raw.items()}


def incremental_error_curve(
    ensemble: Ensemble,
    x: np.ndarray,
    y: np.ndarray,
    sizes: Sequence[int],
    methods: Sequence[str] = ("average", "vote"),
    batch_size: int = 256,
) -> Dict[str, List[float]]:
    """Error rate as the ensemble grows (the x-axis sweep of Figures 6a-9a).

    ``sizes`` are ensemble sizes (numbers of members, in the order they were
    trained/added); the result maps each inference method to its error-rate
    series.  The oracle series corresponds to Figure 10.
    """
    sizes = [int(s) for s in sizes]
    if any(s < 1 or s > len(ensemble) for s in sizes):
        raise ValueError(f"sizes must be within [1, {len(ensemble)}]")
    curves: Dict[str, List[float]] = {method: [] for method in methods}
    for size in sizes:
        subset = ensemble.subset(size)
        for method in methods:
            if method == "super_learner":
                # The convex combination must be re-fit for every subset size;
                # callers that want SL curves should fit on a validation split
                # beforehand via fit_super_learner_curve.
                raise ValueError(
                    "use fit_super_learner_curve for super-learner curves; it needs "
                    "a validation split to re-fit the combination per size"
                )
            curves[method].append(subset.error_rate(x, y, method=method, batch_size=batch_size))
    return curves


def fit_super_learner_curve(
    ensemble: Ensemble,
    x_val: np.ndarray,
    y_val: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    sizes: Sequence[int],
    batch_size: int = 256,
) -> List[float]:
    """Super-Learner error-rate series over ensemble sizes, re-fitting the
    combination weights on the validation split for every size."""
    series: List[float] = []
    for size in sizes:
        subset = ensemble.subset(int(size))
        subset.fit_super_learner(x_val, y_val, batch_size=batch_size)
        series.append(subset.error_rate(x_test, y_test, method="super_learner", batch_size=batch_size))
    return series


def oracle_curve(
    ensemble: Ensemble,
    x: np.ndarray,
    y: np.ndarray,
    sizes: Sequence[int],
    batch_size: int = 256,
) -> List[float]:
    """Oracle error rate as the ensemble grows (Figure 10)."""
    return [
        ensemble.subset(int(size)).oracle_error_rate(x, y, batch_size=batch_size) for size in sizes
    ]


def member_quality_summary(
    ensemble: Ensemble, x: np.ndarray, y: np.ndarray, batch_size: int = 256
) -> Dict[str, float]:
    """Mean / best / worst / spread of the individual member error rates —
    the "quality of the ensemble networks remains consistently good" check
    the paper makes alongside Figure 10."""
    rates = list(ensemble.member_error_rates(x, y, batch_size=batch_size).values())
    return {
        "mean": float(np.mean(rates)),
        "best": float(np.min(rates)),
        "worst": float(np.max(rates)),
        "spread": float(np.max(rates) - np.min(rates)),
    }


def pairwise_disagreement(ensemble: Ensemble, x: np.ndarray, batch_size: int = 256) -> float:
    """Mean pairwise disagreement between member predictions."""
    return ensemble.disagreement(x, batch_size=batch_size)

"""Evaluation metrics and reporting for ensembles and benchmark output."""

from repro.evaluation.metrics import (
    evaluate_ensemble,
    fit_super_learner_curve,
    incremental_error_curve,
    member_quality_summary,
    oracle_curve,
    pairwise_disagreement,
)
from repro.evaluation.reporting import (
    comparison_summary,
    expectation_note,
    format_error_rates,
    format_series,
    format_table,
    format_time_breakdown,
)

__all__ = [
    "evaluate_ensemble",
    "incremental_error_curve",
    "fit_super_learner_curve",
    "oracle_curve",
    "member_quality_summary",
    "pairwise_disagreement",
    "format_table",
    "format_series",
    "format_error_rates",
    "format_time_breakdown",
    "comparison_summary",
    "expectation_note",
]

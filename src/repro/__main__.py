"""Command-line interface: ``python -m repro`` (installed as ``repro``).

Sub-commands drive the full train -> save -> serve workflow from JSON
configs and ``.npy`` tensors, with no Python required:

* ``repro train --config exp.json --output artifact/`` — execute a declarative
  :class:`~repro.api.ExperimentSpec` and save the trained ensemble artifact;
* ``repro predict --artifact artifact/ --input x.npy`` — one-shot predictions
  from a saved artifact;
* ``repro serve --artifact artifact/ --workers 4`` — long-running HTTP server
  (``POST /predict``, ``GET /info``, ``GET /healthz``, Prometheus
  ``GET /metrics``; structured JSON event logs on stderr; stops cleanly on
  SIGINT/SIGTERM).  ``--mode pool`` (default) answers from a local
  self-healing multi-process worker pool; ``--mode queue`` publishes jobs on
  a partitioned broker answered by an autoscaled fleet of consumers;
* ``repro fleet-worker --broker host:port --artifact artifact/`` — one fleet
  consumer: attaches to a queue-mode front's broker and answers jobs through
  its own worker pool (the front spawns these itself; run them by hand to
  add capacity from other terminals or hosts);
* ``repro inspect --artifact artifact/`` — summarise an artifact, including
  training phase makespans and per-member training-history summaries; for a
  generation-versioned store, also the lineage and promotion ledger;
* ``repro retrain --store store/ --config exp.json`` — background retraining
  loop: train on fresh data, shadow-evaluate against the promoted baseline,
  and promote the new generation into the store (the serving tier picks it
  up via ``POST /admin/swap`` with zero downtime).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MotherNets reproduction: train, persist, and serve deep ensembles.",
    )
    import repro

    parser.add_argument("--version", action="version", version=f"repro {repro.__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="run a declarative experiment and save the artifact")
    train.add_argument("--config", required=True, type=Path, help="ExperimentSpec JSON file")
    train.add_argument("--output", required=True, type=Path, help="artifact directory to create")
    train.add_argument(
        "--dump-test-inputs",
        type=Path,
        default=None,
        help="also save the dataset's test inputs to this .npy file (handy for "
        "smoke-testing `repro predict` against the artifact)",
    )
    train.add_argument(
        "--no-eval", action="store_true", help="skip test-set evaluation after training"
    )
    train.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted run from the checkpoint journal in --output "
        "(finished members are restored bitwise, not retrained)",
    )
    train.add_argument(
        "--log-file",
        type=Path,
        default=None,
        help="also write JSON event logs to this file (size-rotated)",
    )
    train.add_argument(
        "--metrics-file",
        type=Path,
        default=None,
        help="write a Prometheus text dump of the run's metrics here on exit",
    )

    predict = sub.add_parser("predict", help="serve predictions from a saved artifact")
    predict.add_argument("--artifact", required=True, type=Path, help="artifact directory")
    predict.add_argument("--input", required=True, type=Path, help=".npy batch of inputs")
    predict.add_argument(
        "--method",
        default="average",
        help="combination method: average | vote | super_learner (default: average)",
    )
    predict.add_argument(
        "--proba", action="store_true", help="emit class probabilities instead of labels"
    )
    predict.add_argument(
        "--output", type=Path, default=None, help="write predictions to this .npy file"
    )
    predict.add_argument("--batch-size", type=int, default=256)

    serve = sub.add_parser(
        "serve", help="serve an artifact over HTTP from a multi-process worker pool"
    )
    serve.add_argument("--artifact", required=True, type=Path, help="artifact directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765, help="TCP port (0 picks an ephemeral port)"
    )
    serve.add_argument("--workers", type=int, default=2, help="worker processes")
    serve.add_argument(
        "--method",
        default="average",
        help="default combination method: average | vote | super_learner",
    )
    serve.add_argument("--batch-size", type=int, default=256)
    serve.add_argument(
        "--max-batch", type=int, default=1024, help="micro-batch row cap per dispatch"
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="how long the dispatcher waits to coalesce concurrent requests",
    )
    serve.add_argument(
        "--no-restart",
        action="store_true",
        help="disable the pool supervisor's automatic worker respawn",
    )
    serve.add_argument(
        "--transport",
        choices=("shm", "pickle"),
        default="shm",
        help="request/response data plane: shared-memory arenas (default) or "
        "the pickle-through-queues reference path",
    )
    serve.add_argument(
        "--log-format",
        choices=("json", "text"),
        default="json",
        help="stderr log format: structured JSON event lines (default) or text",
    )
    serve.add_argument(
        "--log-file",
        type=Path,
        default=None,
        help="also write JSON event logs to this file (size-rotated)",
    )
    serve.add_argument(
        "--mode",
        choices=("pool", "queue"),
        default="pool",
        help="serving backend: a local worker pool (default) or a queue-backed "
        "horizontal consumer fleet",
    )
    fleet = serve.add_argument_group("queue mode (--mode queue)")
    fleet.add_argument(
        "--partitions", type=int, default=4, help="broker partitions (queue mode)"
    )
    fleet.add_argument(
        "--min-consumers", type=int, default=1, help="minimum fleet consumers"
    )
    fleet.add_argument(
        "--max-consumers", type=int, default=4, help="autoscaler's consumer cap"
    )
    fleet.add_argument(
        "--consumer-workers",
        type=int,
        default=None,
        help="pool workers per consumer (default: --workers)",
    )
    fleet.add_argument(
        "--visibility-timeout",
        type=float,
        default=30.0,
        help="seconds a leased job may stay unacked before redelivery",
    )
    fleet.add_argument(
        "--fleet-port",
        type=int,
        default=0,
        help="TCP port for the broker (0 picks an ephemeral port; printed in "
        "the serving banner for external fleet workers)",
    )
    fleet.add_argument(
        "--fleet-authkey",
        default="repro-fleet",
        help="shared secret fleet workers must present to the broker",
    )
    fleet.add_argument(
        "--no-autoscale",
        action="store_true",
        help="pin the consumer count at --min-consumers",
    )
    fleet.add_argument(
        "--autoscale-cooldown",
        type=float,
        default=10.0,
        help="seconds the autoscaler holds still after any scale action",
    )
    fleet.add_argument(
        "--autoscale-interval",
        type=float,
        default=1.0,
        help="seconds between autoscaler evaluations",
    )
    fleet.add_argument(
        "--up-queue-depth",
        type=float,
        default=4.0,
        help="scale up when per-consumer backlog exceeds this",
    )
    fleet.add_argument(
        "--down-queue-depth",
        type=float,
        default=1.0,
        help="scale down only when per-consumer backlog is at or below this",
    )
    fleet.add_argument(
        "--up-p99-seconds",
        type=float,
        default=2.0,
        help="scale up when the windowed job-latency p99 exceeds this",
    )
    fleet.add_argument(
        "--down-p99-seconds",
        type=float,
        default=0.5,
        help="scale down only when the windowed p99 is below this",
    )
    fleet.add_argument(
        "--no-local-consumers",
        action="store_true",
        help="do not spawn local fleet workers; serve only externally "
        "attached ones (disables the autoscaler)",
    )

    worker = sub.add_parser(
        "fleet-worker",
        help="run one fleet consumer against a queue-mode serve front's broker",
    )
    worker.add_argument(
        "--broker",
        required=True,
        help="broker address as host:port (see the queue-mode serving banner)",
    )
    worker.add_argument(
        "--authkey", default="repro-fleet", help="broker shared secret"
    )
    worker.add_argument("--artifact", required=True, type=Path, help="artifact directory")
    worker.add_argument(
        "--consumer-id",
        default=None,
        help="stable consumer name (default: fleet-<pid>)",
    )
    worker.add_argument("--workers", type=int, default=1, help="pool worker processes")
    worker.add_argument(
        "--method",
        default="average",
        help="default combination method: average | vote | super_learner",
    )
    worker.add_argument("--batch-size", type=int, default=256)
    worker.add_argument(
        "--max-batch", type=int, default=1024, help="micro-batch row cap per dispatch"
    )
    worker.add_argument(
        "--transport",
        choices=("shm", "pickle"),
        default="shm",
        help="pool data plane (see `repro serve --transport`)",
    )
    worker.add_argument(
        "--metrics-interval",
        type=float,
        default=1.0,
        help="minimum seconds between metrics snapshots shipped to the front",
    )
    worker.add_argument(
        "--log-format",
        choices=("json", "text"),
        default="json",
        help="stderr log format: structured JSON event lines (default) or text",
    )
    worker.add_argument(
        "--log-file",
        type=Path,
        default=None,
        help="also write JSON event logs to this file (size-rotated)",
    )

    inspect = sub.add_parser("inspect", help="summarise a saved artifact")
    inspect.add_argument("--artifact", required=True, type=Path, help="artifact directory")

    retrain = sub.add_parser(
        "retrain",
        help="retrain on fresh data, shadow-evaluate, and promote into an "
        "artifact store (hot-swap source)",
    )
    retrain.add_argument(
        "--store",
        required=True,
        type=Path,
        help="artifact store root (a bare artifact directory is migrated to "
        "the store layout in place, becoming gen-0000)",
    )
    retrain.add_argument(
        "--config", required=True, type=Path, help="ExperimentSpec JSON file"
    )
    retrain.add_argument(
        "--once", action="store_true", help="run exactly one retrain cycle and exit"
    )
    retrain.add_argument(
        "--interval",
        type=float,
        default=0.0,
        help="seconds to sleep between cycles (loop mode)",
    )
    retrain.add_argument(
        "--max-cycles",
        type=int,
        default=None,
        help="stop after this many cycles (default: run until interrupted)",
    )
    retrain.add_argument(
        "--max-error-delta",
        type=float,
        default=1.0,
        help="promotion gate: candidate error may exceed the baseline's by at "
        "most this many percentage points (default: 1.0)",
    )
    retrain.add_argument(
        "--method",
        default="average",
        help="combination method for the shadow evaluation (default: average)",
    )
    retrain.add_argument(
        "--data-seed-step",
        type=int,
        default=1,
        help="dataset-seed increment per cycle (simulates fresh data)",
    )
    retrain.add_argument(
        "--log-file",
        type=Path,
        default=None,
        help="also write JSON event logs to this file (size-rotated)",
    )
    retrain.add_argument(
        "--metrics-file",
        type=Path,
        default=None,
        help="write a Prometheus text dump of the loop's metrics here on exit",
    )

    return parser


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.api import ExperimentSpec, run_experiment, save_ensemble_run
    from repro.api.artifacts import MANIFEST_NAME
    from repro.obs.events import configure_logging, enable_events

    # Surface experiment lifecycle events on stderr (JSON lines under
    # REPRO_LOG_FORMAT=json); stdout stays the machine-readable report.
    configure_logging(log_file=args.log_file)
    enable_events()

    # Fail on a taken output location *before* spending the training time.
    if (args.output / MANIFEST_NAME).exists():
        raise FileExistsError(f"an ensemble artifact already exists at {args.output}")
    spec = ExperimentSpec.from_file(args.config)
    try:
        # The output directory doubles as the checkpoint journal: every
        # finished member lands there as it completes, so an interrupted run
        # continues with `--resume` instead of retraining from zero.
        result = run_experiment(spec, checkpoint_dir=args.output, resume=args.resume)
        save_ensemble_run(result.run, args.output)
        if result.checkpoint is not None:
            result.checkpoint.discard()  # the manifest is on disk; journal done
        if args.dump_test_inputs is not None:
            args.dump_test_inputs.parent.mkdir(parents=True, exist_ok=True)
            np.save(args.dump_test_inputs, result.dataset.x_test)

        report = result.summary()
        report["artifact"] = str(args.output)
        if not args.no_eval:
            methods = ["average", "vote"]
            if result.ensemble.super_learner_weights is not None:
                methods.append("super_learner")
            report["test_error_rate"] = result.evaluate(methods=methods)
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    finally:
        if args.metrics_file is not None:
            _dump_metrics(args.metrics_file)


def _dump_metrics(path: Path) -> None:
    """Write a Prometheus text dump of this process's metrics registry."""
    from repro.obs.exposition import render_prometheus
    from repro.utils.atomic import atomic_write_text

    atomic_write_text(path, render_prometheus())


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.api import EnsemblePredictor

    predictor = EnsemblePredictor.load(
        args.artifact, method=args.method, batch_size=args.batch_size
    )
    x = np.load(args.input)
    if args.proba:
        out = predictor.predict_proba(x)
    else:
        out = predictor.predict(x)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        np.save(args.output, out)
        print(f"wrote {out.shape} predictions to {args.output}")
    else:
        print(json.dumps(out.tolist()))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.parallel.server import run_server

    return run_server(
        artifact=args.artifact,
        host=args.host,
        port=args.port,
        workers=args.workers,
        method=args.method,
        batch_size=args.batch_size,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        restart_workers=not args.no_restart,
        transport=args.transport,
        log_format=args.log_format,
        log_file=args.log_file,
        mode=args.mode,
        partitions=args.partitions,
        min_consumers=args.min_consumers,
        max_consumers=args.max_consumers,
        consumer_workers=args.consumer_workers,
        visibility_timeout=args.visibility_timeout,
        fleet_port=args.fleet_port,
        fleet_authkey=args.fleet_authkey,
        autoscale=not args.no_autoscale,
        autoscale_cooldown=args.autoscale_cooldown,
        autoscale_interval=args.autoscale_interval,
        up_queue_depth=args.up_queue_depth,
        down_queue_depth=args.down_queue_depth,
        up_p99_seconds=args.up_p99_seconds,
        down_p99_seconds=args.down_p99_seconds,
        spawn_consumers=not args.no_local_consumers,
    )


def _cmd_fleet_worker(args: argparse.Namespace) -> int:
    import os
    import signal
    import threading

    from repro.fleet.broker import connect_broker
    from repro.fleet.consumer import FleetConsumer
    from repro.obs.events import configure_logging, enable_events

    configure_logging(fmt=args.log_format, force=True, log_file=args.log_file)
    enable_events()
    host, _, port = args.broker.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(
            f"--broker must look like host:port, got {args.broker!r}"
        )
    consumer_id = args.consumer_id or f"fleet-{os.getpid()}"
    broker = connect_broker((host, int(port)), authkey=args.authkey)
    consumer = FleetConsumer(
        broker,
        args.artifact,
        consumer_id=consumer_id,
        workers=args.workers,
        method=args.method,
        batch_size=args.batch_size,
        max_batch=args.max_batch,
        transport=args.transport,
        metrics_interval=args.metrics_interval,
    ).start()

    stop = threading.Event()

    def _shutdown(*_args):
        stop.set()

    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, _shutdown)

    print(
        json.dumps(
            {
                "event": "fleet-worker",
                "consumer": consumer_id,
                "broker": f"{host}:{port}",
                "pid": os.getpid(),
                "workers": args.workers,
                "artifact": str(args.artifact),
            }
        ),
        flush=True,
    )
    # Serve until signalled — or until the lease loop loses the broker
    # (front gone), at which point there is nothing left to drain.
    while not stop.wait(0.5):
        if not consumer.alive():
            break
    consumer.close()
    print(json.dumps({"event": "stopped", "consumer": consumer_id}), flush=True)
    return 0


def _member_history_summary(meta: dict) -> dict:
    """Collapse one member's persisted training history to headline figures."""
    summary = {
        "name": meta["name"],
        "source": meta.get("source"),
        "parameters": meta.get("parameters"),
        "training_seconds": meta.get("training_seconds"),
    }
    result = meta.get("training_result")
    if result:
        history = result.get("history", [])
        summary["epochs"] = len(history)
        summary["converged"] = result.get("converged")
        if history:
            last = history[-1]
            summary["final_train_loss"] = last.get("train_loss")
            summary["final_train_accuracy"] = last.get("train_accuracy")
            summary["mean_epoch_seconds"] = sum(
                record.get("seconds", 0.0) for record in history
            ) / len(history)
    return summary


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.api import EnsemblePredictor
    from repro.api.artifacts import read_manifest
    from repro.core.artifact_store import resolve_artifact

    predictor = EnsemblePredictor.load(args.artifact, warm=False)
    report = predictor.info()

    # Surface what the v2 artifact schema persists but info() does not:
    # parallel-phase makespans from the cost ledger and the per-member
    # training histories.  For store layouts, also report the generation
    # ledger — lineage (parent generation, hatched-vs-retrained members) and
    # promotion status per generation; bare directories are untouched.
    resolved = resolve_artifact(args.artifact)
    if resolved.store is not None:
        report["store"] = resolved.store.describe()
    manifest = read_manifest(resolved.path)
    ledger = manifest.get("ledger", {})
    summary = manifest.get("ledger_summary", {})
    report["training"] = {
        "total_seconds": summary.get("total_seconds"),
        "makespan_seconds": summary.get("makespan_seconds"),
        "total_epochs": summary.get("total_epochs"),
        "seconds_by_phase": summary.get("seconds_by_phase"),
        "phase_makespans": ledger.get("phase_makespans", {}),
    }
    report["members"] = [
        _member_history_summary(meta) for meta in manifest.get("members", [])
    ]
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def _cmd_retrain(args: argparse.Namespace) -> int:
    from repro.api import ExperimentSpec
    from repro.api.retrain import retrain_loop
    from repro.core.artifact_store import ArtifactStore
    from repro.obs.events import configure_logging, enable_events

    configure_logging(log_file=args.log_file)
    enable_events()
    spec = ExperimentSpec.from_file(args.config)
    store = ArtifactStore.open(args.store)
    max_cycles = 1 if args.once else args.max_cycles
    try:
        reports = retrain_loop(
            store,
            spec,
            interval=args.interval,
            max_cycles=max_cycles,
            max_error_delta=args.max_error_delta,
            method=args.method,
            data_seed_step=args.data_seed_step,
        )
        print(
            json.dumps(
                {
                    "store": str(store.root),
                    "current_generation": store.current_generation(),
                    "cycles": [report.to_dict() for report in reports],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    except KeyboardInterrupt:
        return 130
    finally:
        if args.metrics_file is not None:
            _dump_metrics(args.metrics_file)


_COMMANDS = {
    "train": _cmd_train,
    "predict": _cmd_predict,
    "serve": _cmd_serve,
    "fleet-worker": _cmd_fleet_worker,
    "inspect": _cmd_inspect,
    "retrain": _cmd_retrain,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, TypeError, KeyError, RuntimeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

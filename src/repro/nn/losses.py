"""Loss functions.

Training uses the fused softmax-cross-entropy loss (numerically stable and
with the simple ``softmax - onehot`` gradient); mean-squared error is provided
for the Super Learner meta-training and for tests.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.layers.activations import softmax


class Loss:
    """Base class: ``forward`` returns the scalar loss, ``backward`` the
    gradient with respect to the model output (logits)."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        return self.forward(predictions, targets), self.backward(predictions, targets)


def _to_onehot(targets: np.ndarray, num_classes: int, dtype=np.float64) -> np.ndarray:
    """Convert integer labels to one-hot; pass through matrices unchanged.

    ``dtype`` follows the logits so the gradient keeps the compute dtype
    (a float64 one-hot would silently promote a float32 backward pass).
    """
    targets = np.asarray(targets)
    if targets.ndim == 1:
        onehot = np.zeros((targets.shape[0], num_classes), dtype=dtype)
        onehot[np.arange(targets.shape[0]), targets.astype(int)] = 1.0
        return onehot
    if targets.shape[1] != num_classes:
        raise ValueError(
            f"target matrix has {targets.shape[1]} columns, expected {num_classes}"
        )
    return targets.astype(dtype)


class SoftmaxCrossEntropy(Loss):
    """Cross-entropy between softmax(logits) and integer or one-hot targets."""

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = float(label_smoothing)

    def _smooth(self, onehot: np.ndarray) -> np.ndarray:
        if self.label_smoothing == 0.0:
            return onehot
        k = onehot.shape[1]
        return onehot * (1.0 - self.label_smoothing) + self.label_smoothing / k

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        probs = softmax(logits)
        onehot = self._smooth(_to_onehot(targets, logits.shape[1], dtype=probs.dtype))
        log_probs = np.log(np.clip(probs, 1e-12, None))
        return float(-(onehot * log_probs).sum(axis=1).mean())

    def backward(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        probs = softmax(logits)
        onehot = self._smooth(_to_onehot(targets, logits.shape[1], dtype=probs.dtype))
        return (probs - onehot) / logits.shape[0]


class MeanSquaredError(Loss):
    """Mean squared error, averaged over samples and output dimensions."""

    @staticmethod
    def _target_dtype(predictions: np.ndarray):
        dtype = np.asarray(predictions).dtype
        return dtype if np.issubdtype(dtype, np.floating) else np.float64

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=self._target_dtype(predictions))
        return float(np.mean((predictions - targets) ** 2))

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        targets = np.asarray(targets, dtype=self._target_dtype(predictions))
        return 2.0 * (predictions - targets) / predictions.size


_LOSSES = {
    "softmax_cross_entropy": SoftmaxCrossEntropy,
    "cross_entropy": SoftmaxCrossEntropy,
    "mse": MeanSquaredError,
}


def get_loss(name_or_loss) -> Loss:
    """Resolve a loss by name or return the instance unchanged."""
    if isinstance(name_or_loss, Loss):
        return name_or_loss
    try:
        return _LOSSES[str(name_or_loss)]()
    except KeyError as exc:
        raise ValueError(f"Unknown loss {name_or_loss!r}; known: {sorted(_LOSSES)}") from exc

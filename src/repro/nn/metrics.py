"""Classification metrics used throughout training and evaluation."""

from __future__ import annotations

import numpy as np


def _as_labels(values: np.ndarray) -> np.ndarray:
    """Collapse probability/logit matrices to integer label vectors."""
    values = np.asarray(values)
    if values.ndim == 2:
        return values.argmax(axis=1)
    return values.astype(int)


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of correctly classified samples."""
    pred_labels = _as_labels(predictions)
    true_labels = _as_labels(targets)
    if pred_labels.shape != true_labels.shape:
        raise ValueError("predictions and targets must describe the same number of samples")
    if pred_labels.size == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float(np.mean(pred_labels == true_labels))


def error_rate(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Classification error in percent (the unit used by the paper's figures)."""
    return 100.0 * (1.0 - accuracy(predictions, targets))


def top_k_accuracy(probabilities: np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy for probability/logit matrices."""
    probabilities = np.asarray(probabilities)
    if probabilities.ndim != 2:
        raise ValueError("top_k_accuracy expects a (N, num_classes) matrix")
    k = min(int(k), probabilities.shape[1])
    true_labels = _as_labels(targets)
    topk = np.argpartition(-probabilities, kth=k - 1, axis=1)[:, :k]
    hits = (topk == true_labels[:, None]).any(axis=1)
    return float(hits.mean())


def confusion_matrix(predictions: np.ndarray, targets: np.ndarray, num_classes: int) -> np.ndarray:
    """Dense ``(num_classes, num_classes)`` confusion matrix (rows = truth)."""
    pred_labels = _as_labels(predictions)
    true_labels = _as_labels(targets)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (true_labels, pred_labels), 1)
    return matrix

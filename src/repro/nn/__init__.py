"""Numpy neural-network substrate: layers, losses, optimizers, models, and the
training loop used by the MotherNets ensemble trainers."""

from repro.nn import initializers
from repro.nn.dtypes import (
    default_dtype,
    get_default_dtype,
    resolve_dtype,
    set_default_dtype,
)
from repro.nn.workspace import WorkspaceArena
from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePool2D,
    Layer,
    MaxPool2D,
    ReLU,
    ResidualUnit,
    Softmax,
    softmax,
)
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy, get_loss
from repro.nn.metrics import accuracy, confusion_matrix, error_rate, top_k_accuracy
from repro.nn.model import Model
from repro.nn.optimizers import (
    Adam,
    ConstantSchedule,
    CosineSchedule,
    SGD,
    StepDecaySchedule,
    get_optimizer,
)
from repro.nn.serialization import load_model, save_model
from repro.nn.training import (
    ConvergenceCriterion,
    EpochRecord,
    Trainer,
    TrainingConfig,
    TrainingResult,
    evaluate,
    iterate_minibatches,
)

__all__ = [
    "initializers",
    "default_dtype",
    "get_default_dtype",
    "resolve_dtype",
    "set_default_dtype",
    "WorkspaceArena",
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "GlobalAveragePool2D",
    "BatchNorm",
    "ReLU",
    "Softmax",
    "softmax",
    "Flatten",
    "Dropout",
    "ResidualUnit",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "get_loss",
    "accuracy",
    "error_rate",
    "top_k_accuracy",
    "confusion_matrix",
    "Model",
    "save_model",
    "load_model",
    "SGD",
    "Adam",
    "ConstantSchedule",
    "StepDecaySchedule",
    "CosineSchedule",
    "get_optimizer",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
    "EpochRecord",
    "ConvergenceCriterion",
    "evaluate",
    "iterate_minibatches",
]

"""Optimizers and learning-rate schedules.

The paper trains everything with SGD (mini-batch 256, learning rate 0.1,
batch normalisation).  SGD with optional Nesterov/classical momentum and
weight decay is the default; Adam is included for convenience in the examples
and tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np


class LearningRateSchedule:
    """Base class mapping an epoch index to a learning rate."""

    def __init__(self, base_lr: float):
        if base_lr <= 0:
            raise ValueError("base_lr must be positive")
        self.base_lr = float(base_lr)

    def learning_rate(self, epoch: int) -> float:
        raise NotImplementedError


class ConstantSchedule(LearningRateSchedule):
    """Constant learning rate (the paper's setting)."""

    def learning_rate(self, epoch: int) -> float:
        return self.base_lr


class StepDecaySchedule(LearningRateSchedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, base_lr: float, step_size: int = 10, gamma: float = 0.5):
        super().__init__(base_lr)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def learning_rate(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class CosineSchedule(LearningRateSchedule):
    """Cosine annealing from ``base_lr`` to ``min_lr`` over ``total_epochs``.

    Cyclic cosine annealing is the ingredient behind Snapshot Ensembles
    (Huang et al.), one of the related fast-ensembling approaches discussed in
    the paper; the optional ``cycle_length`` makes the schedule cyclic so the
    snapshot baseline in ``repro.core.baselines`` can reuse it.
    """

    def __init__(
        self,
        base_lr: float,
        total_epochs: int = 50,
        min_lr: float = 0.0,
        cycle_length: int | None = None,
    ):
        super().__init__(base_lr)
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.total_epochs = int(total_epochs)
        self.min_lr = float(min_lr)
        self.cycle_length = int(cycle_length) if cycle_length else None

    def learning_rate(self, epoch: int) -> float:
        period = self.cycle_length or self.total_epochs
        t = (epoch % period) / max(period - 1, 1)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + np.cos(np.pi * t))


class Optimizer:
    """Base optimizer over ``(name, param, grad)`` triples.

    State (e.g. momentum buffers) is keyed by the qualified parameter name so
    the same optimizer instance can keep training a model across epochs.
    """

    def __init__(self, learning_rate: float = 0.1, weight_decay: float = 0.0):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)
        self.state: Dict[str, Dict[str, np.ndarray]] = {}
        self.iterations = 0

    def set_learning_rate(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = float(lr)

    def step(self, parameters: Iterable[Tuple[str, np.ndarray, np.ndarray]]) -> None:
        """Update every parameter in-place from its gradient."""
        for name, param, grad in parameters:
            if self.weight_decay and param.ndim > 1:
                grad = grad + self.weight_decay * param
            self._update(name, param, grad)
        self.iterations += 1

    def _update(self, name: str, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ):
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)

    def _update(self, name: str, param: np.ndarray, grad: np.ndarray) -> None:
        if self.momentum == 0.0:
            param -= self.learning_rate * grad
            return
        buf = self.state.setdefault(name, {"velocity": np.zeros_like(param)})["velocity"]
        buf *= self.momentum
        buf += grad
        if self.nesterov:
            update = grad + self.momentum * buf
        else:
            update = buf
        param -= self.learning_rate * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba)."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(learning_rate, weight_decay)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)

    def _update(self, name: str, param: np.ndarray, grad: np.ndarray) -> None:
        slot = self.state.setdefault(
            name, {"m": np.zeros_like(param), "v": np.zeros_like(param), "t": np.zeros(1)}
        )
        slot["t"] += 1
        t = float(slot["t"][0])
        slot["m"] = self.beta1 * slot["m"] + (1 - self.beta1) * grad
        slot["v"] = self.beta2 * slot["v"] + (1 - self.beta2) * grad**2
        m_hat = slot["m"] / (1 - self.beta1**t)
        v_hat = slot["v"] / (1 - self.beta2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


_OPTIMIZERS = {"sgd": SGD, "adam": Adam}


def get_optimizer(name_or_opt, **kwargs) -> Optimizer:
    """Resolve an optimizer by name (with kwargs) or return the instance."""
    if isinstance(name_or_opt, Optimizer):
        return name_or_opt
    try:
        return _OPTIMIZERS[str(name_or_opt)](**kwargs)
    except KeyError as exc:
        raise ValueError(
            f"Unknown optimizer {name_or_opt!r}; known: {sorted(_OPTIMIZERS)}"
        ) from exc

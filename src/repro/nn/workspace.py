"""Reusable scratch-buffer arena for hot-path layers.

The convolution layer needs several large temporaries per batch (the padded
input, the im2col patch matrix, the col2im scatter target).  Allocating them
fresh on every forward/backward call dominates the non-BLAS time of a training
step, so each layer owns a :class:`WorkspaceArena` that hands out the same
buffer again for every request with the same name, shape, and dtype — i.e.
for every batch of the same size.  The few shapes that alternate during a fit
(full batch, trailing partial batch, validation batch) coexist in the arena
rather than evicting each other.

Buffers are plain scratch memory: contents persist between ``get`` calls, and
callers own the invariants they rely on (e.g. the conv layer keeps the zero
border of its padding buffer intact by only ever writing the interior).
Arenas are never serialised; they are rebuilt lazily after model load/copy.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class WorkspaceArena:
    """Named, shape-keyed scratch buffers with reuse across calls.

    Buffers are cached per ``(key, shape, dtype)`` so the shapes that
    alternate within a normal training loop — the full batch, the smaller
    trailing batch of an epoch, the validation batch — each keep their own
    buffer and none of them thrashes the others.  Only a handful of distinct
    shapes ever occur per fit; :meth:`clear` releases them all.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[tuple, np.ndarray] = {}

    def get(
        self,
        key: str,
        shape: tuple,
        dtype: np.dtype,
        zero_on_alloc: bool = False,
    ) -> np.ndarray:
        """Return the buffer for ``(key, shape, dtype)``, allocating on first
        use of that combination.

        ``zero_on_alloc`` zero-fills *newly allocated* buffers only; reused
        buffers keep their previous contents (that persistence is the point —
        see the padding-border invariant in ``Conv2D``).  Callers that need a
        cleared buffer every time must ``fill(0)`` themselves.
        """
        cache_key = (key, tuple(shape), np.dtype(dtype))
        buf = self._buffers.get(cache_key)
        if buf is None:
            buf = np.zeros(shape, dtype=dtype) if zero_on_alloc else np.empty(shape, dtype=dtype)
            self._buffers[cache_key] = buf
        return buf

    def clear(self) -> None:
        """Drop all cached buffers (frees the memory)."""
        self._buffers.clear()

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return int(sum(buf.nbytes for buf in self._buffers.values()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkspaceArena(buffers={len(self._buffers)}, nbytes={self.nbytes})"

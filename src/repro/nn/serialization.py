"""Model persistence.

Saves a :class:`~repro.nn.model.Model` (its architecture spec plus every
parameter and state tensor) into a single compressed ``.npz`` file, and loads
it back.  Used to checkpoint trained MotherNets so that additional ensemble
members can be hatched later without retraining (one of the practical
benefits the paper highlights: the training cost of growing an ensemble is
just the member fine-tuning).

For *in-memory* transport between processes (the parallel training engine
ships models over ``multiprocessing`` pipes), :func:`pack_model_state` /
:func:`unpack_model_state` provide a picklable plain-data form — spec JSON,
compute dtype, and the weight/state snapshot — without touching the disk
format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.arch.serialization import spec_from_json, spec_to_json
from repro.nn.model import Model

_SPEC_KEY = "__spec_json__"


def pack_model_state(model: Model) -> Dict[str, Any]:
    """A picklable snapshot of ``model``: spec JSON + dtype + weights/state.

    The snapshot is plain data (strings and numpy arrays), safe to ship
    through ``multiprocessing`` queues under the ``spawn`` start method.
    """
    return {
        "spec_json": spec_to_json(model.spec),
        "dtype": str(np.dtype(model.dtype)),
        "weights": model.get_weights(),
    }


def unpack_model_state(state: Dict[str, Any]) -> Model:
    """Rebuild the model captured by :func:`pack_model_state`.

    The model is re-materialised with ``seed=0`` (matching how the hatching
    morphisms construct their results) and every parameter and state tensor
    is then overwritten from the snapshot, so the returned model computes
    bitwise the same function as the packed one.
    """
    spec = spec_from_json(state["spec_json"])
    model = Model.from_spec(spec, seed=0, dtype=state["dtype"])
    model.set_weights(state["weights"])
    return model


def save_model(model: Model, path: Union[str, Path]) -> Path:
    """Save ``model`` (spec + weights + state) to ``path`` as an ``.npz`` file.

    The write is crash-safe: the archive is built in a temp file next to the
    target and renamed over it (``repro.utils.atomic``), so a kill at any
    instant leaves either the old checkpoint or the new one, never a torn
    ``.npz``.
    """
    from repro.utils.atomic import atomic_writer

    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    arrays = {}
    for layer_name, layer_weights in model.get_weights().items():
        for key, value in layer_weights.items():
            arrays[f"{layer_name}|{key}"] = value
    arrays[_SPEC_KEY] = np.frombuffer(spec_to_json(model.spec).encode("utf-8"), dtype=np.uint8)
    with atomic_writer(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    return path


def load_model(path: Union[str, Path]) -> Model:
    """Load a model previously stored with :func:`save_model`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if _SPEC_KEY not in archive:
            raise ValueError(f"{path} does not look like a saved repro model (missing spec)")
        spec_json = bytes(archive[_SPEC_KEY].tobytes()).decode("utf-8")
        spec = spec_from_json(spec_json)
        weights: dict = {}
        for key in archive.files:
            if key == _SPEC_KEY:
                continue
            layer_name, weight_key = key.split("|", 1)
            weights.setdefault(layer_name, {})[weight_key] = archive[key]
    # Rebuild in the checkpoint's dtype so compute and weights agree even when
    # the global compute dtype changed since the model was saved.
    dtype = None
    for layer_weights in weights.values():
        for value in layer_weights.values():
            if value.dtype in (np.float32, np.float64):
                dtype = value.dtype
                break
        if dtype is not None:
            break
    model = Model.from_spec(spec, seed=0, dtype=dtype)
    model.set_weights(weights)
    return model

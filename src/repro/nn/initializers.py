"""Weight initialisation schemes.

The paper initialises all weights by sampling from a Gaussian with zero mean
and unit standard deviation.  That works for the small networks of 2015-era
papers but is numerically fragile for deeper nets, so the substrate also
provides He/Glorot initialisers (the library default is He-normal, which is
standard for ReLU networks); the paper's scheme is available as
``gaussian(std=1.0)`` for faithful runs.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from repro.nn.dtypes import DTypeLike, default_dtype, resolve_dtype
from repro.utils.rng import SeedLike, as_rng

Initializer = Callable[[Tuple[int, ...], np.random.Generator], np.ndarray]


def _fan_in_out(shape: Sequence[int]) -> Tuple[int, int]:
    """Compute fan-in / fan-out for dense ``(in, out)`` and conv
    ``(out_c, in_c, kh, kw)`` weight shapes."""
    if len(shape) == 2:
        fan_in, fan_out = shape[0], shape[1]
    elif len(shape) == 4:
        out_c, in_c, kh, kw = shape
        receptive = kh * kw
        fan_in = in_c * receptive
        fan_out = out_c * receptive
    else:  # pragma: no cover - defensive
        size = int(np.prod(shape))
        fan_in = fan_out = max(1, size)
    return int(fan_in), int(fan_out)


def gaussian(std: float = 1.0, mean: float = 0.0) -> Initializer:
    """Gaussian initialiser with fixed standard deviation (paper default)."""

    def init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.normal(mean, std, size=shape).astype(resolve_dtype())

    return init


def he_normal() -> Initializer:
    """He (Kaiming) normal initialiser, suited to ReLU activations."""

    def init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        fan_in, _ = _fan_in_out(shape)
        std = np.sqrt(2.0 / fan_in)
        return rng.normal(0.0, std, size=shape).astype(resolve_dtype())

    return init


def glorot_uniform() -> Initializer:
    """Glorot (Xavier) uniform initialiser."""

    def init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        fan_in, fan_out = _fan_in_out(shape)
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        return rng.uniform(-limit, limit, size=shape).astype(resolve_dtype())

    return init


def zeros() -> Initializer:
    """All-zeros initialiser (used for biases and zero-init residual convs)."""

    def init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return np.zeros(shape, dtype=resolve_dtype())

    return init


def constant(value: float) -> Initializer:
    """Constant initialiser."""

    def init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return np.full(shape, float(value), dtype=resolve_dtype())

    return init


_REGISTRY = {
    "gaussian": gaussian(),
    "he_normal": he_normal(),
    "glorot_uniform": glorot_uniform(),
    "zeros": zeros(),
}


def get_initializer(name_or_fn) -> Initializer:
    """Resolve an initialiser by name or pass a callable through."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return _REGISTRY[str(name_or_fn)]
    except KeyError as exc:
        raise ValueError(
            f"Unknown initializer {name_or_fn!r}; known: {sorted(_REGISTRY)}"
        ) from exc


def initialize(
    shape: Tuple[int, ...],
    name_or_fn="he_normal",
    seed: SeedLike = None,
    dtype: DTypeLike | None = None,
) -> np.ndarray:
    """Convenience helper: materialise a tensor of ``shape`` with the given scheme."""
    rng = as_rng(seed)
    resolved = resolve_dtype(dtype)
    # Draw under the requested dtype so float64 callers get full-precision
    # values rather than float32 draws widened after the fact.
    with default_dtype(resolved):
        values = get_initializer(name_or_fn)(tuple(int(s) for s in shape), rng)
    return values.astype(resolved, copy=False)

"""Model: a trainable network materialised from an ``ArchitectureSpec``.

The model keeps a *structured* view of its layers (per-block convolutional
units, the classifier head) in addition to the flat execution sequence.  The
structured view is what the function-preserving transformations in
``repro.core.morphism`` manipulate: they need to know which convolution in
which block corresponds to which position of the spec.

Layout produced by :meth:`Model.from_spec`:

* For convolutional specs: for every block, one :class:`ConvUnit` (conv ->
  optional BatchNorm -> ReLU) per ``ConvLayerSpec`` — or one
  :class:`~repro.nn.layers.residual.ResidualUnit` per spec layer when the
  block is residual — followed by 2x2 max pooling whenever the spatial size is
  still even and larger than one pixel.  The convolutional stage is closed by
  global average pooling.
* Hidden dense layers (dense -> optional BatchNorm -> ReLU), optional dropout,
  and a final linear classifier producing logits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.arch.spec import ArchitectureSpec
from repro.nn.dtypes import DTypeLike, resolve_dtype
from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePool2D,
    Layer,
    MaxPool2D,
    ReLU,
    ResidualUnit,
)
from repro.nn.layers.activations import softmax
from repro.utils.rng import RngManager, SeedLike


@dataclass
class ConvUnit:
    """A plain convolutional unit: conv -> (BatchNorm) -> ReLU."""

    conv: Conv2D
    bn: Optional[BatchNorm]
    relu: ReLU

    def layers(self) -> List[Layer]:
        out: List[Layer] = [self.conv]
        if self.bn is not None:
            out.append(self.bn)
        out.append(self.relu)
        return out


@dataclass
class DenseUnit:
    """A hidden dense unit: dense -> (BatchNorm) -> ReLU."""

    dense: Dense
    bn: Optional[BatchNorm]
    relu: ReLU

    def layers(self) -> List[Layer]:
        out: List[Layer] = [self.dense]
        if self.bn is not None:
            out.append(self.bn)
        out.append(self.relu)
        return out


@dataclass
class ConvBlock:
    """All units of one spec block plus the optional trailing pooling layer."""

    units: List[object] = field(default_factory=list)  # ConvUnit or ResidualUnit
    pool: Optional[MaxPool2D] = None


class Model:
    """A feed-forward classifier built from an :class:`ArchitectureSpec`."""

    def __init__(self, spec: ArchitectureSpec, dtype: DTypeLike | None = None):
        self.spec = spec
        self.dtype = resolve_dtype(dtype)
        self.conv_blocks: List[ConvBlock] = []
        self.global_pool: Optional[GlobalAveragePool2D] = None
        self.flatten: Optional[Flatten] = None
        self.dense_units: List[DenseUnit] = []
        self.dropout: Optional[Dropout] = None
        self.classifier: Optional[Dense] = None

    # ------------------------------------------------------------ factories
    @classmethod
    def from_spec(
        cls,
        spec: ArchitectureSpec,
        seed: SeedLike = 0,
        weight_init="he_normal",
        dtype: DTypeLike | None = None,
    ) -> "Model":
        """Materialise ``spec`` with freshly initialised weights.

        ``dtype`` fixes the compute dtype of every layer (default: the global
        compute dtype, ``float32`` unless reconfigured).
        """
        rngs = RngManager(seed if isinstance(seed, int) else None)
        if not isinstance(seed, int) and seed is not None:
            # A generator was passed: draw a base seed from it for determinism.
            rngs = RngManager(int(np.random.default_rng().integers(2**31)) if seed is None else int(seed.integers(2**31)))
        model = cls(spec, dtype=dtype)
        dt = model.dtype

        if spec.kind == "conv":
            channels, height, width = spec.input_shape
            for b, block_spec in enumerate(spec.conv_blocks):
                block = ConvBlock()
                for i, layer_spec in enumerate(block_spec.layers):
                    layer_seed = rngs.seed("conv", b, i)
                    if block_spec.residual:
                        unit: object = ResidualUnit(
                            in_channels=channels,
                            channels=layer_spec.filters,
                            kernel_size=layer_spec.filter_size,
                            use_batchnorm=spec.use_batchnorm,
                            seed=layer_seed,
                            name=f"block{b}.unit{i}",
                            dtype=dt,
                        )
                    else:
                        conv = Conv2D(
                            channels,
                            layer_spec.filters,
                            layer_spec.filter_size,
                            weight_init=weight_init,
                            seed=layer_seed,
                            name=f"block{b}.conv{i}",
                            dtype=dt,
                        )
                        bn = (
                            BatchNorm(layer_spec.filters, name=f"block{b}.bn{i}", dtype=dt)
                            if spec.use_batchnorm
                            else None
                        )
                        unit = ConvUnit(conv=conv, bn=bn, relu=ReLU(name=f"block{b}.relu{i}"))
                    block.units.append(unit)
                    channels = layer_spec.filters
                if height % 2 == 0 and width % 2 == 0 and min(height, width) >= 2:
                    block.pool = MaxPool2D(2, name=f"block{b}.pool")
                    height //= 2
                    width //= 2
                model.conv_blocks.append(block)
            model.global_pool = GlobalAveragePool2D()
            features = channels
        else:
            features = spec.input_shape[0]

        for i, layer_spec in enumerate(spec.dense_layers):
            dense = Dense(
                features,
                layer_spec.units,
                weight_init=weight_init,
                seed=rngs.seed("dense", i),
                name=f"hidden{i}.dense",
                dtype=dt,
            )
            bn = (
                BatchNorm(layer_spec.units, name=f"hidden{i}.bn", dtype=dt)
                if spec.use_batchnorm
                else None
            )
            model.dense_units.append(DenseUnit(dense=dense, bn=bn, relu=ReLU(name=f"hidden{i}.relu")))
            features = layer_spec.units

        if spec.dropout_rate > 0:
            model.dropout = Dropout(spec.dropout_rate, seed=rngs.seed("dropout"))
        model.classifier = Dense(
            features,
            spec.num_classes,
            weight_init=weight_init,
            seed=rngs.seed("classifier"),
            name="classifier",
            dtype=dt,
        )
        return model

    # --------------------------------------------------------------- layers
    def _sequence(self) -> List[Layer]:
        """The flat execution order of all layers."""
        layers: List[Layer] = []
        for block in self.conv_blocks:
            for unit in block.units:
                if isinstance(unit, ResidualUnit):
                    layers.append(unit)
                else:
                    layers.extend(unit.layers())
            if block.pool is not None:
                layers.append(block.pool)
        if self.global_pool is not None:
            layers.append(self.global_pool)
        if self.flatten is not None:
            layers.append(self.flatten)
        for unit in self.dense_units:
            layers.extend(unit.layers())
        if self.dropout is not None:
            layers.append(self.dropout)
        if self.classifier is not None:
            layers.append(self.classifier)
        return layers

    def parameter_layers(self) -> List[Layer]:
        """Layers that own trainable parameters."""
        return [layer for layer in self._sequence() if layer.parameter_count() > 0]

    # ------------------------------------------------------------------ API
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute logits for a batch of inputs."""
        # Cast only when needed: inputs already in the compute dtype (the
        # common case — the trainer casts once per fit) pass through untouched.
        if isinstance(x, np.ndarray) and x.dtype == self.dtype:
            out = x
        else:
            out = np.asarray(x, dtype=self.dtype)
        for layer in self._sequence():
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        """Back-propagate a gradient with respect to the logits; returns the
        gradient with respect to the input batch."""
        grad = grad_logits
        for layer in reversed(self._sequence()):
            grad = layer.backward(grad)
        # Layers may return views into reused workspace buffers (see
        # Layer.backward); detach at the model boundary so callers own the
        # input gradient outright.  One input-sized copy per step — noise
        # next to the conv GEMMs.
        return np.array(grad, copy=True)

    def predict_logits(self, x: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Inference-mode logits, optionally mini-batched to bound memory."""
        # One cast for the whole call; the per-batch forward then sees the
        # compute dtype already and does not cast again.
        if not isinstance(x, np.ndarray) or x.dtype != self.dtype:
            x = np.asarray(x, dtype=self.dtype)
        if batch_size is None or x.shape[0] <= batch_size:
            return self.forward(x, training=False)
        chunks = [
            self.forward(x[start : start + batch_size], training=False)
            for start in range(0, x.shape[0], batch_size)
        ]
        return np.concatenate(chunks, axis=0)

    def predict_proba(self, x: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Inference-mode class probabilities."""
        return softmax(self.predict_logits(x, batch_size=batch_size), axis=-1)

    def predict(self, x: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Inference-mode class labels."""
        return self.predict_logits(x, batch_size=batch_size).argmax(axis=1)

    # ------------------------------------------------------------ parameters
    def iter_parameters(self) -> Iterator[Tuple[str, np.ndarray, np.ndarray]]:
        for layer in self.parameter_layers():
            yield from layer.iter_parameters()

    def zero_grads(self) -> None:
        for layer in self.parameter_layers():
            layer.zero_grads()

    def clear_workspaces(self) -> None:
        """Release every layer's reusable scratch buffers (they rebuild
        lazily); call between fits to return training-sized scratch memory."""
        for layer in self._sequence():
            layer.clear_workspaces()

    def parameter_count(self) -> int:
        return int(sum(layer.parameter_count() for layer in self.parameter_layers()))

    # -------------------------------------------------------------- weights
    def _named_stateful_layers(self) -> List[Tuple[str, Layer]]:
        named: List[Tuple[str, Layer]] = []
        for b, block in enumerate(self.conv_blocks):
            for i, unit in enumerate(block.units):
                if isinstance(unit, ResidualUnit):
                    named.append((f"conv.{b}.{i}.res", unit))
                else:
                    named.append((f"conv.{b}.{i}.conv", unit.conv))
                    if unit.bn is not None:
                        named.append((f"conv.{b}.{i}.bn", unit.bn))
        for i, unit in enumerate(self.dense_units):
            named.append((f"dense.{i}.dense", unit.dense))
            if unit.bn is not None:
                named.append((f"dense.{i}.bn", unit.bn))
        if self.classifier is not None:
            named.append(("classifier", self.classifier))
        return named

    def get_weights(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Structured snapshot of all parameters and state (deep copies)."""
        return {name: layer.get_weights() for name, layer in self._named_stateful_layers()}

    def set_weights(self, weights: Dict[str, Dict[str, np.ndarray]]) -> None:
        """Restore a snapshot produced by :meth:`get_weights`."""
        layers = dict(self._named_stateful_layers())
        for name, layer_weights in weights.items():
            if name not in layers:
                raise KeyError(f"unknown layer {name!r} in weight snapshot")
            layers[name].set_weights(layer_weights)

    def copy(self) -> "Model":
        """A structurally identical model with copied weights."""
        clone = Model.from_spec(self.spec, seed=0, dtype=self.dtype)
        clone.set_weights(self.get_weights())
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Model(spec={self.spec.name!r}, parameters={self.parameter_count()})"

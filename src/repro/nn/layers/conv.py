"""2-D convolution implemented with vectorised im2col / col2im.

Only "same"-padded, stride-1 convolutions are needed by the VGG/ResNet-style
architectures used in the paper (spatial down-sampling happens through
max-pooling between blocks), but the layer supports arbitrary stride and
padding for completeness.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer
from repro.utils.rng import SeedLike, as_rng


def im2col(x: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x: ``(N, C, H, W)`` input.
    kernel: ``(kh, kw)`` kernel size.
    stride: spatial stride.
    padding: symmetric zero padding.

    Returns
    -------
    ``(N, C * kh * kw, out_h * out_w)`` array of flattened patches.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    # Gather patches with stride tricks: shape (N, C, kh, kw, out_h, out_w)
    strides = x.strides
    shape = (n, c, kh, kw, out_h, out_w)
    patch_strides = (
        strides[0],
        strides[1],
        strides[2],
        strides[3],
        strides[2] * stride,
        strides[3] * stride,
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=patch_strides)
    return patches.reshape(n, c * kh * kw, out_h * out_w).copy()


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to image space."""
    n, c, h, w = input_shape
    kh, kw = kernel
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += cols6[
                :, :, i, j, :, :
            ]
    if padding > 0:
        return padded[:, :, padding : padding + h, padding : padding + w]
    return padded


class Conv2D(Layer):
    """2-D convolution over ``(N, C, H, W)`` inputs.

    Weight shape is ``(out_channels, in_channels, kh, kw)``.  ``padding="same"``
    keeps the spatial size for odd kernels at stride 1, which is the
    configuration used throughout the VGG/ResNet architecture zoo.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: str | int = "same",
        weight_init="he_normal",
        bias_init="zeros",
        use_bias: bool = True,
        seed: SeedLike = None,
        name: str = "",
    ):
        super().__init__(name=name or f"conv{kernel_size}x{kernel_size}_{out_channels}")
        if in_channels <= 0 or out_channels <= 0 or kernel_size <= 0:
            raise ValueError("Conv2D dimensions must be positive")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.use_bias = bool(use_bias)
        if padding == "same":
            if kernel_size % 2 == 0:
                raise ValueError("'same' padding requires an odd kernel size")
            self.padding = (kernel_size - 1) // 2
        else:
            self.padding = int(padding)
        rng = as_rng(seed)
        self.params["W"] = get_initializer(weight_init)(
            (self.out_channels, self.in_channels, self.kernel_size, self.kernel_size), rng
        )
        if self.use_bias:
            self.params["b"] = get_initializer(bias_init)((self.out_channels,), rng)
        self._cache: tuple | None = None

    # ------------------------------------------------------------------ api
    def output_spatial(self, h: int, w: int) -> Tuple[int, int]:
        """Spatial output size for an ``h`` x ``w`` input."""
        k, s, p = self.kernel_size, self.stride, self.padding
        return (h + 2 * p - k) // s + 1, (w + 2 * p - k) // s + 1

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected input (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n, _, h, w = x.shape
        out_h, out_w = self.output_spatial(h, w)
        cols = im2col(x, (self.kernel_size, self.kernel_size), self.stride, self.padding)
        w_mat = self.params["W"].reshape(self.out_channels, -1)
        out = np.einsum("of,nfp->nop", w_mat, cols)
        if self.use_bias:
            out = out + self.params["b"][None, :, None]
        out = out.reshape(n, self.out_channels, out_h, out_w)
        if training:
            self._cache = (x.shape, cols)
        else:
            self._cache = None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before a training forward pass")
        input_shape, cols = self._cache
        n = grad_output.shape[0]
        grad_mat = grad_output.reshape(n, self.out_channels, -1)
        w_mat = self.params["W"].reshape(self.out_channels, -1)
        grad_w = np.einsum("nop,nfp->of", grad_mat, cols)
        self.grads["W"] = grad_w.reshape(self.params["W"].shape)
        if self.use_bias:
            self.grads["b"] = grad_mat.sum(axis=(0, 2))
        grad_cols = np.einsum("of,nop->nfp", w_mat, grad_mat)
        return col2im(
            grad_cols,
            input_shape,
            (self.kernel_size, self.kernel_size),
            self.stride,
            self.padding,
        )

"""2-D convolution with a BLAS-GEMM hot path over im2col / col2im.

Only "same"-padded, stride-1 convolutions are needed by the VGG/ResNet-style
architectures used in the paper (spatial down-sampling happens through
max-pooling between blocks), but the layer supports arbitrary stride and
padding for completeness.

Two execution engines are available:

* ``"gemm"`` (default) — lowers the convolution to matrix multiplies
  (``W_mat @ cols`` forward, ``tensordot``/``matmul`` backward) so the heavy
  lifting runs inside BLAS.  All large temporaries (padded input, im2col
  patch matrix, col2im scatter target) live in a per-layer
  :class:`~repro.nn.workspace.WorkspaceArena` and are reused across batches,
  so steady-state training allocates no per-call conv scratch.  Inference is
  fused: no backward cache is written and the same workspace is recycled.
  Consequence of the reuse: the gradient returned by :meth:`backward` is a
  view into the arena, valid only until the layer's next call (forward
  outputs are always fresh).  The sequential forward/backward training loop
  consumes it immediately; ``Model.backward`` copies at the model boundary.
* ``"einsum"`` — the original ``np.einsum`` formulation, kept as the
  numerical reference the GEMM path is tested against.

When the phase-timing registry (:mod:`repro.utils.timing`) is enabled, the
layer reports ``conv.im2col`` / ``conv.gemm`` / ``conv.bias`` /
``conv.col2im`` so cost breakdowns can separate data movement from compute.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from repro.nn.dtypes import DTypeLike, default_dtype, resolve_dtype
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer
from repro.nn.workspace import WorkspaceArena
from repro.utils import timing as _timing
from repro.utils.rng import SeedLike, as_rng

CONV_ENGINES = ("gemm", "einsum")


def _patch_view(
    x: np.ndarray, kernel: Tuple[int, int], stride: int
) -> Tuple[np.ndarray, int, int]:
    """Strided ``(N, C, kh, kw, out_h, out_w)`` view of an (already padded)
    input, plus the output spatial size."""
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    strides = x.strides
    shape = (n, c, kh, kw, out_h, out_w)
    patch_strides = (
        strides[0],
        strides[1],
        strides[2],
        strides[3],
        strides[2] * stride,
        strides[3] * stride,
    )
    return np.lib.stride_tricks.as_strided(x, shape=shape, strides=patch_strides), out_h, out_w


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
    out: Optional[np.ndarray] = None,
    copy: bool = True,
) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x: ``(N, C, H, W)`` input.
    kernel: ``(kh, kw)`` kernel size.
    stride: spatial stride.
    padding: symmetric zero padding.
    out: optional preallocated ``(N, C * kh * kw, out_h * out_w)`` buffer to
        gather into (workspace reuse); returned when given.
    copy: when ``False`` the result may alias ``x`` (possible only for
        patch layouts that reshape to a view, e.g. 1x1 kernels at stride 1);
        callers that cache or mutate the columns must keep the default.

    Returns
    -------
    ``(N, C * kh * kw, out_h * out_w)`` array of flattened patches.
    """
    n, c, _, _ = x.shape
    kh, kw = kernel
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    patches, out_h, out_w = _patch_view(x, kernel, stride)
    if out is not None:
        np.copyto(out.reshape(n, c, kh, kw, out_h, out_w), patches)
        return out
    cols = patches.reshape(n, c * kh * kw, out_h * out_w)
    # reshape of the overlapping patch view almost always materialises a fresh
    # array already; only force a second copy if it managed to stay a view.
    if copy and np.may_share_memory(cols, x):
        cols = cols.copy()
    return cols


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to image space.

    ``out`` is an optional preallocated *padded* buffer of shape
    ``(N, C, H + 2 * padding, W + 2 * padding)``; it is cleared and used as the
    scatter target, and the returned array is a view into it when padding > 0.
    """
    n, c, h, w = input_shape
    kh, kw = kernel
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    if out is None:
        padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    else:
        padded = out
        padded.fill(0)
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += cols6[
                :, :, i, j, :, :
            ]
    if padding > 0:
        return padded[:, :, padding : padding + h, padding : padding + w]
    return padded


class Conv2D(Layer):
    """2-D convolution over ``(N, C, H, W)`` inputs.

    Weight shape is ``(out_channels, in_channels, kh, kw)``.  ``padding="same"``
    keeps the spatial size for odd kernels at stride 1, which is the
    configuration used throughout the VGG/ResNet architecture zoo.

    ``dtype`` selects the compute dtype (default: the global compute dtype,
    see :mod:`repro.nn.dtypes`); ``engine`` selects the execution path
    (``"gemm"`` BLAS hot path or the ``"einsum"`` reference).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: str | int = "same",
        weight_init="he_normal",
        bias_init="zeros",
        use_bias: bool = True,
        seed: SeedLike = None,
        name: str = "",
        dtype: Optional[DTypeLike] = None,
        engine: str = "gemm",
    ):
        super().__init__(name=name or f"conv{kernel_size}x{kernel_size}_{out_channels}")
        if in_channels <= 0 or out_channels <= 0 or kernel_size <= 0:
            raise ValueError("Conv2D dimensions must be positive")
        if engine not in CONV_ENGINES:
            raise ValueError(f"unknown conv engine {engine!r}; known: {CONV_ENGINES}")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.use_bias = bool(use_bias)
        self.dtype = resolve_dtype(dtype)
        self.engine = engine
        if padding == "same":
            if kernel_size % 2 == 0:
                raise ValueError("'same' padding requires an odd kernel size")
            self.padding = (kernel_size - 1) // 2
        else:
            self.padding = int(padding)
        rng = as_rng(seed)
        # Initialise under the layer's dtype (not the ambient global default)
        # so a float64 layer gets full-precision draws, then cast defensively
        # for custom initialiser callables that ignore the default.
        with default_dtype(self.dtype):
            self.params["W"] = get_initializer(weight_init)(
                (self.out_channels, self.in_channels, self.kernel_size, self.kernel_size), rng
            ).astype(self.dtype, copy=False)
            if self.use_bias:
                self.params["b"] = get_initializer(bias_init)((self.out_channels,), rng).astype(
                    self.dtype, copy=False
                )
        self._cache: tuple | None = None
        self._arena = WorkspaceArena()
        # Forward-call counter guarding the GEMM cache: the cached column
        # matrix lives in the shared arena, so an intervening forward
        # invalidates it. Inference forwards clear the cache outright (caught
        # above with a dedicated message); the generation check is defense in
        # depth against stale caches restored by exotic callers.
        self._forward_generation = 0
        self._had_training_forward = False

    # ------------------------------------------------------------------ api
    def clear_workspaces(self) -> None:
        self._arena.clear()
        self._cache = None

    def output_spatial(self, h: int, w: int) -> Tuple[int, int]:
        """Spatial output size for an ``h`` x ``w`` input."""
        k, s, p = self.kernel_size, self.stride, self.padding
        return (h + 2 * p - k) // s + 1, (w + 2 * p - k) // s + 1

    # ----------------------------------------------------------- workspaces
    def _gather_cols(self, x: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
        """im2col into the reusable workspace (padding handled in-arena)."""
        n, c, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        src = x
        if p > 0:
            # The zero border is written once at allocation and never touched
            # again: subsequent batches only overwrite the interior.
            padded = self._arena.get(
                "pad_fwd", (n, c, h + 2 * p, w + 2 * p), x.dtype, zero_on_alloc=True
            )
            padded[:, :, p : p + h, p : p + w] = x
            src = padded
        cols = self._arena.get("cols", (n, c * k * k, out_h * out_w), x.dtype)
        return im2col(src, (k, k), s, 0, out=cols)

    # ------------------------------------------------------------------ pass
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected input (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n, _, h, w = x.shape
        out_h, out_w = self.output_spatial(h, w)
        w_mat = self.params["W"].reshape(self.out_channels, -1)
        timed = _timing.phase_timing_enabled()
        self._forward_generation += 1

        if self.engine == "einsum":
            cols = im2col(
                x, (self.kernel_size, self.kernel_size), self.stride, self.padding, copy=training
            )
            out = np.einsum("of,nfp->nop", w_mat, cols)
            if self.use_bias:
                out = out + self.params["b"][None, :, None]
        else:
            if timed:
                t0 = time.perf_counter()
            cols = self._gather_cols(x, out_h, out_w)
            if timed:
                t1 = time.perf_counter()
                _timing.record_phase("conv.im2col", t1 - t0)
            out = np.matmul(w_mat, cols)
            if timed:
                t2 = time.perf_counter()
                _timing.record_phase("conv.gemm", t2 - t1)
            if self.use_bias:
                out += self.params["b"][None, :, None]
                if timed:
                    _timing.record_phase("conv.bias", time.perf_counter() - t2)

        out = out.reshape(n, self.out_channels, out_h, out_w)
        if training:
            self._cache = (x.shape, cols, self._forward_generation)
            self._had_training_forward = True
        else:
            self._cache = None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            if getattr(self, "_had_training_forward", False):
                raise RuntimeError(
                    f"{self.name}: backward cache was cleared by a later inference "
                    "forward; run backward immediately after the training forward"
                )
            raise RuntimeError(f"{self.name}: backward called before a training forward pass")
        input_shape, cols, generation = self._cache
        if self.engine != "einsum" and generation != self._forward_generation:
            raise RuntimeError(
                f"{self.name}: backward cache invalidated by an intervening forward pass "
                "(the GEMM engine caches workspace columns; run backward immediately "
                "after the training forward, or use engine='einsum')"
            )
        n = grad_output.shape[0]
        grad_mat = grad_output.reshape(n, self.out_channels, -1)
        w_mat = self.params["W"].reshape(self.out_channels, -1)
        kernel = (self.kernel_size, self.kernel_size)

        if self.engine == "einsum":
            grad_w = np.einsum("nop,nfp->of", grad_mat, cols)
            self.grads["W"] = grad_w.reshape(self.params["W"].shape)
            if self.use_bias:
                self.grads["b"] = grad_mat.sum(axis=(0, 2))
            grad_cols = np.einsum("of,nop->nfp", w_mat, grad_mat)
            return col2im(grad_cols, input_shape, kernel, self.stride, self.padding)

        timed = _timing.phase_timing_enabled()
        if timed:
            t0 = time.perf_counter()
        grad_w = np.tensordot(grad_mat, cols, axes=((0, 2), (0, 2)))
        self.grads["W"] = grad_w.reshape(self.params["W"].shape)
        grad_cols = self._arena.get(
            "grad_cols", cols.shape, np.result_type(w_mat.dtype, grad_mat.dtype)
        )
        np.matmul(w_mat.T, grad_mat, out=grad_cols)
        if timed:
            t1 = time.perf_counter()
            _timing.record_phase("conv.gemm", t1 - t0)
        if self.use_bias:
            self.grads["b"] = grad_mat.sum(axis=(0, 2))
            if timed:
                t2 = time.perf_counter()
                _timing.record_phase("conv.bias", t2 - t1)
                t1 = t2
        c, h, w = input_shape[1], input_shape[2], input_shape[3]
        p = self.padding
        scatter = self._arena.get(
            "pad_bwd", (n, c, h + 2 * p, w + 2 * p), grad_cols.dtype
        )
        grad_input = col2im(grad_cols, input_shape, kernel, self.stride, p, out=scatter)
        if timed:
            _timing.record_phase("conv.col2im", time.perf_counter() - t1)
        return grad_input

"""Activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class ReLU(Layer):
    """Rectified linear unit, ``y = max(x, 0)``."""

    def __init__(self, name: str = ""):
        super().__init__(name=name or "relu")
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward called before a training forward pass")
        return grad_output * self._mask


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01, name: str = ""):
        super().__init__(name=name or "leaky_relu")
        self.negative_slope = float(negative_slope)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return np.where(mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward called before a training forward pass")
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax over ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class Softmax(Layer):
    """Softmax layer (used only at inference; training uses the fused
    softmax-cross-entropy loss for numerical stability)."""

    def __init__(self, name: str = ""):
        super().__init__(name=name or "softmax")
        self._cache_output: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = softmax(x, axis=-1)
        if training:
            self._cache_output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_output is None:
            raise RuntimeError(f"{self.name}: backward called before a training forward pass")
        y = self._cache_output
        dot = np.sum(grad_output * y, axis=-1, keepdims=True)
        return y * (grad_output - dot)

"""Inverted dropout.

The paper lists Dropout among the implicit-ensembling / regularisation
techniques that can be combined with MotherNets as per-member training
optimisations; the architecture specs therefore optionally include dropout
in the classifier head.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer
from repro.utils.rng import SeedLike, as_rng


class Dropout(Layer):
    """Inverted dropout: at training time zero each activation with
    probability ``rate`` and scale the survivors by ``1 / (1 - rate)`` so that
    inference is a plain identity."""

    def __init__(self, rate: float = 0.5, seed: SeedLike = None, name: str = ""):
        super().__init__(name=name or f"dropout_{rate}")
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = float(rate)
        self.rng = as_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        # Build the mask in the input's dtype so float32 activations are not
        # silently promoted to float64 by a float64 mask.
        dtype = x.dtype if np.issubdtype(x.dtype, np.floating) else np.float64
        mask = (self.rng.random(x.shape) < keep).astype(dtype)
        mask /= keep
        self._mask = mask
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

"""Fully-connected (dense) layer."""

from __future__ import annotations

import numpy as np

from repro.nn.dtypes import DTypeLike, default_dtype, resolve_dtype
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer
from repro.utils.rng import SeedLike, as_rng


class Dense(Layer):
    """Affine transformation ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    weight_init, bias_init:
        Initialiser names or callables (see :mod:`repro.nn.initializers`).
    seed:
        Seed or generator used for initialisation.
    dtype:
        Compute dtype; defaults to the global compute dtype.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight_init="he_normal",
        bias_init="zeros",
        seed: SeedLike = None,
        name: str = "",
        dtype: DTypeLike | None = None,
    ):
        super().__init__(name=name or f"dense_{in_features}x{out_features}")
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense layer dimensions must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.dtype = resolve_dtype(dtype)
        rng = as_rng(seed)
        # Initialise under the layer's dtype (not the ambient global default)
        # so a float64 layer gets full-precision draws, then cast defensively
        # for custom initialiser callables that ignore the default.
        with default_dtype(self.dtype):
            self.params["W"] = get_initializer(weight_init)(
                (self.in_features, self.out_features), rng
            ).astype(self.dtype, copy=False)
            self.params["b"] = get_initializer(bias_init)((self.out_features,), rng).astype(
                self.dtype, copy=False
            )
        self._cache_input: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected input of shape (N, {self.in_features}), got {x.shape}"
            )
        if training:
            self._cache_input = x
        else:
            self._cache_input = None
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError(f"{self.name}: backward called before a training forward pass")
        x = self._cache_input
        self.grads["W"] = x.T @ grad_output
        self.grads["b"] = grad_output.sum(axis=0)
        return grad_output @ self.params["W"].T

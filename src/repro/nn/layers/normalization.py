"""Batch normalisation for dense and convolutional activations.

The paper trains with batch normalisation (citing Ioffe & Szegedy) and the
hatching step relies on being able to initialise a freshly inserted BatchNorm
layer as an exact identity in inference mode; :meth:`BatchNorm.set_identity`
provides that.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtypes import DTypeLike, resolve_dtype
from repro.nn.layers.base import Layer


class BatchNorm(Layer):
    """Batch normalisation over the feature/channel axis.

    Works on both ``(N, F)`` dense activations and ``(N, C, H, W)`` feature
    maps (normalising per channel over ``N, H, W``).
    """

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.9,
        eps: float = 1e-5,
        name: str = "",
        dtype: DTypeLike | None = None,
    ):
        super().__init__(name=name or f"batchnorm_{num_features}")
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.dtype = resolve_dtype(dtype)
        self.params["gamma"] = np.ones(self.num_features, dtype=self.dtype)
        self.params["beta"] = np.zeros(self.num_features, dtype=self.dtype)
        self.state["running_mean"] = np.zeros(self.num_features, dtype=self.dtype)
        self.state["running_var"] = np.ones(self.num_features, dtype=self.dtype)
        self._cache: tuple | None = None

    # ------------------------------------------------------------------ api
    def set_identity(self) -> None:
        """Configure the layer so that, in inference mode, it is exactly the
        identity function.  Used when deepening a network during hatching."""
        dtype = self.params["gamma"].dtype
        self.state["running_mean"] = np.zeros(self.num_features, dtype=dtype)
        self.state["running_var"] = np.ones(self.num_features, dtype=dtype)
        self.params["gamma"] = np.full(self.num_features, np.sqrt(1.0 + self.eps), dtype=dtype)
        self.params["beta"] = np.zeros(self.num_features, dtype=dtype)

    def _reshape_stats(self, stat: np.ndarray, ndim: int) -> np.ndarray:
        if ndim == 2:
            return stat[None, :]
        return stat[None, :, None, None]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim not in (2, 4) or x.shape[1] != self.num_features:
            raise ValueError(
                f"{self.name}: expected (N, {self.num_features}[, H, W]) input, got {x.shape}"
            )
        axes = (0,) if x.ndim == 2 else (0, 2, 3)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            count = x.size // self.num_features
            unbiased = var * count / max(count - 1, 1)
            self.state["running_mean"] = (
                self.momentum * self.state["running_mean"] + (1 - self.momentum) * mean
            )
            self.state["running_var"] = (
                self.momentum * self.state["running_var"] + (1 - self.momentum) * unbiased
            )
        else:
            mean = self.state["running_mean"]
            var = self.state["running_var"]
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._reshape_stats(mean, x.ndim)) * self._reshape_stats(inv_std, x.ndim)
        out = self._reshape_stats(self.params["gamma"], x.ndim) * x_hat + self._reshape_stats(
            self.params["beta"], x.ndim
        )
        if training:
            self._cache = (x_hat, inv_std, axes, x.ndim)
        else:
            self._cache = None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before a training forward pass")
        x_hat, inv_std, axes, ndim = self._cache
        m = grad_output.size // self.num_features
        gamma = self._reshape_stats(self.params["gamma"], ndim)
        self.grads["gamma"] = (grad_output * x_hat).sum(axis=axes)
        self.grads["beta"] = grad_output.sum(axis=axes)
        dxhat = grad_output * gamma
        sum_dxhat = dxhat.sum(axis=axes, keepdims=True)
        sum_dxhat_xhat = (dxhat * x_hat).sum(axis=axes, keepdims=True)
        inv_std_b = self._reshape_stats(inv_std, ndim)
        return (inv_std_b / m) * (m * dxhat - sum_dxhat - x_hat * sum_dxhat_xhat)

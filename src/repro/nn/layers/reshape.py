"""Shape-manipulation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class Flatten(Layer):
    """Flatten all non-batch dimensions, ``(N, ...) -> (N, prod(...))``."""

    def __init__(self, name: str = ""):
        super().__init__(name=name or "flatten")
        self._cache_shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._cache_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_shape is None:
            raise RuntimeError(f"{self.name}: backward called before a training forward pass")
        return grad_output.reshape(self._cache_shape)

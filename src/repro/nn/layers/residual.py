"""Residual units used by the ResNet-style members of an ensemble.

A :class:`ResidualUnit` is ``y = ReLU(F(x) + S(x))`` where ``F`` is
``conv -> BN -> ReLU -> conv -> BN`` and ``S`` is a 1x1 projection convolution
(always present so that widening a unit can adjust both branches with the same
channel-replication mapping; see ``repro.core.morphism``).

When a unit is inserted by the hatching step it is configured as an exact
identity: the final convolution and BatchNorm of ``F`` are zero-initialised so
``F(x) = 0``, and the projection is an identity kernel, giving
``y = ReLU(S(x)) = x`` for the non-negative activations that flow between
ResNet units.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.dtypes import DTypeLike, resolve_dtype
from repro.nn.layers.activations import ReLU
from repro.nn.layers.base import CompositeLayer, Layer
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.normalization import BatchNorm
from repro.utils.rng import SeedLike, as_rng


def identity_projection_kernel(
    in_channels: int, out_channels: int, dtype: DTypeLike | None = None
) -> np.ndarray:
    """A 1x1 kernel mapping channel ``i`` of the input to channel ``i`` of the
    output (extra output channels, if any, are zero)."""
    kernel = np.zeros((out_channels, in_channels, 1, 1), dtype=resolve_dtype(dtype))
    for i in range(min(in_channels, out_channels)):
        kernel[i, i, 0, 0] = 1.0
    return kernel


class ResidualUnit(CompositeLayer):
    """Two-convolution residual unit with a 1x1 projection shortcut."""

    def __init__(
        self,
        in_channels: int,
        channels: int,
        kernel_size: int = 3,
        use_batchnorm: bool = True,
        seed: SeedLike = None,
        name: str = "",
        dtype: DTypeLike | None = None,
    ):
        super().__init__(name=name or f"resunit_{in_channels}to{channels}")
        rng = as_rng(seed)
        self.in_channels = int(in_channels)
        self.channels = int(channels)
        self.kernel_size = int(kernel_size)
        self.use_batchnorm = bool(use_batchnorm)
        self.dtype = resolve_dtype(dtype)

        dt = self.dtype
        self.conv1 = Conv2D(
            in_channels, channels, kernel_size, seed=rng, name=f"{self.name}.conv1", dtype=dt
        )
        self.bn1 = BatchNorm(channels, name=f"{self.name}.bn1", dtype=dt) if use_batchnorm else None
        self.relu1 = ReLU(name=f"{self.name}.relu1")
        self.conv2 = Conv2D(
            channels, channels, kernel_size, seed=rng, name=f"{self.name}.conv2", dtype=dt
        )
        self.bn2 = BatchNorm(channels, name=f"{self.name}.bn2", dtype=dt) if use_batchnorm else None
        self.projection = Conv2D(
            in_channels, channels, 1, seed=rng, name=f"{self.name}.proj", use_bias=False, dtype=dt
        )
        self.relu_out = ReLU(name=f"{self.name}.relu_out")

    # ----------------------------------------------------------- composition
    def sublayers(self) -> List[Layer]:
        layers: List[Layer] = [self.conv1]
        if self.bn1 is not None:
            layers.append(self.bn1)
        layers.append(self.conv2)
        if self.bn2 is not None:
            layers.append(self.bn2)
        layers.append(self.projection)
        return layers

    def set_identity(self) -> None:
        """Make the unit an exact identity for non-negative inputs (inference
        mode), as required by function-preserving deepening."""
        if self.in_channels != self.channels:
            raise ValueError("An identity residual unit requires in_channels == channels")
        self.conv2.params["W"] = np.zeros_like(self.conv2.params["W"])
        if self.conv2.use_bias:
            self.conv2.params["b"] = np.zeros_like(self.conv2.params["b"])
        if self.bn2 is not None:
            self.bn2.set_identity()
            # gamma * 0 == 0 regardless, but keep beta at zero explicitly.
            self.bn2.params["beta"] = np.zeros_like(self.bn2.params["beta"])
        self.projection.params["W"] = identity_projection_kernel(
            self.in_channels, self.channels, dtype=self.projection.params["W"].dtype
        )

    # ------------------------------------------------------------------ pass
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        residual = self.conv1.forward(x, training)
        if self.bn1 is not None:
            residual = self.bn1.forward(residual, training)
        residual = self.relu1.forward(residual, training)
        residual = self.conv2.forward(residual, training)
        if self.bn2 is not None:
            residual = self.bn2.forward(residual, training)
        shortcut = self.projection.forward(x, training)
        return self.relu_out.forward(residual + shortcut, training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.relu_out.backward(grad_output)
        grad_shortcut = self.projection.backward(grad)
        grad_residual = grad
        if self.bn2 is not None:
            grad_residual = self.bn2.backward(grad_residual)
        grad_residual = self.conv2.backward(grad_residual)
        grad_residual = self.relu1.backward(grad_residual)
        if self.bn1 is not None:
            grad_residual = self.bn1.backward(grad_residual)
        grad_residual = self.conv1.backward(grad_residual)
        return grad_residual + grad_shortcut

"""Layer zoo for the numpy neural-network substrate."""

from repro.nn.layers.base import CompositeLayer, Layer
from repro.nn.layers.dense import Dense
from repro.nn.layers.conv import Conv2D, im2col, col2im
from repro.nn.layers.pooling import MaxPool2D, GlobalAveragePool2D
from repro.nn.layers.normalization import BatchNorm
from repro.nn.layers.activations import ReLU, LeakyReLU, Softmax, softmax
from repro.nn.layers.reshape import Flatten
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.residual import ResidualUnit, identity_projection_kernel

__all__ = [
    "Layer",
    "CompositeLayer",
    "Dense",
    "Conv2D",
    "im2col",
    "col2im",
    "MaxPool2D",
    "GlobalAveragePool2D",
    "BatchNorm",
    "ReLU",
    "LeakyReLU",
    "Softmax",
    "softmax",
    "Flatten",
    "Dropout",
    "ResidualUnit",
    "identity_projection_kernel",
]

"""Pooling layers: max pooling (between convolutional blocks) and global
average pooling (before the classifier head)."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class MaxPool2D(Layer):
    """Non-overlapping max pooling over ``(N, C, H, W)`` inputs.

    ``pool_size`` must divide the spatial dimensions; the VGG/ResNet-style
    architecture builder guarantees this by construction.
    """

    def __init__(self, pool_size: int = 2, name: str = ""):
        super().__init__(name=name or f"maxpool{pool_size}")
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = int(pool_size)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        p = self.pool_size
        if h % p or w % p:
            raise ValueError(
                f"{self.name}: spatial size ({h}x{w}) not divisible by pool size {p}"
            )
        # Windows in (N, C, out_h, out_w, p, p) layout.
        windows = x.reshape(n, c, h // p, p, w // p, p).transpose(0, 1, 2, 4, 3, 5)
        out = windows.max(axis=(4, 5))
        if training:
            flat = windows.reshape(n, c, h // p, w // p, p * p)
            # Route gradients only to the first maximum within each window so
            # that ties do not duplicate gradient mass.
            argmax = np.argmax(flat, axis=-1)
            mask = np.zeros_like(flat, dtype=bool)
            idx = np.indices(argmax.shape)
            mask[idx[0], idx[1], idx[2], idx[3], argmax] = True
            self._cache = (x.shape, mask.reshape(n, c, h // p, w // p, p, p))
        else:
            self._cache = None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before a training forward pass")
        input_shape, mask = self._cache
        n, c, h, w = input_shape
        p = self.pool_size
        grad_windows = mask * grad_output[:, :, :, :, None, None]
        # Back from (N, C, out_h, out_w, p, p) to (N, C, H, W).
        grad = grad_windows.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)
        return grad


class GlobalAveragePool2D(Layer):
    """Average over spatial dimensions, ``(N, C, H, W) -> (N, C)``."""

    def __init__(self, name: str = ""):
        super().__init__(name=name or "global_avg_pool")
        self._cache_shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"{self.name}: expected 4-D input, got shape {x.shape}")
        if training:
            self._cache_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_shape is None:
            raise RuntimeError(f"{self.name}: backward called before a training forward pass")
        n, c, h, w = self._cache_shape
        grad = grad_output[:, :, None, None] / float(h * w)
        return np.broadcast_to(grad, (n, c, h, w)).copy()

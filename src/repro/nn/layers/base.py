"""Layer abstraction for the numpy neural-network substrate.

Every layer implements ``forward`` and ``backward`` and exposes its trainable
parameters and their gradients through dictionaries keyed by parameter name.
Models are compositions of layers; there is no global autograd tape — the
backward pass is driven layer-by-layer by :class:`repro.nn.model.Model`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np


class Layer:
    """Base class for all layers.

    Subclasses populate ``self.params`` (name -> ndarray) and, after a
    backward pass, ``self.grads`` (same keys).  Layers that keep
    non-trainable state (e.g. BatchNorm running statistics) expose it via
    ``self.state``.
    """

    def __init__(self, name: str = ""):
        self.name = name or self.__class__.__name__
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self.state: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ API
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Given dL/d(output), accumulate parameter gradients and return
        dL/d(input).

        Ownership contract: the returned gradient is only guaranteed valid
        until this layer's *next* forward/backward call — layers with
        workspace arenas (e.g. the GEMM conv engine) hand out views into
        reused scratch buffers.  Callers that retain gradients across steps
        must copy; :meth:`repro.nn.model.Model.backward` does this at the
        model boundary.
        """
        raise NotImplementedError

    # ------------------------------------------------------------ utilities
    def clear_workspaces(self) -> None:
        """Release any reusable scratch buffers (no-op for most layers).

        Layers with workspace arenas free them here; arenas rebuild lazily on
        the next forward/backward, so this is safe to call between fits to
        return training-batch-sized scratch memory."""

    def zero_grads(self) -> None:
        self.grads = {key: np.zeros_like(value) for key, value in self.params.items()}

    def parameter_count(self) -> int:
        """Number of trainable scalars in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def iter_parameters(self) -> Iterator[Tuple[str, np.ndarray, np.ndarray]]:
        """Yield ``(qualified_name, param, grad)`` triples."""
        for key, value in self.params.items():
            grad = self.grads.get(key)
            if grad is None:
                grad = np.zeros_like(value)
                self.grads[key] = grad
            yield f"{self.name}.{key}", value, grad

    def copy_weights_from(self, other: "Layer") -> None:
        """Copy parameter and state tensors from another layer of identical shape."""
        for key, value in other.params.items():
            if key not in self.params or self.params[key].shape != value.shape:
                raise ValueError(
                    f"Cannot copy weights for {self.name}.{key}: "
                    f"shape mismatch or missing parameter"
                )
            self.params[key] = value.copy()
        for key, value in other.state.items():
            self.state[key] = np.array(value, copy=True)

    def get_weights(self) -> Dict[str, np.ndarray]:
        """Return copies of all parameters and state tensors."""
        weights = {f"param:{k}": v.copy() for k, v in self.params.items()}
        weights.update({f"state:{k}": np.array(v, copy=True) for k, v in self.state.items()})
        return weights

    def set_weights(self, weights: Dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`get_weights`."""
        for key, value in weights.items():
            kind, name = key.split(":", 1)
            target = self.params if kind == "param" else self.state
            if name not in target:
                raise KeyError(f"{self.name}: unknown weight {key}")
            if np.shape(target[name]) != np.shape(value):
                raise ValueError(f"{self.name}: shape mismatch for {key}")
            target[name] = np.array(value, copy=True)

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}(name={self.name!r}, params={self.parameter_count()})"


class CompositeLayer(Layer):
    """A layer that is itself composed of sub-layers (e.g. a residual unit)."""

    def sublayers(self) -> List[Layer]:
        raise NotImplementedError

    def clear_workspaces(self) -> None:
        for layer in self.sublayers():
            layer.clear_workspaces()

    def parameter_count(self) -> int:
        return int(sum(layer.parameter_count() for layer in self.sublayers()))

    def zero_grads(self) -> None:
        for layer in self.sublayers():
            layer.zero_grads()

    def iter_parameters(self):
        for layer in self.sublayers():
            for name, param, grad in layer.iter_parameters():
                yield f"{self.name}.{name}", param, grad

    def get_weights(self) -> Dict[str, np.ndarray]:
        weights: Dict[str, np.ndarray] = {}
        for idx, layer in enumerate(self.sublayers()):
            for key, value in layer.get_weights().items():
                weights[f"{idx}:{key}"] = value
        return weights

    def set_weights(self, weights: Dict[str, np.ndarray]) -> None:
        by_index: Dict[int, Dict[str, np.ndarray]] = {}
        for key, value in weights.items():
            idx, rest = key.split(":", 1)
            by_index.setdefault(int(idx), {})[rest] = value
        for idx, layer in enumerate(self.sublayers()):
            if idx in by_index:
                layer.set_weights(by_index[idx])

"""Compute-dtype configuration for the numpy substrate.

The execution engine computes in ``float32`` by default: it halves memory
traffic and doubles effective BLAS throughput relative to numpy's ``float64``
default, which is what the training-cost figures of the paper are sensitive
to.  ``float64`` remains available as an opt-in for numerically delicate work
(gradient checking, reference runs):

* globally, via :func:`set_default_dtype` or the :func:`default_dtype`
  context manager, which every subsequently constructed layer/model picks up;
* per model, via ``Model.from_spec(..., dtype="float64")``;
* per layer, via the ``dtype=`` constructor argument.

Only ``float32`` and ``float64`` are supported: the hand-written backward
passes assume a real floating dtype, and ``float16`` accumulation is unsafe
without loss scaling.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Union

import numpy as np

DTypeLike = Union[str, type, np.dtype]

_ALLOWED = (np.dtype(np.float32), np.dtype(np.float64))
_default_dtype = np.dtype(np.float32)


def _validate(dtype: DTypeLike) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in _ALLOWED:
        raise ValueError(
            f"unsupported compute dtype {resolved}; supported: "
            + ", ".join(str(d) for d in _ALLOWED)
        )
    return resolved


def get_default_dtype() -> np.dtype:
    """The dtype newly constructed layers/models compute in."""
    return _default_dtype


def set_default_dtype(dtype: DTypeLike) -> np.dtype:
    """Set the global compute dtype; returns the resolved ``np.dtype``."""
    global _default_dtype
    _default_dtype = _validate(dtype)
    return _default_dtype


def resolve_dtype(dtype: Union[DTypeLike, None] = None) -> np.dtype:
    """Resolve an optional dtype argument: ``None`` means the global default."""
    if dtype is None:
        return _default_dtype
    return _validate(dtype)


@contextmanager
def default_dtype(dtype: DTypeLike) -> Iterator[np.dtype]:
    """Temporarily switch the global compute dtype::

        with default_dtype("float64"):
            reference = Model.from_spec(spec)
    """
    previous = get_default_dtype()
    resolved = set_default_dtype(dtype)
    try:
        yield resolved
    finally:
        set_default_dtype(previous)

"""Training loop, convergence criterion, and training records.

The paper trains every network with the *same* convergence criterion
(mini-batch SGD, batch normalisation, fixed learning rate) and reports
wall-clock training time.  :class:`Trainer` implements that loop for the
numpy substrate and records per-epoch statistics so the cost model and the
benchmark harness can reconstruct training-time and convergence curves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.nn.losses import Loss, SoftmaxCrossEntropy, get_loss
from repro.nn.metrics import accuracy
from repro.nn.model import Model
from repro.nn.optimizers import (
    ConstantSchedule,
    LearningRateSchedule,
    Optimizer,
    SGD,
)
from repro.obs.metrics import get_registry
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, as_rng

logger = get_logger("nn.training")

# Per-epoch training telemetry (repro.obs).  Gauges carry the *last* epoch's
# figures per model; counters accumulate across every fit in the process.
# Updates happen once per epoch — far off the per-batch hot path — and are
# skipped entirely when the registry is disabled.
_metrics = get_registry()
_EPOCHS_TOTAL = _metrics.counter(
    "repro_training_epochs_total", "Training epochs completed in this process."
)
_SAMPLES_TOTAL = _metrics.counter(
    "repro_training_samples_total",
    "Training samples processed (one count per sample per epoch).",
)
_EPOCH_LOSS = _metrics.gauge(
    "repro_training_epoch_loss", "Mean training loss of the last completed epoch.", ("model",)
)
_EPOCH_ACCURACY = _metrics.gauge(
    "repro_training_epoch_accuracy",
    "Training accuracy of the last completed epoch.",
    ("model",),
)
_EPOCH_SECONDS = _metrics.gauge(
    "repro_training_epoch_seconds",
    "Wall-clock seconds of the last completed epoch.",
    ("model",),
)


@dataclass
class TrainingConfig:
    """Hyper-parameters of one training run.

    The defaults follow the paper's setup (§3 "Training setup"): SGD,
    mini-batches, learning rate 0.1, a shared convergence criterion.  The
    convergence criterion is a patience test on the training loss: training
    stops once the loss has not improved by more than ``convergence_tolerance``
    for ``convergence_patience`` consecutive epochs, or after ``max_epochs``.
    """

    max_epochs: int = 30
    batch_size: int = 256
    learning_rate: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 0.0
    convergence_patience: int = 3
    convergence_tolerance: float = 1e-3
    min_epochs: int = 1
    shuffle: bool = True
    schedule: Optional[LearningRateSchedule] = None
    loss: str = "softmax_cross_entropy"
    # Number of worker processes used by the *ensemble* trainers to fit
    # independent members concurrently (repro.parallel).  1 = the serial
    # in-process path; the single-network Trainer below never forks.
    workers: int = 1
    # Fault tolerance of the parallel path (ignored when workers == 1): a
    # member task that exceeds ``task_timeout`` seconds in its worker is
    # treated as hung (the worker is SIGKILLed and evicted), and a failed
    # task — worker crash, hang, or in-worker exception — is retried up to
    # ``max_task_retries`` times on a respawned pool slot.  Retried tasks
    # are bitwise identical to fault-free runs (training is fully seeded).
    task_timeout: float = 900.0
    max_task_retries: int = 2

    def __post_init__(self):
        if self.max_epochs < 1:
            raise ValueError("max_epochs must be at least 1")
        if self.min_epochs < 1 or self.min_epochs > self.max_epochs:
            raise ValueError("min_epochs must be in [1, max_epochs]")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.convergence_patience < 1:
            raise ValueError("convergence_patience must be at least 1")
        if self.convergence_tolerance < 0:
            raise ValueError("convergence_tolerance must be non-negative")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be non-negative")

    def scaled(self, epoch_fraction: float) -> "TrainingConfig":
        """A copy with the epoch budget scaled by ``epoch_fraction`` (used for
        the fine-tuning phase of hatched networks, which needs only a few
        tens of epochs according to the paper)."""
        if epoch_fraction <= 0:
            raise ValueError("epoch_fraction must be positive")
        scaled_epochs = max(1, int(round(self.max_epochs * epoch_fraction)))
        return TrainingConfig(
            max_epochs=scaled_epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            convergence_patience=self.convergence_patience,
            convergence_tolerance=self.convergence_tolerance,
            min_epochs=min(self.min_epochs, scaled_epochs),
            shuffle=self.shuffle,
            schedule=self.schedule,
            loss=self.loss,
            workers=self.workers,
            task_timeout=self.task_timeout,
            max_task_retries=self.max_task_retries,
        )


@dataclass
class EpochRecord:
    """Statistics of one training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    learning_rate: float
    seconds: float
    val_loss: Optional[float] = None
    val_accuracy: Optional[float] = None

    def to_dict(self) -> dict:
        """JSON-compatible form (persisted in ensemble artifacts)."""
        return {
            "epoch": self.epoch,
            "train_loss": self.train_loss,
            "train_accuracy": self.train_accuracy,
            "learning_rate": self.learning_rate,
            "seconds": self.seconds,
            "val_loss": self.val_loss,
            "val_accuracy": self.val_accuracy,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EpochRecord":
        return cls(**data)


@dataclass
class TrainingResult:
    """Outcome of a training run: per-epoch history plus summary figures."""

    history: List[EpochRecord] = field(default_factory=list)
    converged: bool = False
    wall_clock_seconds: float = 0.0
    samples_seen: int = 0

    @property
    def epochs_run(self) -> int:
        return len(self.history)

    @property
    def final_train_loss(self) -> float:
        return self.history[-1].train_loss if self.history else float("nan")

    @property
    def final_train_accuracy(self) -> float:
        return self.history[-1].train_accuracy if self.history else float("nan")

    @property
    def final_val_accuracy(self) -> Optional[float]:
        return self.history[-1].val_accuracy if self.history else None

    def loss_curve(self) -> List[float]:
        return [record.train_loss for record in self.history]

    def to_dict(self) -> dict:
        """JSON-compatible form (persisted in ensemble artifacts since the
        ``repro.ensemble_run/v2`` manifest schema)."""
        return {
            "history": [record.to_dict() for record in self.history],
            "converged": self.converged,
            "wall_clock_seconds": self.wall_clock_seconds,
            "samples_seen": self.samples_seen,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrainingResult":
        return cls(
            history=[EpochRecord.from_dict(record) for record in data.get("history", [])],
            converged=bool(data.get("converged", False)),
            wall_clock_seconds=float(data.get("wall_clock_seconds", 0.0)),
            samples_seen=int(data.get("samples_seen", 0)),
        )


class ConvergenceCriterion:
    """Patience-based plateau detector on the training loss."""

    def __init__(self, patience: int, tolerance: float, min_epochs: int = 1):
        self.patience = int(patience)
        self.tolerance = float(tolerance)
        self.min_epochs = int(min_epochs)
        self.best_loss = float("inf")
        self.stale_epochs = 0
        self.epochs_seen = 0

    def update(self, loss: float) -> bool:
        """Record an epoch loss; return True when training should stop."""
        self.epochs_seen += 1
        if loss < self.best_loss - self.tolerance:
            self.best_loss = loss
            self.stale_epochs = 0
        else:
            self.stale_epochs += 1
        if self.epochs_seen < self.min_epochs:
            return False
        return self.stale_epochs >= self.patience


def iterate_minibatches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    shuffle: bool = True,
    rng: Optional[np.random.Generator] = None,
):
    """Yield ``(x_batch, y_batch)`` mini-batches covering the whole data set.

    Every yielded batch is a fresh copy.  The hot training loop in
    :meth:`Trainer.fit` uses the allocation-free :class:`_BatchGatherer`
    instead (same permutation, same batch values, reused buffers); this
    generator remains the simple public API for external callers and tests.
    """
    n = x.shape[0]
    indices = np.arange(n)
    if shuffle:
        if rng is None:
            rng = np.random.default_rng()
        rng.shuffle(indices)
    for start in range(0, n, batch_size):
        batch = indices[start : start + batch_size]
        yield x[batch], y[batch]


class _BatchGatherer:
    """Allocation-free mini-batch gathering for steady-state epochs.

    The naive loop fancy-indexes ``x[perm_batch]`` every step, allocating one
    full pass over the data set per epoch.  This helper shuffles an index
    permutation instead and gathers each mini-batch into *reused* buffers
    with ``np.take(..., out=...)``; after the first epoch the loop allocates
    nothing.  Batches are bitwise identical to the naive loop's: the
    permutation buffer is reset to the identity before every shuffle, so the
    generator consumes exactly the same random stream and produces exactly
    the same index order.

    Without shuffling, contiguous slice *views* are yielded (zero copies).
    The yielded arrays are only valid until the next ``epoch`` call gathers
    over them — the trainer finishes forward/backward/update for a batch
    before requesting the next, so no copy is ever needed.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray, batch_size: int, shuffle: bool):
        self.x = x
        self.y = y
        self.n = int(x.shape[0])
        self.batch_size = int(min(batch_size, self.n))
        self.shuffle = bool(shuffle)
        if self.shuffle:
            self._identity = np.arange(self.n)
            self._perm = np.empty(self.n, dtype=self._identity.dtype)
            self._x_buf = np.empty((self.batch_size,) + x.shape[1:], dtype=x.dtype)
            self._y_buf = np.empty((self.batch_size,) + y.shape[1:], dtype=y.dtype)

    def epoch(self, rng: np.random.Generator):
        """Yield this epoch's ``(x_batch, y_batch)`` pairs."""
        if not self.shuffle:
            for start in range(0, self.n, self.batch_size):
                stop = min(start + self.batch_size, self.n)
                yield self.x[start:stop], self.y[start:stop]
            return
        # Reset to identity before shuffling: rng.shuffle applies its random
        # permutation to the *current* contents, and matching the naive
        # loop's batches requires shuffling the identity every epoch.
        np.copyto(self._perm, self._identity)
        rng.shuffle(self._perm)
        for start in range(0, self.n, self.batch_size):
            stop = min(start + self.batch_size, self.n)
            size = stop - start
            batch = self._perm[start:stop]
            # mode="clip" skips the bounds check; the permutation is in range
            # by construction.
            x_batch = np.take(self.x, batch, axis=0, out=self._x_buf[:size], mode="clip")
            y_batch = np.take(self.y, batch, axis=0, out=self._y_buf[:size], mode="clip")
            yield x_batch, y_batch


class Trainer:
    """Mini-batch SGD trainer with the paper's shared convergence criterion."""

    def __init__(self, config: Optional[TrainingConfig] = None, optimizer: Optional[Optimizer] = None):
        self.config = config or TrainingConfig()
        self._optimizer = optimizer

    def _make_optimizer(self) -> Optimizer:
        if self._optimizer is not None:
            return self._optimizer
        return SGD(
            learning_rate=self.config.learning_rate,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )

    def fit(
        self,
        model: Model,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        seed: SeedLike = 0,
    ) -> TrainingResult:
        """Train ``model`` in place and return the :class:`TrainingResult`."""
        # Cast the whole training set to the model's compute dtype once, so no
        # per-batch slice ever needs a cast inside the epoch loop.
        dtype = getattr(model, "dtype", None) or np.float64
        x_train = np.asarray(x_train, dtype=dtype)
        y_train = np.asarray(y_train)
        if x_train.shape[0] != y_train.shape[0]:
            raise ValueError("x_train and y_train must have the same number of samples")
        if x_train.shape[0] == 0:
            raise ValueError("cannot train on an empty data set")

        config = self.config
        loss_fn: Loss = get_loss(config.loss)
        optimizer = self._make_optimizer()
        schedule = config.schedule or ConstantSchedule(config.learning_rate)
        criterion = ConvergenceCriterion(
            config.convergence_patience, config.convergence_tolerance, config.min_epochs
        )
        rng = as_rng(seed)
        result = TrainingResult()
        start_time = time.perf_counter()
        batches = _BatchGatherer(x_train, y_train, config.batch_size, config.shuffle)

        for epoch in range(config.max_epochs):
            epoch_start = time.perf_counter()
            lr = schedule.learning_rate(epoch)
            optimizer.set_learning_rate(lr)
            losses: List[float] = []
            correct = 0
            for x_batch, y_batch in batches.epoch(rng):
                logits = model.forward(x_batch, training=True)
                loss_value, grad = loss_fn(logits, y_batch)
                model.zero_grads()
                model.backward(grad)
                optimizer.step(model.iter_parameters())
                losses.append(loss_value)
                correct += int((logits.argmax(axis=1) == np.asarray(y_batch).astype(int)).sum())
                result.samples_seen += x_batch.shape[0]

            train_loss = float(np.mean(losses))
            train_acc = correct / x_train.shape[0]
            record = EpochRecord(
                epoch=epoch,
                train_loss=train_loss,
                train_accuracy=train_acc,
                learning_rate=lr,
                seconds=time.perf_counter() - epoch_start,
            )
            if x_val is not None and y_val is not None:
                val_logits = model.predict_logits(x_val, batch_size=config.batch_size)
                record.val_loss = SoftmaxCrossEntropy().forward(val_logits, y_val)
                record.val_accuracy = accuracy(val_logits, y_val)
            result.history.append(record)
            if _metrics.enabled:
                model_name = model.spec.name
                _EPOCHS_TOTAL.inc()
                _SAMPLES_TOTAL.inc(x_train.shape[0])
                _EPOCH_LOSS.labels(model_name).set(train_loss)
                _EPOCH_ACCURACY.labels(model_name).set(train_acc)
                _EPOCH_SECONDS.labels(model_name).set(record.seconds)
            logger.debug(
                "%s epoch %d: loss=%.4f acc=%.3f", model.spec.name, epoch, train_loss, train_acc
            )
            if criterion.update(train_loss):
                result.converged = True
                break

        result.wall_clock_seconds = time.perf_counter() - start_time
        # Training scratch (conv workspace arenas sized for the training
        # batches) is not needed for inference; free it so trained members
        # held in ensembles do not pin batch-sized buffers.
        if hasattr(model, "clear_workspaces"):
            model.clear_workspaces()
        return result


def evaluate(
    model: Model,
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int = 256,
) -> dict:
    """Inference-mode loss/accuracy/error-rate summary for a data split."""
    logits = model.predict_logits(x, batch_size=batch_size)
    loss = SoftmaxCrossEntropy().forward(logits, y)
    acc = accuracy(logits, y)
    return {"loss": float(loss), "accuracy": float(acc), "error_rate": 100.0 * (1.0 - acc)}

"""Serving facade for trained ensembles.

:class:`EnsemblePredictor` loads an ensemble artifact once and answers warm,
batched ``predict`` / ``predict_proba`` calls.  It is the deployment-side
counterpart of :func:`repro.api.run_experiment`: strict about inputs (shape
and dtype are validated before any member runs), explicit about the
combination method, and built on the batched single-pass
:meth:`~repro.core.ensemble.Ensemble.predict_proba_all` engine.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.api.artifacts import load_ensemble_run, read_manifest
from repro.core.artifact_store import resolve_artifact
from repro.core.ensemble import (
    COMBINATION_METHODS,
    Ensemble,
    resolve_combination_method,
)
from repro.core.trainer import EnsembleTrainingRun
from repro.utils.logging import get_logger

logger = get_logger("api.predictor")


def validate_batch(x: np.ndarray, input_shape: Tuple[int, ...]) -> np.ndarray:
    """Validate a predict input against the ensemble's per-sample shape.

    Accepts a batch ``(batch, *input_shape)`` or a single un-batched sample
    ``input_shape`` (a batch axis is added); rejects empty batches and
    non-numeric dtypes.  Shared by :class:`EnsemblePredictor` and the
    multi-process :class:`~repro.parallel.serving.PoolPredictor`, which
    validates in the dispatching process so malformed requests fail fast
    without a worker round-trip.
    """
    if not isinstance(x, np.ndarray):
        x = np.asarray(x)
    if not (np.issubdtype(x.dtype, np.floating) or np.issubdtype(x.dtype, np.integer)):
        raise TypeError(
            f"input dtype must be numeric (floating or integer), got {x.dtype}"
        )
    expected = tuple(input_shape)
    if x.ndim == len(expected):
        # A single un-batched sample: accept and add the batch axis.
        if tuple(x.shape) != expected:
            raise ValueError(
                f"input shape {tuple(x.shape)} does not match the ensemble's "
                f"per-sample input shape {expected}"
            )
        x = x[None, ...]
    elif x.ndim != len(expected) + 1 or tuple(x.shape[1:]) != expected:
        raise ValueError(
            f"input shape {tuple(x.shape)} does not match (batch, *{expected})"
        )
    if x.shape[0] == 0:
        raise ValueError("cannot predict on an empty batch")
    return x


class EnsemblePredictor:
    """Warm, input-validated serving for a trained :class:`Ensemble`.

    Construct with :meth:`load` (from a saved artifact) or :meth:`from_run`
    (from an in-memory training run).  All members are held in memory; every
    ``predict`` call is a single batched pass over the input shared by all
    members.
    """

    def __init__(
        self,
        ensemble: Ensemble,
        method: str = "average",
        batch_size: int = 256,
        metadata: Optional[Dict[str, Any]] = None,
    ):
        if method not in COMBINATION_METHODS:
            raise ValueError(
                f"unknown combination method {method!r}; valid choices: "
                + ", ".join(repr(m) for m in COMBINATION_METHODS)
            )
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.ensemble = ensemble
        self.method = method
        self.batch_size = int(batch_size)
        self.metadata = dict(metadata or {})
        self.input_shape: Tuple[int, ...] = tuple(
            ensemble.members[0].model.spec.input_shape
        )
        self.num_classes = ensemble.num_classes
        # Which store generation is loaded; bare directories (and in-memory
        # runs) are implicitly generation 0.  The path the caller handed to
        # load() is kept so reload() re-resolves CURRENT from the same root.
        self.generation = 0
        self.source_path: Optional[Path] = None

    # ------------------------------------------------------------- factories
    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        method: str = "average",
        batch_size: int = 256,
        warm: bool = True,
        generation: Optional[int] = None,
    ) -> "EnsemblePredictor":
        """Load an ensemble artifact directory saved by
        :func:`repro.api.save_ensemble_run`.

        ``warm=True`` (default) runs one zero-batch through every member so
        lazily-built conv workspaces exist before the first real request.

        ``path`` may be a bare artifact directory (implicit generation 0) or
        an :class:`~repro.core.artifact_store.ArtifactStore` root, in which
        case the promoted generation — or the explicitly requested
        ``generation`` — is loaded.
        """
        resolved = resolve_artifact(path, generation=generation)
        manifest = read_manifest(resolved.path)
        run = load_ensemble_run(resolved.path, manifest=manifest)
        metadata = {
            "artifact": str(path),
            "approach": manifest["approach"],
            "dtype": manifest["dtype"],
            "repro_version": manifest.get("repro_version"),
            "ledger_summary": manifest.get("ledger_summary", {}),
        }
        if resolved.store is not None:
            # Store-layout extras only: bare directories keep their exact
            # pre-store info()/inspect output.
            metadata["generation"] = resolved.generation
            metadata["store_root"] = str(resolved.store.root)
        predictor = cls(
            run.ensemble,
            method=method,
            batch_size=batch_size,
            metadata=metadata,
        )
        predictor.generation = resolved.generation
        predictor.source_path = Path(path)
        if warm:
            predictor.warmup()
        logger.info(
            "loaded %s ensemble (%d members, generation %d) from %s",
            manifest["approach"],
            len(run.ensemble),
            resolved.generation,
            resolved.path,
        )
        return predictor

    def reload(
        self,
        path: Optional[Union[str, Path]] = None,
        generation: Optional[int] = None,
    ) -> int:
        """Swap the loaded ensemble in place and return the new generation.

        With no arguments the original artifact path is re-resolved — for a
        store root that means picking up whatever ``CURRENT`` now points at
        (the single-process analogue of ``PoolPredictor.swap``).  The call
        replaces the ensemble atomically from the caller's perspective: it
        either completes (new weights, warmed) or raises leaving the old
        ensemble serving.
        """
        source = self.source_path if path is None else Path(path)
        if source is None:
            raise ValueError(
                "this predictor was not loaded from disk; pass reload(path=...)"
            )
        resolved = resolve_artifact(source, generation=generation)
        manifest = read_manifest(resolved.path)
        run = load_ensemble_run(resolved.path, manifest=manifest)
        ensemble = run.ensemble
        input_shape = tuple(ensemble.members[0].model.spec.input_shape)
        self.ensemble = ensemble
        self.input_shape = input_shape
        self.num_classes = ensemble.num_classes
        self.generation = resolved.generation
        self.source_path = source
        self.metadata.update(
            {
                "artifact": str(source),
                "approach": manifest["approach"],
                "dtype": manifest["dtype"],
                "repro_version": manifest.get("repro_version"),
                "ledger_summary": manifest.get("ledger_summary", {}),
            }
        )
        if resolved.store is not None:
            self.metadata["generation"] = resolved.generation
            self.metadata["store_root"] = str(resolved.store.root)
        self.warmup()
        logger.info(
            "reloaded %s ensemble (generation %d) from %s",
            manifest["approach"],
            resolved.generation,
            resolved.path,
        )
        return self.generation

    @classmethod
    def from_run(
        cls,
        run: EnsembleTrainingRun,
        method: str = "average",
        batch_size: int = 256,
    ) -> "EnsemblePredictor":
        """Serve an in-memory training run without going through disk."""
        return cls(
            run.ensemble,
            method=method,
            batch_size=batch_size,
            metadata={"approach": run.approach},
        )

    # ------------------------------------------------------------ validation
    def _validate(self, x: np.ndarray) -> np.ndarray:
        return validate_batch(x, self.input_shape)

    def _resolve_method(self, method: Optional[str]) -> str:
        return resolve_combination_method(
            method,
            default=self.method,
            has_super_learner=self.ensemble.super_learner_weights is not None,
            subject="ensemble",
        )

    # --------------------------------------------------------------- serving
    def warmup(self) -> None:
        """Run a single dummy batch so every member's lazy buffers exist."""
        dummy = np.zeros((1,) + self.input_shape, dtype=np.float32)
        self.ensemble.predict_proba_all(dummy, batch_size=1)

    def predict_proba(
        self,
        x: np.ndarray,
        method: Optional[str] = None,
        batch_size: Optional[int] = None,
    ) -> np.ndarray:
        """Combined class probabilities, shape ``(samples, classes)``."""
        x = self._validate(x)
        return self.ensemble.predict_proba(
            x,
            method=self._resolve_method(method),
            batch_size=batch_size or self.batch_size,
        )

    def predict(
        self,
        x: np.ndarray,
        method: Optional[str] = None,
        batch_size: Optional[int] = None,
    ) -> np.ndarray:
        """Predicted class labels, shape ``(samples,)``."""
        return self.predict_proba(x, method=method, batch_size=batch_size).argmax(axis=1)

    def member_probabilities(self, x: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Raw per-member probabilities, shape ``(members, samples, classes)``."""
        x = self._validate(x)
        return self.ensemble.predict_proba_all(x, batch_size=batch_size or self.batch_size)

    # ------------------------------------------------------------ inspection
    def info(self) -> Dict[str, Any]:
        """JSON-friendly description of the loaded ensemble (CLI ``inspect``)."""
        return {
            "num_members": len(self.ensemble),
            "num_classes": self.num_classes,
            "input_shape": list(self.input_shape),
            "method": self.method,
            "members": [
                {
                    "name": member.name,
                    "source": member.source,
                    "cluster_id": member.cluster_id,
                    "parameters": member.parameter_count,
                    "training_seconds": member.training_seconds,
                }
                for member in self.ensemble.members
            ],
            "super_learner": self.ensemble.super_learner_weights is not None,
            **{k: v for k, v in self.metadata.items() if v is not None},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EnsemblePredictor(members={len(self.ensemble)}, "
            f"input_shape={self.input_shape}, method={self.method!r})"
        )

"""Ensemble artifacts: persist a trained ensemble run as a directory bundle.

Layout of a saved artifact::

    artifact/
      manifest.json                 # schema, approach, dtype, members, ledger
      members/
        000-<name>.spec.json        # ArchitectureSpec (human-readable)
        000-<name>.npz              # spec + weights + state (repro.nn.serialization)

The manifest carries everything needed to reconstruct an
:class:`~repro.core.trainer.EnsembleTrainingRun` — approach, per-member
metadata (source, cluster, training seconds), per-member **training
histories** (per-epoch loss/accuracy records, schema v2), the full cost
ledger including parallel-phase makespans, the training configuration, and
fitted Super Learner weights — so a trained ensemble round-trips **bitwise**:
``load_ensemble_run(save_ensemble_run(run))`` produces identical
``predict_proba_all`` output, and convergence curves survive the cycle.

Schema history: ``repro.ensemble_run/v1`` artifacts (no histories, no
makespans) remain loadable; new artifacts are written as
``repro.ensemble_run/v2``.
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

import repro
from repro.api.spec import training_config_from_dict, training_config_to_dict
from repro.arch.serialization import spec_from_json, spec_to_json
from repro.core.cost_model import CostLedger
from repro.core.ensemble import Ensemble, EnsembleMember
from repro.core.trainer import EnsembleTrainingRun
from repro.nn.serialization import load_model, save_model
from repro.nn.training import TrainingResult
from repro.utils.atomic import atomic_write_text
from repro.utils.logging import get_logger

logger = get_logger("api.artifacts")

ARTIFACT_SCHEMA = "repro.ensemble_run/v2"
ARTIFACT_SCHEMA_V1 = "repro.ensemble_run/v1"
SUPPORTED_SCHEMAS = (ARTIFACT_SCHEMA_V1, ARTIFACT_SCHEMA)
MANIFEST_NAME = "manifest.json"
_MEMBER_DIR = "members"


def _safe_filename(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]", "_", name)


def save_ensemble_run(run: EnsembleTrainingRun, path: Union[str, Path]) -> Path:
    """Persist ``run`` (ensemble weights + manifest) under directory ``path``.

    The directory is created if needed; an existing artifact at the same
    location is refused rather than silently overwritten.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if manifest_path.exists():
        raise FileExistsError(f"an ensemble artifact already exists at {path}")
    member_dir = path / _MEMBER_DIR
    member_dir.mkdir(parents=True, exist_ok=True)

    members_meta = []
    for index, member in enumerate(run.ensemble.members):
        stem = f"{index:03d}-{_safe_filename(member.name)}"
        weights_file = save_model(member.model, member_dir / f"{stem}.npz")
        spec_file = member_dir / f"{stem}.spec.json"
        atomic_write_text(spec_file, spec_to_json(member.model.spec) + "\n")
        members_meta.append(
            {
                "name": member.name,
                "source": member.source,
                "cluster_id": member.cluster_id,
                "training_seconds": member.training_seconds,
                "parameters": member.parameter_count,
                "dtype": str(np.dtype(member.model.dtype)),
                "spec": f"{_MEMBER_DIR}/{spec_file.name}",
                "weights": f"{_MEMBER_DIR}/{weights_file.name}",
                "training_result": (
                    None
                    if member.training_result is None
                    else member.training_result.to_dict()
                ),
            }
        )

    sl_weights = run.ensemble.super_learner_weights
    ensemble_dtype = np.result_type(
        *(member.model.dtype for member in run.ensemble.members)
    )
    manifest = {
        "schema": ARTIFACT_SCHEMA,
        "repro_version": repro.__version__,
        "created_unix": time.time(),
        "approach": run.approach,
        "dtype": str(ensemble_dtype),
        "num_classes": run.ensemble.num_classes,
        "input_shape": list(run.ensemble.members[0].model.spec.input_shape),
        "members": members_meta,
        "super_learner_weights": None if sl_weights is None else sl_weights.tolist(),
        "config": training_config_to_dict(run.config),
        "ledger": {
            "approach": run.ledger.approach,
            "phase_makespans": dict(run.ledger.phase_makespans),
            "records": [
                {
                    "network": record.network,
                    "phase": record.phase,
                    "epochs": record.epochs,
                    "wall_clock_seconds": record.wall_clock_seconds,
                    "parameters": record.parameters,
                    "samples_per_epoch": record.samples_per_epoch,
                    "compute_phases": record.compute_phases,
                }
                for record in run.ledger.records
            ],
        },
        "ledger_summary": {
            "total_seconds": run.ledger.total_seconds,
            "makespan_seconds": run.ledger.makespan_seconds,
            "total_epochs": run.ledger.total_epochs,
            "seconds_by_phase": run.ledger.seconds_by_phase(),
            "seconds_by_compute_phase": run.ledger.seconds_by_compute_phase(),
        },
    }
    # The manifest is written last and atomically: its presence is the commit
    # point of the whole artifact — a kill at any earlier instant leaves a
    # directory load_ensemble_run refuses cleanly (no manifest) rather than
    # one it misparses.
    atomic_write_text(manifest_path, json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    logger.info("saved %s ensemble (%d members) to %s", run.approach, len(members_meta), path)
    return path


def read_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate the manifest of an ensemble artifact directory."""
    manifest_path = Path(path) / MANIFEST_NAME
    if not manifest_path.is_file():
        raise FileNotFoundError(f"{path} is not an ensemble artifact (no {MANIFEST_NAME})")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    schema = manifest.get("schema")
    if schema not in SUPPORTED_SCHEMAS:
        raise ValueError(
            f"unsupported artifact schema {schema!r} (expected one of "
            + ", ".join(repr(s) for s in SUPPORTED_SCHEMAS)
            + ")"
        )
    return manifest


def load_ensemble_run(
    path: Union[str, Path], manifest: Optional[Dict[str, Any]] = None
) -> EnsembleTrainingRun:
    """Reconstruct the :class:`EnsembleTrainingRun` saved at ``path``.

    The reconstructed run carries the trained members, per-member training
    histories (``None`` for members of schema-v1 artifacts, which predate
    history persistence), the full cost ledger, and the training
    configuration; intermediate MotherNet models are not part of the bundle.
    Pass ``manifest`` when the caller already parsed it (avoids a second
    read).
    """
    path = Path(path)
    if manifest is None:
        manifest = read_manifest(path)

    members = []
    member_results = {}
    for meta in manifest["members"]:
        model = load_model(path / meta["weights"])
        sidecar = spec_from_json((path / meta["spec"]).read_text(encoding="utf-8"))
        if sidecar != model.spec:
            raise ValueError(
                f"artifact corrupted: spec sidecar for member {meta['name']!r} does not "
                "match the spec stored with its weights"
            )
        training_result = None
        if meta.get("training_result") is not None:
            training_result = TrainingResult.from_dict(meta["training_result"])
            member_results[meta["name"]] = training_result
        members.append(
            EnsembleMember(
                name=meta["name"],
                model=model,
                training_result=training_result,
                source=meta.get("source", "scratch"),
                cluster_id=meta.get("cluster_id"),
                training_seconds=float(meta.get("training_seconds", 0.0)),
            )
        )

    ensemble = Ensemble(members, num_classes=int(manifest["num_classes"]))
    if manifest.get("super_learner_weights") is not None:
        ensemble.set_super_learner_weights(manifest["super_learner_weights"])

    ledger = CostLedger(approach=manifest["ledger"]["approach"])
    for phase, seconds in manifest["ledger"].get("phase_makespans", {}).items():
        ledger.record_phase_makespan(phase, seconds)
    for record in manifest["ledger"]["records"]:
        ledger.add(
            network=record["network"],
            phase=record["phase"],
            epochs=record["epochs"],
            wall_clock_seconds=record["wall_clock_seconds"],
            parameters=record["parameters"],
            samples_per_epoch=record["samples_per_epoch"],
            compute_phases=record.get("compute_phases") or {},
        )

    return EnsembleTrainingRun(
        approach=manifest["approach"],
        ensemble=ensemble,
        ledger=ledger,
        config=training_config_from_dict(manifest["config"]),
        member_results=member_results,
    )

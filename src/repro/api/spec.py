"""Declarative experiment specifications.

An :class:`ExperimentSpec` captures everything needed to train an ensemble —
the data set, the member architectures, the training approach and its
hyper-parameters — as plain data, so whole experiments can be written as JSON
files, checked into a repository, and executed with
:func:`repro.api.run_experiment` or ``python -m repro train``.

Member architectures come either as explicit spec dictionaries (the
``repro.arch.serialization`` format) or as a reference into the architecture
zoo (``{"family": "mlp", "count": 8, ...}``), mirroring how the paper's
experiments are parameterised by architecture family.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.arch.serialization import spec_from_dict, spec_to_dict
from repro.arch.spec import ArchitectureSpec
from repro.arch.zoo import (
    mlp_family,
    resnet_variant_family,
    small_vgg_ensemble,
    v16_variant_family,
)
from repro.core.registry import get_trainer
from repro.nn.training import TrainingConfig

SPEC_SCHEMA = "repro.experiment/v1"

# Zoo families constructible from a declarative config.  Every factory takes
# keyword arguments only (validated by the factory itself).
_MEMBER_FAMILIES = {
    "mlp": mlp_family,
    "small_vgg": small_vgg_ensemble,
    "v16_variants": v16_variant_family,
    "resnet_variants": resnet_variant_family,
}


# --------------------------------------------------------------------------
# TrainingConfig <-> dict
# --------------------------------------------------------------------------

_CONFIG_FIELDS = (
    "max_epochs",
    "batch_size",
    "learning_rate",
    "momentum",
    "weight_decay",
    "convergence_patience",
    "convergence_tolerance",
    "min_epochs",
    "shuffle",
    "loss",
    "workers",
    "task_timeout",
    "max_task_retries",
)


def training_config_to_dict(config: TrainingConfig) -> Dict[str, Any]:
    """JSON-compatible view of a :class:`TrainingConfig`.

    Learning-rate schedules are objects, not data; they are dropped from the
    dictionary (the loaded config falls back to the constant schedule).
    """
    return {name: getattr(config, name) for name in _CONFIG_FIELDS}


def training_config_from_dict(data: Dict[str, Any]) -> TrainingConfig:
    """Inverse of :func:`training_config_to_dict`; rejects unknown keys."""
    unknown = set(data) - set(_CONFIG_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown TrainingConfig keys {sorted(unknown)}; valid keys: "
            + ", ".join(_CONFIG_FIELDS)
        )
    return TrainingConfig(**data)


# --------------------------------------------------------------------------
# ExperimentSpec
# --------------------------------------------------------------------------


@dataclass
class ExperimentSpec:
    """A complete, declarative description of one ensemble experiment.

    Parameters
    ----------
    dataset:
        ``{"name": <registered dataset>, ...factory kwargs}`` — resolved by
        :func:`repro.data.load_dataset` (``cifar10`` / ``cifar100`` / ``svhn``
        / ``tabular``).
    members:
        The ensemble member architectures: either a list of explicit
        :class:`ArchitectureSpec` objects / spec dictionaries, or a zoo-family
        reference ``{"family": "mlp" | "small_vgg" | "v16_variants" |
        "resnet_variants", ...factory kwargs}``.
    approach:
        Registry name of the training approach (``mothernets`` /
        ``full-data`` / ``bagging`` / ``snapshot`` / any registered plug-in).
    training:
        The shared :class:`TrainingConfig` (or its dictionary form).
    trainer:
        Extra keyword arguments for the trainer constructor (e.g. ``tau`` and
        ``member_epoch_fraction`` for MotherNets).
    seed:
        Base seed for the whole experiment (data is generated from the
        dataset factory's own ``seed`` kwarg when given there).
    dtype:
        Optional compute dtype override (``"float32"`` / ``"float64"``) for
        the run; ``None`` keeps the global default.
    super_learner:
        When truthy, fit Super Learner combination weights after training on
        a validation split carved from the training set.  Either ``True`` or
        ``{"validation_fraction": 0.15, "seed": 0}``.
    """

    dataset: Dict[str, Any]
    members: Union[Sequence[ArchitectureSpec], Dict[str, Any]]
    approach: str = "mothernets"
    training: TrainingConfig = field(default_factory=TrainingConfig)
    trainer: Dict[str, Any] = field(default_factory=dict)
    name: str = "experiment"
    seed: int = 0
    dtype: Optional[str] = None
    super_learner: Union[bool, Dict[str, Any]] = False

    def __post_init__(self):
        if not isinstance(self.dataset, dict) or "name" not in self.dataset:
            raise ValueError('dataset must be a dict with a "name" key')
        if isinstance(self.training, dict):
            self.training = training_config_from_dict(self.training)
        if self.dtype is not None and str(self.dtype) not in ("float32", "float64"):
            raise ValueError(f"dtype must be 'float32' or 'float64', got {self.dtype!r}")
        if isinstance(self.super_learner, dict):
            unknown = set(self.super_learner) - {"validation_fraction", "seed"}
            if unknown:
                raise ValueError(
                    f"unknown super_learner keys {sorted(unknown)}; valid keys: "
                    "validation_fraction, seed"
                )
        # Fail fast on unknown approaches — before any data or model work.
        get_trainer(self.approach)
        self.member_specs()  # validates the member description eagerly

    # --------------------------------------------------------------- members
    def member_specs(self) -> List[ArchitectureSpec]:
        """Materialise the member :class:`ArchitectureSpec` list."""
        members = self.members
        if isinstance(members, dict):
            kwargs = dict(members)
            family = kwargs.pop("family", None)
            if family not in _MEMBER_FAMILIES:
                raise ValueError(
                    f"unknown member family {family!r}; valid families: "
                    + ", ".join(sorted(_MEMBER_FAMILIES))
                )
            return list(_MEMBER_FAMILIES[family](**kwargs))
        if not members:
            raise ValueError("members must name at least one architecture")
        specs: List[ArchitectureSpec] = []
        for entry in members:
            if isinstance(entry, ArchitectureSpec):
                specs.append(entry)
            elif isinstance(entry, dict):
                specs.append(spec_from_dict(entry))
            else:
                raise TypeError(
                    f"members entries must be ArchitectureSpec or dict, got {type(entry).__name__}"
                )
        return specs

    # ------------------------------------------------------------- dict/JSON
    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible dictionary (inverse of :meth:`from_dict`)."""
        if isinstance(self.members, dict):
            members: Union[List[Dict[str, Any]], Dict[str, Any]] = dict(self.members)
        else:
            members = [
                spec_to_dict(m) if isinstance(m, ArchitectureSpec) else dict(m)
                for m in self.members
            ]
        return {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "dataset": dict(self.dataset),
            "members": members,
            "approach": self.approach,
            "training": training_config_to_dict(self.training),
            "trainer": dict(self.trainer),
            "seed": self.seed,
            "dtype": self.dtype,
            "super_learner": self.super_learner,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        """Build a spec from its dictionary form; rejects unknown keys."""
        data = dict(data)
        schema = data.pop("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise ValueError(f"unsupported experiment schema {schema!r} (expected {SPEC_SCHEMA})")
        known = {f.name for f in dataclass_fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ExperimentSpec keys {sorted(unknown)}; valid keys: "
                + ", ".join(sorted(known))
            )
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ExperimentSpec":
        """Load a spec from a JSON file (the CLI's ``--config``)."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def save(self, path: Union[str, Path]) -> Path:
        from repro.utils.atomic import atomic_write_text

        return atomic_write_text(Path(path), self.to_json() + "\n")

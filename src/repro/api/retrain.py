"""Background retraining loop: hatch a fresh generation, gate it, promote it.

The MotherNets economics make ensemble refresh cheap — hatching members from
a trained MotherNet costs a fraction of training them from scratch — so the
natural deployment loop is *retrain continuously, promote conservatively*:

1. **Retrain** the experiment on freshly-arrived data (simulated here by
   shifting the dataset seed per cycle; every member is trained through the
   registry-resolved trainer, so MotherNets runs hatch their members).
2. **Write** the result as the next generation of an
   :class:`~repro.core.artifact_store.ArtifactStore` — a complete ordinary
   artifact plus ``lineage.json`` provenance; ``CURRENT`` is untouched.
3. **Shadow-evaluate**: the candidate and the currently-promoted baseline
   both predict the candidate's held-out test split; the candidate is
   promoted only when its error does not exceed the baseline's by more than
   ``max_error_delta`` percentage points.  A rejected generation stays on
   disk (status ``rejected``) for forensics.

Promotion moves the store's atomic ``CURRENT`` pointer, which is exactly
what the serving tier's hot-swap re-resolves — ``POST /admin/swap`` on the
HTTP front, :meth:`PoolPredictor.swap`, or a fleet control broadcast — so
the retrain loop never touches a server directly.

``python -m repro retrain`` drives this module from the CLI: ``--once`` for
a single cycle (CI smoke), ``--interval``/``--max-cycles`` for the
background loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.api.spec import ExperimentSpec
from repro.core.artifact_store import ArtifactStore
from repro.obs.events import log_event
from repro.obs.metrics import get_registry
from repro.utils.logging import get_logger

logger = get_logger("api.retrain")

_metrics = get_registry()
_RETRAIN_CYCLES = _metrics.counter(
    "repro_retrain_cycles_total",
    "Retrain cycles by outcome (promoted / rejected / failed).",
    ("outcome",),
)
_RETRAIN_SECONDS = _metrics.histogram(
    "repro_retrain_cycle_seconds", "Wall-clock seconds per retrain cycle."
)

__all__ = ["RetrainReport", "retrain_cycle", "retrain_loop"]


@dataclass
class RetrainReport:
    """Outcome of one retrain cycle (JSON-friendly via :meth:`to_dict`)."""

    generation: int
    parent_generation: int
    promoted: bool
    candidate_error: float
    baseline_error: float
    max_error_delta: float
    method: str
    data_seed: int
    cycle_seconds: float
    members_hatched: int = 0
    members_total: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "generation": self.generation,
            "parent_generation": self.parent_generation,
            "promoted": self.promoted,
            "candidate_error_percent": self.candidate_error,
            "baseline_error_percent": self.baseline_error,
            "max_error_delta": self.max_error_delta,
            "method": self.method,
            "data_seed": self.data_seed,
            "cycle_seconds": self.cycle_seconds,
            "members_hatched": self.members_hatched,
            "members_total": self.members_total,
            **self.extra,
        }


def _shifted_spec(spec: ExperimentSpec, data_seed: int) -> ExperimentSpec:
    """The same experiment pointed at a fresh draw of the data.

    Round-trips through the spec's dict form so nothing but the dataset seed
    changes — the member architectures, trainer config and member seeds stay
    identical, isolating the generation delta to the data.
    """
    spec_dict = spec.to_dict()
    dataset = dict(spec_dict.get("dataset", {}))
    dataset["seed"] = int(data_seed)
    spec_dict["dataset"] = dataset
    return ExperimentSpec.from_dict(spec_dict)


def retrain_cycle(
    store: ArtifactStore,
    spec: ExperimentSpec,
    *,
    data_seed: int,
    max_error_delta: float = 1.0,
    method: str = "average",
) -> RetrainReport:
    """Run one retrain → shadow-evaluate → promote-or-reject cycle.

    ``data_seed`` selects the cycle's fresh data draw; ``max_error_delta``
    is the promotion gate in error-percentage points: the candidate is
    promoted iff ``candidate_error <= baseline_error + max_error_delta`` on
    the candidate's held-out test split, both ensembles evaluated under
    ``method``.  Returns the :class:`RetrainReport`; the written generation
    carries the verdict in its ``lineage.json`` either way.
    """
    from repro.api.experiment import run_experiment
    from repro.api.predictor import EnsemblePredictor

    started = time.monotonic()
    parent_generation = store.current_generation()
    cycle_spec = _shifted_spec(spec, data_seed)
    log_event(
        "retrain.cycle_started",
        store=str(store.root),
        parent_generation=parent_generation,
        data_seed=data_seed,
    )
    result = run_experiment(cycle_spec)

    # Shadow evaluation: candidate vs the promoted baseline, same fresh
    # held-out split (the data neither ensemble trained on this cycle).
    x_test, y_test = result.dataset.x_test, result.dataset.y_test
    candidate_error = result.ensemble.evaluate(x_test, y_test, methods=(method,))[
        method
    ]
    baseline = EnsemblePredictor.load(store.root, warm=False)
    baseline_error = baseline.ensemble.evaluate(x_test, y_test, methods=(method,))[
        method
    ]

    gate = {
        "method": method,
        "max_error_delta": float(max_error_delta),
        "candidate_error_percent": candidate_error,
        "baseline_error_percent": baseline_error,
        "baseline_generation": parent_generation,
        "test_samples": int(len(y_test)),
        "data_seed": int(data_seed),
    }
    generation = store.add_generation(
        result.run, parent_generation=parent_generation, gate=gate
    )
    promoted = candidate_error <= baseline_error + float(max_error_delta)
    if promoted:
        store.promote(generation)
    else:
        store.reject(
            generation,
            reason=(
                f"shadow evaluation failed the gate: candidate error "
                f"{candidate_error:.3f}% > baseline {baseline_error:.3f}% "
                f"+ {float(max_error_delta):.3f}"
            ),
        )
    elapsed = time.monotonic() - started
    if _metrics.enabled:
        _RETRAIN_CYCLES.labels("promoted" if promoted else "rejected").inc()
        _RETRAIN_SECONDS.observe(elapsed)
    members = list(result.run.ensemble.members)
    report = RetrainReport(
        generation=generation,
        parent_generation=parent_generation,
        promoted=promoted,
        candidate_error=candidate_error,
        baseline_error=baseline_error,
        max_error_delta=float(max_error_delta),
        method=method,
        data_seed=int(data_seed),
        cycle_seconds=elapsed,
        members_hatched=sum(1 for member in members if member.source == "hatched"),
        members_total=len(members),
    )
    log_event(
        "retrain.cycle_finished",
        store=str(store.root),
        **report.to_dict(),
    )
    logger.info(
        "retrain cycle: generation %d %s (candidate %.3f%% vs baseline %.3f%%, "
        "gate +%.3f, %.1fs)",
        generation,
        "promoted" if promoted else "rejected",
        candidate_error,
        baseline_error,
        float(max_error_delta),
        elapsed,
    )
    return report


def retrain_loop(
    store: Union[str, Path, ArtifactStore],
    spec: ExperimentSpec,
    *,
    interval: float = 0.0,
    max_cycles: Optional[int] = None,
    max_error_delta: float = 1.0,
    method: str = "average",
    data_seed_step: int = 1,
    stop: Optional[Any] = None,
) -> list:
    """Run retrain cycles until ``max_cycles`` (or ``stop.is_set()``).

    Each cycle's data seed is the spec's dataset seed plus ``cycle_index *
    data_seed_step`` (1-based), so cycles are deterministic and distinct.
    ``stop`` is any object with ``is_set()`` — a ``threading.Event`` — for
    embedding the loop in a service.  Returns the list of
    :class:`RetrainReport`.
    """
    if not isinstance(store, ArtifactStore):
        store = ArtifactStore.open(store)
    base_seed = int(dict(spec.dataset).get("seed", 0))
    reports = []
    cycle = 0
    while max_cycles is None or cycle < max_cycles:
        if stop is not None and stop.is_set():
            break
        cycle += 1
        data_seed = base_seed + cycle * int(data_seed_step)
        try:
            reports.append(
                retrain_cycle(
                    store,
                    spec,
                    data_seed=data_seed,
                    max_error_delta=max_error_delta,
                    method=method,
                )
            )
        except Exception:
            _RETRAIN_CYCLES.labels("failed").inc()
            logger.exception("retrain cycle %d failed", cycle)
            raise
        if max_cycles is not None and cycle >= max_cycles:
            break
        if stop is not None:
            if stop.wait(interval):
                break
        elif interval > 0:
            time.sleep(interval)
    return reports

"""Execution of declarative experiments.

:func:`run_experiment` is the single entry point that turns an
:class:`~repro.api.spec.ExperimentSpec` into a trained ensemble: it resolves
the data set, materialises the member architectures, instantiates the
requested trainer through the registry, trains, and (optionally) fits the
Super Learner combination weights.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.api.spec import ExperimentSpec
from repro.core.checkpoint import RunCheckpoint
from repro.core.ensemble import Ensemble
from repro.core.registry import create_trainer
from repro.core.trainer import EnsembleTrainingRun, summarize_run
from repro.data.datasets import Dataset, load_dataset
from repro.data.sampling import train_validation_split
from repro.nn.dtypes import default_dtype
from repro.obs.events import log_event
from repro.obs.metrics import get_registry
from repro.utils.logging import get_logger

logger = get_logger("api.experiment")

_metrics = get_registry()
_EXPERIMENTS_TOTAL = _metrics.counter(
    "repro_experiments_total", "Experiments executed end to end.", ("approach",)
)
_LAST_EXPERIMENT_SECONDS = _metrics.gauge(
    "repro_experiment_last_training_seconds",
    "Summed training seconds of the most recent experiment.",
)


@dataclass
class ExperimentResult:
    """A finished experiment: the spec that produced it, the data it ran on,
    and the training run (ensemble + cost ledger)."""

    spec: ExperimentSpec
    dataset: Dataset
    run: EnsembleTrainingRun
    # The checkpoint journal the run trained against (None when the caller
    # did not checkpoint).  Discard it once the final artifact is saved.
    checkpoint: Optional[RunCheckpoint] = None

    @property
    def ensemble(self) -> Ensemble:
        return self.run.ensemble

    def evaluate(self, methods=("average", "vote")) -> Dict[str, float]:
        """Test error rate (percent) under the requested inference methods."""
        return self.run.ensemble.evaluate(
            self.dataset.x_test, self.dataset.y_test, methods=methods
        )

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly run summary (approach, members, training cost)."""
        summary = summarize_run(self.run)
        summary["experiment"] = self.spec.name
        summary["dataset"] = self.dataset.name
        return summary


def run_experiment(
    spec: Union[ExperimentSpec, Dict[str, Any]],
    dataset: Optional[Dataset] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
) -> ExperimentResult:
    """Execute ``spec`` end to end and return the :class:`ExperimentResult`.

    ``spec`` may be an :class:`ExperimentSpec` or its plain-dict/JSON form.
    ``dataset`` overrides the spec's dataset description (useful for reusing
    an already-generated data set across approaches).

    ``checkpoint_dir`` turns on crash-safe incremental checkpointing: every
    finished network is journaled under ``<checkpoint_dir>/checkpoint`` as it
    completes, and with ``resume=True`` an interrupted run continues from the
    journal, restoring finished networks bitwise instead of retraining them
    (all member training is fully seeded, so the completed ensemble is
    identical to an uninterrupted run's).  The journal stays on disk for the
    caller to :meth:`~repro.core.checkpoint.RunCheckpoint.discard` after the
    final artifact is saved — ``repro train`` does exactly that.
    """
    if isinstance(spec, dict):
        spec = ExperimentSpec.from_dict(spec)
    if dataset is None:
        dataset_kwargs = dict(spec.dataset)
        dataset_name = dataset_kwargs.pop("name")
        dataset = load_dataset(dataset_name, **dataset_kwargs)

    checkpoint: Optional[RunCheckpoint] = None
    if checkpoint_dir is not None:
        # The spec dictionary is the journal's fingerprint: resuming a
        # different experiment into the same journal is refused.
        checkpoint = RunCheckpoint.open(checkpoint_dir, spec.to_dict(), resume=resume)

    member_specs = spec.member_specs()
    trainer = create_trainer(spec.approach, config=spec.training, **spec.trainer)
    trainer.checkpoint = checkpoint
    logger.info(
        "experiment %s: %s on %s (%d members)",
        spec.name,
        spec.approach,
        dataset.name,
        len(member_specs),
    )

    log_event(
        "experiment.started",
        experiment=spec.name,
        approach=spec.approach,
        dataset=dataset.name,
        members=len(member_specs),
        workers=getattr(spec.training, "workers", 1),
    )
    dtype_scope = default_dtype(spec.dtype) if spec.dtype is not None else nullcontext()
    with dtype_scope:
        run = trainer.train(member_specs, dataset, seed=spec.seed)
        if spec.super_learner:
            sl = spec.super_learner if isinstance(spec.super_learner, dict) else {}
            _, _, x_val, y_val = train_validation_split(
                dataset.x_train,
                dataset.y_train,
                validation_fraction=float(sl.get("validation_fraction", 0.15)),
                seed=int(sl.get("seed", spec.seed)),
            )
            run.ensemble.fit_super_learner(x_val, y_val, seed=int(sl.get("seed", spec.seed)))
    if _metrics.enabled:
        _EXPERIMENTS_TOTAL.labels(spec.approach).inc()
        _LAST_EXPERIMENT_SECONDS.set(run.total_training_seconds)
    log_event(
        "experiment.finished",
        experiment=spec.name,
        approach=spec.approach,
        training_seconds=round(run.total_training_seconds, 6),
        makespan_seconds=round(run.makespan_seconds, 6),
    )
    return ExperimentResult(spec=spec, dataset=dataset, run=run, checkpoint=checkpoint)

"""Unified experiment & serving API — the front door to the library.

The workflow is declarative end to end::

    from repro.api import ExperimentSpec, run_experiment, save_ensemble_run
    from repro.api import EnsemblePredictor

    spec = ExperimentSpec.from_file("experiment.json")   # or from_dict(...)
    result = run_experiment(spec)                        # registry-resolved trainer
    save_ensemble_run(result.run, "artifacts/my-run")    # portable directory bundle

    predictor = EnsemblePredictor.load("artifacts/my-run")
    labels = predictor.predict(batch)                    # warm, validated serving

The same flow is scriptable from the shell via ``python -m repro``
(``train`` / ``predict`` / ``inspect``).  Training approaches are resolved by
name through the trainer registry in :mod:`repro.core.registry`, so plug-in
trainers registered with ``@register_trainer("my-approach")`` are reachable
from JSON configs without code changes here.
"""

from repro.api.spec import (
    ExperimentSpec,
    SPEC_SCHEMA,
    training_config_from_dict,
    training_config_to_dict,
)
from repro.api.experiment import ExperimentResult, run_experiment
from repro.api.artifacts import (
    ARTIFACT_SCHEMA,
    load_ensemble_run,
    read_manifest,
    save_ensemble_run,
)
from repro.api.predictor import EnsemblePredictor
from repro.api.retrain import RetrainReport, retrain_cycle, retrain_loop

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "SPEC_SCHEMA",
    "ARTIFACT_SCHEMA",
    "run_experiment",
    "save_ensemble_run",
    "load_ensemble_run",
    "read_manifest",
    "EnsemblePredictor",
    "PoolPredictor",
    "RetrainReport",
    "retrain_cycle",
    "retrain_loop",
    "training_config_to_dict",
    "training_config_from_dict",
]


def __getattr__(name):
    # PoolPredictor lives in repro.parallel, which imports back into
    # repro.api for artifact reading; resolving it lazily keeps the import
    # graph acyclic no matter which package is imported first.
    if name == "PoolPredictor":
        from repro.parallel.serving import PoolPredictor

        return PoolPredictor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

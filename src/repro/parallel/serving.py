"""Multi-worker serving pool on top of the ensemble artifact format.

:class:`PoolPredictor` closes the ROADMAP "multi-process serving" item: N
worker processes each warm-load one :class:`~repro.api.predictor.EnsemblePredictor`
from the *same* artifact directory, and a dispatcher coalesces incoming
requests into micro-batches (up to ``max_batch`` rows or ``max_wait_ms``)
that are handed to the workers round-robin.  Client calls are thread-safe:
any number of application threads can call :meth:`predict` /
:meth:`predict_proba` concurrently; each call blocks only on its own future.

Micro-batching semantics: coalescing groups *requests* into one IPC dispatch
(amortising queue/pickle overhead); inside the worker each request still runs
through ``EnsemblePredictor.predict_proba`` with its own rows and the
configured ``batch_size``, so every answer is **bitwise identical** to what a
single-process ``EnsemblePredictor`` would return for the same call.

Self-healing: a supervisor thread health-checks the worker processes every
``supervise_interval`` seconds.  A dead worker has its in-flight requests
failed promptly, is evicted from dispatch, and — when ``restart_workers`` is
on (the default) — is respawned from the artifact directory under a bounded
exponential backoff (``restart_backoff`` doubling per consecutive failed
attempt up to ``restart_backoff_max``).  :meth:`healthz` reports ``degraded``
while capacity is reduced and returns to ``ok`` once the respawned worker has
its predictor warm again; every transition is recorded as a structured event
(``serve.worker_died`` / ``serve.worker_respawned`` / ``serve.worker_ready``)
and counted in the ``repro_serve_*`` metrics.

Crash-safe IPC layout: every worker owns a private request queue (parent
writes, worker reads) and a private result queue (worker writes, parent
reads), so each internal queue lock ever has exactly one process on each
side.  A worker SIGKILLed while holding a lock — e.g. mid-``get`` on its
request queue — therefore poisons only its *own* queues, and the supervisor
replaces both with fresh ones at respawn; with a lock shared across workers
(the naive single result queue) one crash could deadlock the whole pool.
The collector multiplexes the per-worker result queues through
``multiprocessing.connection.wait``.

Transports: with ``transport="shm"`` (the default) each worker additionally
owns a shared-memory arena (:class:`~repro.parallel.shm_transport.ShmArena`)
and the queues carry only fixed-size descriptors — request rows are written
once into the worker's arena and probabilities come back as zero-copy views
of worker-written result regions.  ``transport="pickle"`` keeps the original
tensors-through-the-queue path as the bitwise reference; the shm dispatcher
also falls back to it per dispatch whenever a request does not fit the arena.
A dead worker's arena is retired wholesale (name unlinked immediately, the
mapping closed once the last client-held result view is garbage collected)
and the respawned worker gets a fresh generation, so a SIGKILL mid-slot-write
can never wedge the dispatcher or leak ``/dev/shm`` segments.
"""

from __future__ import annotations

import atexit
import itertools
import math
import pickle
import queue as thread_queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from math import prod
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import multiprocessing as mp
from multiprocessing.connection import wait as _mp_wait

import numpy as np

from repro.core.artifact_store import (
    ARTIFACT_GENERATION,
    resolve_artifact,
)
from repro.core.ensemble import resolve_combination_method
from repro.obs.events import log_event
from repro.obs.metrics import get_registry
from repro.parallel.shm_transport import RESULT_ITEMSIZE, ShmArena, _align
from repro.parallel.worker import _serving_worker_main
from repro.utils.logging import get_logger

TRANSPORTS = ("shm", "pickle")

logger = get_logger("parallel.serving")

# Serving telemetry (repro.obs).  Request counters/latency are observed in
# the client-facing predict path (the parent process — exactly what the HTTP
# front scrapes); dispatch histograms in the dispatcher thread; worker
# lifecycle counters in the supervisor.
_metrics = get_registry()
_REQUESTS = _metrics.counter(
    "repro_serve_requests_total", "Predict requests answered by the pool.", ("status",)
)
_REQUESTS_OK = _REQUESTS.labels("ok")
_REQUESTS_ERROR = _REQUESTS.labels("error")
_REQUEST_LATENCY = _metrics.histogram(
    "repro_serve_request_latency_seconds",
    "End-to-end predict latency (validation, dispatch, IPC, inference).",
)
_REQUEST_ROWS = _metrics.histogram(
    "repro_serve_request_rows",
    "Rows per predict request.",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048),
)
_DISPATCHES = _metrics.counter(
    "repro_serve_dispatches_total", "Micro-batch dispatches handed to workers."
)
_DISPATCH_ROWS = _metrics.histogram(
    "repro_serve_dispatch_rows",
    "Coalesced rows per micro-batch dispatch.",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048),
)
_WORKERS_ALIVE = _metrics.gauge(
    "repro_serve_workers_alive", "Pool workers currently loaded and serving."
)
_WORKERS_CONFIGURED = _metrics.gauge(
    "repro_serve_workers", "Pool workers configured at start-up."
)
_WORKER_DEATHS = _metrics.counter(
    "repro_serve_worker_deaths_total", "Pool worker processes found dead."
)
_WORKER_RESTARTS = _metrics.counter(
    "repro_serve_worker_restarts_total", "Pool worker processes respawned."
)
_WORKER_HANGS = _metrics.counter(
    "repro_serve_worker_hangs_total",
    "Pool workers killed for exceeding the dispatch deadline (wedged).",
)
_TRANSPORT_BYTES = _metrics.counter(
    "repro_serve_transport_bytes_total",
    "Bytes crossing the parent<->worker process boundary, by transport and "
    "direction (shm counts only the queue descriptors; pickle counts the "
    "tensor payloads).",
    ("transport", "direction"),
)
_TRANSPORT_FALLBACKS = _metrics.counter(
    "repro_serve_transport_fallbacks_total",
    "Dispatches the shm transport handed to the pickle path instead.",
    ("reason",),
)
_TRANSPORT_PHASE = _metrics.histogram(
    "repro_serve_transport_phase_seconds",
    "Per-dispatch transport phases: copying rows into the arena (shm) or "
    "building the tensor payload (pickle).",
    ("transport", "phase"),
)
_SWAPS = _metrics.counter(
    "repro_swap_total", "Artifact hot-swaps attempted by the pool.", ("status",)
)
_SWAP_WORKERS = _metrics.counter(
    "repro_swap_workers_respawned_total",
    "Pool workers rolled onto a new artifact generation during swaps.",
)
_SWAP_SECONDS = _metrics.histogram(
    "repro_swap_seconds",
    "Swap makespan: first worker drained to last worker warm on the new "
    "generation.",
)

#: Estimated per-request pickle framing on the reference transport; the
#: tensor bytes dominate, so the counter is a (tight) lower bound of the
#: true pickled size — conservative for any shm-vs-pickle ratio claim.
_PICKLE_OVERHEAD = 64


def _descriptor_nbytes(message: object) -> int:
    """Actual pickled size of a (small) queue descriptor."""
    return len(pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))


def _latency_quantiles(histogram) -> Dict[str, Optional[float]]:
    """p50/p99 of a latency histogram, JSON-friendly (``None`` when empty)."""
    out: Dict[str, Optional[float]] = {}
    for name, q in (("p50", 0.5), ("p99", 0.99)):
        value = histogram.quantile(q)
        out[name] = None if math.isnan(value) else value
    return out


@dataclass
class _Request:
    request_id: int
    x: np.ndarray
    method: str
    future: Future = field(default_factory=Future)

    @property
    def rows(self) -> int:
        return int(self.x.shape[0])


class PoolPredictor:
    """Serve one saved ensemble artifact from a pool of worker processes.

    Construct directly or via :meth:`load` (mirrors
    ``EnsemblePredictor.load``).  Always ``close()`` the pool — or use it as a
    context manager — so worker processes and queues shut down promptly; an
    ``atexit`` hook covers forgotten pools.

    Resilience parameters
    ---------------------
    restart_workers:
        When true (default), dead workers are automatically respawned from
        the artifact directory; when false the pool only evicts them (the
        pre-supervisor behaviour).
    restart_backoff / restart_backoff_max:
        Initial and maximum delay before respawning, doubling per consecutive
        failed attempt (a worker that reaches "ready" resets its backoff).
    supervise_interval:
        How often the supervisor thread health-checks the workers.
    worker_wait:
        How long a dispatch waits for *some* worker to become available
        before failing its requests, when respawn is enabled.
    dispatch_timeout:
        Per-dispatch deadline in seconds.  A worker holding a request in
        flight longer than this is treated as *wedged* (hung in a syscall,
        looping, SIGSTOPped): the supervisor SIGKILLs it, fails its in-flight
        requests promptly, and respawns it like any other dead worker.
        ``0`` disables hang detection (the pre-deadline behaviour).

    Transport parameters
    --------------------
    transport:
        ``"shm"`` (default) moves request rows and result probabilities
        through per-worker shared-memory arenas; the queues carry only small
        fixed-size descriptors.  ``"pickle"`` is the reference path with the
        tensors pickled through the queues; both produce bitwise-identical
        predictions.
    arena_slots:
        Arena capacity in units of ``max_batch``-row dispatches.  A single
        request larger than ``max_batch`` rows occupies several slots' worth
        of contiguous bytes; anything that exceeds the whole arena falls back
        to the pickle path for that dispatch.
    """

    def __init__(
        self,
        path: Union[str, Path],
        workers: int = 2,
        method: str = "average",
        batch_size: int = 256,
        max_batch: int = 1024,
        max_wait_ms: float = 2.0,
        warm: bool = True,
        request_timeout: float = 300.0,
        startup_timeout: float = 180.0,
        restart_workers: bool = True,
        restart_backoff: float = 0.5,
        restart_backoff_max: float = 30.0,
        supervise_interval: float = 0.25,
        worker_wait: float = 60.0,
        dispatch_timeout: float = 120.0,
        transport: str = "shm",
        arena_slots: int = 4,
    ):
        from repro.api.artifacts import read_manifest

        if workers < 1:
            raise ValueError("workers must be at least 1")
        resolve_combination_method(method, has_super_learner=True)
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if restart_backoff <= 0 or restart_backoff_max < restart_backoff:
            raise ValueError("need 0 < restart_backoff <= restart_backoff_max")
        if supervise_interval <= 0:
            raise ValueError("supervise_interval must be positive")
        if dispatch_timeout < 0:
            raise ValueError("dispatch_timeout must be non-negative (0 disables)")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; valid choices: "
                + ", ".join(repr(t) for t in TRANSPORTS)
            )
        if arena_slots < 1:
            raise ValueError("arena_slots must be positive")

        # Resolve the (possibly store-layout) artifact path once: workers
        # spawn from the concrete generation directory, while self.path keeps
        # the caller's root so swap() can re-resolve CURRENT later.
        resolved = resolve_artifact(path)
        self.path = Path(path)
        self._artifact_dir = resolved.path
        self.generation = resolved.generation
        manifest = read_manifest(self._artifact_dir)
        self.method = method
        self.workers = int(workers)
        self.batch_size = int(batch_size)
        self.warm = bool(warm)
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.request_timeout = float(request_timeout)
        self.transport = transport
        self.arena_slots = int(arena_slots)
        self.restart_workers = bool(restart_workers)
        self.restart_backoff = float(restart_backoff)
        self.restart_backoff_max = float(restart_backoff_max)
        self.supervise_interval = float(supervise_interval)
        self.worker_wait = float(worker_wait)
        self.dispatch_timeout = float(dispatch_timeout)
        self.startup_timeout = float(startup_timeout)
        self.input_shape = tuple(int(d) for d in manifest["input_shape"])
        self.num_classes = int(manifest["num_classes"])
        self.num_members = len(manifest["members"])
        self.approach = manifest["approach"]
        self._has_super_learner = manifest.get("super_learner_weights") is not None
        resolve_combination_method(
            method, has_super_learner=self._has_super_learner
        )

        self._feature_size = prod(self.input_shape)
        self._ctx = mp.get_context("spawn")
        self._request_queues = []
        self._result_queues = []
        self._processes: List[mp.Process] = []
        self._arenas: List[Optional[ShmArena]] = [None] * self.workers
        self._arena_generation = [0] * self.workers
        self._closed = False
        self._lock = threading.Lock()
        self._futures: Dict[int, Future] = {}
        # request_id -> worker_id for dispatched-but-unanswered requests, so
        # a worker death fails exactly its in-flight futures (promptly,
        # instead of letting clients run into the full request timeout);
        # request_id -> dispatch time feeds the hung-worker deadline.
        self._inflight: Dict[int, int] = {}
        self._inflight_since: Dict[int, float] = {}
        # Worker lifecycle state.  _ready holds the ids whose predictor is
        # loaded (guarded by _lock, written by the collector/supervisor);
        # _down maps a dead worker to the monotonic time its respawn is due
        # (None = respawn disabled) and _attempts counts consecutive failed
        # starts since the worker last reached "ready" (drives the backoff).
        # Both are touched only by the supervisor thread (and close()).
        self._ready: set = set()
        self._down: Dict[int, Optional[float]] = {}
        self._attempts: Dict[int, int] = {i: 0 for i in range(self.workers)}
        self._restarts_total = 0
        # Hot-swap state.  _swapping (guarded by _lock) marks workers whose
        # lifecycle the rolling swap temporarily owns — the supervisor must
        # not race it with its own respawn; _lifecycle_lock serialises the
        # swap's process replacement against _check_workers wholesale; the
        # non-reentrant _swap_lock admits one swap at a time.
        self._swapping: set = set()
        self._lifecycle_lock = threading.Lock()
        self._swap_lock = threading.Lock()
        self._swaps_total = 0
        self._request_ids = itertools.count()
        for worker_id in range(self.workers):
            self._request_queues.append(self._ctx.Queue())
            self._result_queues.append(self._ctx.Queue())
            if self.transport == "shm":
                self._arenas[worker_id] = self._new_arena(worker_id)
            self._processes.append(self._spawn_worker(worker_id))
        _WORKERS_CONFIGURED.set(self.workers)

        # Wait until every worker has its predictor loaded (warm pool).
        deadline = time.monotonic() + float(startup_timeout)
        try:
            while len(self._ready) < self.workers:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeError("serving workers failed to start in time")
                for kind, worker_id, info in self._poll_results(timeout=remaining):
                    if kind == "ready":
                        self._ready.add(worker_id)
                    elif kind == "fatal":
                        raise RuntimeError(
                            f"serving worker {worker_id} failed to load: {info}"
                        )
        except BaseException:
            self._shutdown_processes()
            self._retire_arenas()
            raise
        _WORKERS_ALIVE.set(len(self._ready))

        self._pending: "thread_queue.Queue" = thread_queue.Queue()
        self._stop_supervisor = threading.Event()
        self._stop_collector = threading.Event()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-serve-collect", daemon=True
        )
        self._supervisor = threading.Thread(
            target=self._supervise_loop, name="repro-serve-supervise", daemon=True
        )
        self._dispatcher.start()
        self._collector.start()
        self._supervisor.start()
        atexit.register(self.close)
        logger.info(
            "serving %s ensemble (%d members) from %s with %d workers",
            self.approach,
            self.num_members,
            path,
            self.workers,
        )

    # ------------------------------------------------------------ factories
    @classmethod
    def load(cls, path: Union[str, Path], **kwargs) -> "PoolPredictor":
        """Mirror of ``EnsemblePredictor.load`` for the pooled server."""
        return cls(path, **kwargs)

    def _new_arena(self, worker_id: int) -> ShmArena:
        return ShmArena(
            worker_id,
            max_batch=self.max_batch,
            feature_size=self._feature_size,
            num_classes=self.num_classes,
            slots=self.arena_slots,
            generation=self._arena_generation[worker_id],
        )

    def _retire_arenas(self) -> None:
        for worker_id, arena in enumerate(self._arenas):
            if arena is not None:
                arena.retire()
            self._arenas[worker_id] = None

    def _spawn_worker(self, worker_id: int) -> mp.Process:
        """Start the worker process for ``worker_id`` on that worker's
        *current* private queues and arena (respawns install fresh ones
        first — see :meth:`_respawn_worker`)."""
        arena = self._arenas[worker_id]
        process = self._ctx.Process(
            target=_serving_worker_main,
            args=(
                worker_id,
                str(self._artifact_dir),
                self.method,
                self.batch_size,
                self.warm,
                arena.meta if arena is not None else None,
                self._request_queues[worker_id],
                self._result_queues[worker_id],
            ),
            daemon=True,
            name=f"repro-serve-{worker_id}",
        )
        process.start()
        return process

    def _poll_results(self, timeout: float) -> List[tuple]:
        """Drain whatever messages the per-worker result queues hold.

        Multiplexes over every queue's reader pipe with
        ``multiprocessing.connection.wait``; returns (possibly empty) list of
        ``(kind, worker_id, payload)`` messages.  Queues swapped out by a
        concurrent respawn surface as closed readers and are skipped — the
        next call picks up their replacements.
        """
        snapshot = {queue._reader: queue for queue in list(self._result_queues)}
        try:
            readable = _mp_wait(list(snapshot), timeout=timeout)
        except OSError:  # pragma: no cover - reader closed mid-wait (respawn)
            return []
        messages: List[tuple] = []
        for reader in readable:
            queue = snapshot[reader]
            while True:
                try:
                    messages.append(queue.get_nowait())
                except thread_queue.Empty:
                    break
                except (OSError, ValueError, EOFError):  # pragma: no cover
                    break  # queue closed/poisoned; successor takes over
        return messages

    # ------------------------------------------------------- internal loops
    def _dispatch_loop(self) -> None:
        rr = itertools.cycle(range(self.workers))
        stop = False
        while not stop:
            item = self._pending.get()
            if item is None:
                break
            group: List[_Request] = [item]
            rows = item.rows
            deadline = time.monotonic() + self.max_wait_ms / 1000.0
            # Micro-batch: coalesce whatever arrives within the wait window,
            # up to max_batch total rows.
            while rows < self.max_batch:
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    break
                try:
                    extra = self._pending.get(timeout=timeout)
                except thread_queue.Empty:
                    break
                if extra is None:
                    stop = True
                    break
                group.append(extra)
                rows += extra.rows
            if self._dispatch_group(rr, group) and _metrics.enabled:
                _DISPATCHES.inc()
                _DISPATCH_ROWS.observe(rows)
            # Drop the request references before blocking on the next get():
            # each _Request pins its input tensor and (through its future)
            # the eventual result view — holding them across the idle wait
            # would keep arena result regions reserved long after the client
            # dropped its copy.  `item`/`extra` matter as much as `group`:
            # a local survives past its loop.
            item = extra = None
            del group

    def _dispatch_group(self, rr, group: List[_Request]) -> bool:
        """Hand one micro-batch to a ready worker; ``False`` if the group
        was failed instead.

        The in-flight registration double-checks the chosen worker is still
        in ``_ready`` under the pool lock before anything lands on its
        queue.  A rolling swap removes a worker from ``_ready`` under the
        same lock and only drains/stops it once no in-flight request maps to
        it — so a dispatch either commits *before* the drain check (the old
        worker answers it on the old generation) or re-targets another
        worker.  Without the recheck, a dispatch could slip onto a worker's
        queue after the swap observed it idle and sent the stop sentinel,
        stranding the requests until the client timeout.
        """
        while True:
            worker_id = self._pick_worker(rr, group)
            if worker_id is None:
                return False
            item = self._build_dispatch(worker_id, group)
            dispatched = time.monotonic()
            with self._lock:
                claimed = worker_id in self._ready
                if claimed:
                    for request in group:
                        self._inflight[request.request_id] = worker_id
                        self._inflight_since[request.request_id] = dispatched
            if not claimed:
                self._abort_dispatch(worker_id, item)
                continue
            self._request_queues[worker_id].put(item)
            return True

    def _abort_dispatch(self, worker_id: int, item: tuple) -> None:
        """Release arena regions reserved for a dispatch that never shipped
        (its worker left the ready set between pick and claim)."""
        if item[0] != "shm":
            return
        generation, request_region, entries = item[1]
        arena = self._arenas[worker_id]
        if arena is None or arena.generation != generation:
            return  # the arena was already retired wholesale
        for entry in entries:
            arena.free_result(entry[5])
        arena.free_request(request_region)

    # ------------------------------------------------------------ transports
    def _build_dispatch(self, worker_id: int, group: List[_Request]) -> tuple:
        """Encode a micro-batch for ``worker_id``'s queue.

        On the shm transport the rows are written into the worker's arena and
        the queue item is a fixed-size descriptor; when the arena cannot hold
        the dispatch (ring momentarily full, or a request bigger than the
        whole arena) the dispatch degrades to the pickle encoding — the
        worker accepts either, so no request is ever refused for size.
        """
        if self.transport == "shm":
            item = self._build_shm_dispatch(worker_id, group)
            if item is not None:
                return item
        with _TRANSPORT_PHASE.labels("pickle", "request_serialize").time():
            payload = [
                (request.request_id, request.x, request.method) for request in group
            ]
        if _metrics.enabled:
            _TRANSPORT_BYTES.labels("pickle", "request").inc(
                sum(request.x.nbytes for request in group)
                + _PICKLE_OVERHEAD * len(group)
            )
        return ("pickle", payload)

    def _build_shm_dispatch(
        self, worker_id: int, group: List[_Request]
    ) -> Optional[tuple]:
        """Reserve arena regions and copy the rows in; ``None`` on any
        capacity miss (the caller falls back to pickle)."""
        arena = self._arenas[worker_id]
        if arena is None:  # pragma: no cover - shm transport always has one
            return None
        request_region = arena.alloc_request(
            sum(_align(request.x.nbytes) for request in group)
        )
        if request_region is None:
            _TRANSPORT_FALLBACKS.labels("request_ring_full").inc()
            return None
        entries: List[tuple] = []
        result_offsets: List[int] = []
        cursor = request_region
        for request in group:
            result_capacity = _align(request.rows * self.num_classes * RESULT_ITEMSIZE)
            result_offset = arena.alloc_result(result_capacity)
            if result_offset is None:
                for offset in result_offsets:
                    arena.free_result(offset)
                arena.free_request(request_region)
                _TRANSPORT_FALLBACKS.labels("result_ring_full").inc()
                return None
            result_offsets.append(result_offset)
            entries.append(
                (
                    request.request_id,
                    cursor,
                    tuple(request.x.shape),
                    str(request.x.dtype),
                    request.method,
                    result_offset,
                    result_capacity,
                )
            )
            cursor += _align(request.x.nbytes)
        with _TRANSPORT_PHASE.labels("shm", "request_copy").time():
            for request, entry in zip(group, entries):
                arena.write_request(entry[1], request.x)
        item = ("shm", (arena.generation, request_region, entries))
        if _metrics.enabled:
            _TRANSPORT_BYTES.labels("shm", "request").inc(_descriptor_nbytes(item))
        return item

    def _is_serving(self, worker_id: int) -> bool:
        with self._lock:
            if worker_id not in self._ready:
                return False
        return self._processes[worker_id].is_alive()

    def _pick_worker(self, rr, group: List[_Request]) -> Optional[int]:
        """Round-robin over ready workers; with respawn enabled, wait up to
        ``worker_wait`` for capacity to come back before failing the group."""
        deadline = time.monotonic() + self.worker_wait
        while True:
            for _ in range(self.workers):
                worker_id = next(rr)
                if self._is_serving(worker_id):
                    return worker_id
            if self._closed or not self.restart_workers or time.monotonic() >= deadline:
                break
            time.sleep(0.05)
        error = RuntimeError("no serving workers alive")
        for request in group:
            self._resolve(request.request_id, exception=error)
        return None

    def _collect_loop(self) -> None:
        while not self._stop_collector.is_set():
            for kind, worker_id, payload in self._poll_results(timeout=0.2):
                if kind == "result":
                    if payload[0] == "shm":
                        self._collect_shm_result(worker_id, payload)
                    else:
                        replies = payload[1]
                        if _metrics.enabled:
                            _TRANSPORT_BYTES.labels("pickle", "response").inc(
                                sum(
                                    proba.nbytes
                                    for _, proba, _ in replies
                                    if proba is not None
                                )
                                + _PICKLE_OVERHEAD * len(replies)
                            )
                        for request_id, proba, error in replies:
                            if error is not None:
                                self._resolve(request_id, exception=RuntimeError(error))
                            else:
                                self._resolve(request_id, result=proba)
                elif kind == "ready":
                    # A respawned worker finished loading its predictor.
                    with self._lock:
                        self._ready.add(worker_id)
                        self._attempts[worker_id] = 0
                    _WORKERS_ALIVE.set(self.alive_workers())
                    log_event("serve.worker_ready", worker=worker_id)
                    logger.info("serving worker %d is ready", worker_id)
                elif kind == "fatal":
                    # The worker failed to load and exited; the supervisor
                    # will notice the dead process and schedule the next
                    # attempt.
                    logger.error(
                        "serving worker %d failed to load: %s", worker_id, payload
                    )
                    log_event(
                        "serve.worker_load_failed", worker=worker_id, error=str(payload)
                    )

    def _collect_shm_result(self, worker_id: int, payload: tuple) -> None:
        """Resolve one shm-transport reply: hand out zero-copy result views,
        release the dispatch's request region.

        Replies from a *retired* arena generation (a worker that answered
        after its death was already handled and its arena swapped) are
        resolved for any still-waiting future but never touch the successor
        arena's book-keeping — stale offsets must not free live regions.
        """
        _, generation, request_region, replies = payload
        arena = self._arenas[worker_id]
        live = arena is not None and arena.generation == generation
        if live:
            arena.free_request(request_region)
        if _metrics.enabled:
            _TRANSPORT_BYTES.labels("shm", "response").inc(
                _descriptor_nbytes(payload)
            )
        for request_id, result_offset, shape, dtype, inline, error in replies:
            if error is not None:
                if live:
                    arena.free_result(result_offset)
                self._resolve(request_id, exception=RuntimeError(error))
            elif inline is not None:  # reservation overflow: came via queue
                if live:
                    arena.free_result(result_offset)
                self._resolve(request_id, result=inline)
            elif live:
                try:
                    with _TRANSPORT_PHASE.labels("shm", "response_view").time():
                        view = arena.take_result_view(result_offset, shape, dtype)
                except Exception as exc:
                    # The arena was retired between the liveness check and the
                    # view (a concurrent respawn); the collector must outlive
                    # any such race, and this future's client gets the same
                    # worker-died story the death handler tells.
                    self._resolve(
                        request_id,
                        exception=RuntimeError(
                            f"serving worker {worker_id} arena retired mid-reply: {exc}"
                        ),
                    )
                else:
                    self._resolve(request_id, result=view)
            # else: stale generation — the death handler already failed the
            # future; the retired arena is reclaimed wholesale.

    # ------------------------------------------------------------ supervisor
    def _supervise_loop(self) -> None:
        while not self._stop_supervisor.wait(self.supervise_interval):
            try:
                self._check_workers()
            except Exception:  # pragma: no cover - supervisor must survive
                logger.exception("pool supervisor check failed")

    def _check_workers(self) -> None:
        # Serialised against a rolling swap's process-replacement phase: both
        # paths mutate _processes/_down/queues/arenas for a worker, and the
        # swap additionally owns the workers it marked in _swapping.
        with self._lifecycle_lock:
            self._check_workers_locked()

    def _check_workers_locked(self) -> None:
        now = time.monotonic()
        self._kill_wedged_workers(now)
        with self._lock:
            swapping = set(self._swapping)
        for worker_id, process in enumerate(self._processes):
            if worker_id in swapping:
                continue  # the swap owns this worker's lifecycle right now
            if process.is_alive():
                continue
            if worker_id not in self._down:
                self._on_worker_death(worker_id, process)
            else:
                restart_at = self._down[worker_id]
                if (
                    restart_at is None
                    or self._closed
                    or not self.restart_workers
                    or now < restart_at
                ):
                    continue
                self._respawn_worker(worker_id)
        _WORKERS_ALIVE.set(self.alive_workers())

    def _kill_wedged_workers(self, now: float) -> None:
        """SIGKILL workers holding a dispatch past ``dispatch_timeout``.

        A wedged worker (hung in a syscall, looping, SIGSTOPped) still has a
        live process, so the death path alone never notices it and its
        clients would burn the whole request timeout.  Killing it converts
        the hang into an ordinary death, which the loop right after this
        call handles: in-flight requests fail promptly and the worker is
        respawned under the usual backoff.
        """
        if self.dispatch_timeout <= 0:
            return
        with self._lock:
            wedged = {
                owner
                for request_id, owner in self._inflight.items()
                if now - self._inflight_since.get(request_id, now) > self.dispatch_timeout
            }
        for worker_id in wedged:
            process = self._processes[worker_id]
            if worker_id in self._down or not process.is_alive():
                continue
            _WORKER_HANGS.inc()
            logger.error(
                "serving worker %d exceeded the %.0fs dispatch deadline; killing it",
                worker_id,
                self.dispatch_timeout,
            )
            log_event(
                "serve.worker_hung",
                worker=worker_id,
                dispatch_timeout_seconds=self.dispatch_timeout,
            )
            process.kill()
            process.join(timeout=10)

    def _on_worker_death(self, worker_id: int, process: mp.Process) -> None:
        """Evict a dead worker: fail its in-flight requests, schedule respawn."""
        with self._lock:
            self._ready.discard(worker_id)
            attempts = self._attempts[worker_id]
            self._attempts[worker_id] = attempts + 1
            orphaned = [
                request_id
                for request_id, owner in self._inflight.items()
                if owner == worker_id
            ]
        backoff = min(self.restart_backoff * (2 ** attempts), self.restart_backoff_max)
        restart = self.restart_workers and not self._closed
        self._down[worker_id] = (time.monotonic() + backoff) if restart else None
        _WORKER_DEATHS.inc()
        logger.error(
            "serving worker %d died (exit code %s); failing %d in-flight requests%s",
            worker_id,
            process.exitcode,
            len(orphaned),
            f", respawning in {backoff:.1f}s" if restart else "",
        )
        log_event(
            "serve.worker_died",
            worker=worker_id,
            exitcode=process.exitcode,
            inflight_failed=len(orphaned),
            restart_in_seconds=backoff if restart else None,
        )
        error = RuntimeError(f"serving worker {worker_id} died")
        for request_id in orphaned:
            self._resolve(request_id, exception=error)

    def _install_fresh_ipc(self, worker_id: int) -> None:
        """Replace a worker's queues and arena before (re)spawning it.

        A SIGKILL can land while the worker holds one of its queue locks
        (it spends its life blocked in request_queue.get(), and replies
        under the result queue's write lock), leaving that lock acquired
        forever.  The successor therefore gets *fresh* queues rather than
        inheriting potentially poisoned ones; undelivered payloads on the
        old queues belong to futures that were already failed at death.
        The arena is replaced wholesale for the same reason: a SIGKILL
        mid-slot-write leaves regions reserved for descriptors that will
        never arrive.  The old generation's name is unlinked now (no
        /dev/shm leak); its mapping survives only as long as clients hold
        result views into it.  Shared with the rolling swap, which rolls a
        worker through the same replacement path a death would.
        """
        old_queues = (self._request_queues[worker_id], self._result_queues[worker_id])
        self._request_queues[worker_id] = self._ctx.Queue()
        self._result_queues[worker_id] = self._ctx.Queue()
        if self.transport == "shm":
            old_arena = self._arenas[worker_id]
            self._arena_generation[worker_id] += 1
            self._arenas[worker_id] = self._new_arena(worker_id)
            if old_arena is not None:
                old_arena.retire()
        for old_queue in old_queues:
            try:
                old_queue.close()
            except Exception:  # pragma: no cover - feeder already gone
                pass

    def _respawn_worker(self, worker_id: int) -> None:
        self._install_fresh_ipc(worker_id)
        self._processes[worker_id] = self._spawn_worker(worker_id)
        del self._down[worker_id]
        self._restarts_total += 1
        _WORKER_RESTARTS.inc()
        with self._lock:
            attempt = self._attempts[worker_id]
        logger.info("respawned serving worker %d (attempt %d)", worker_id, attempt)
        log_event("serve.worker_respawned", worker=worker_id, attempt=attempt)

    # -------------------------------------------------------------- hot swap
    def swap(
        self, generation: Optional[int] = None, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Roll every worker onto a new artifact generation, zero-downtime.

        Re-resolves the path the pool was constructed with — for a store
        root that picks up whatever ``CURRENT`` now points at, or the
        explicitly requested ``generation``.  Workers are rolled one at a
        time through the same fresh-IPC replacement path the supervisor uses
        for crashed workers: each is removed from dispatch, drained of its
        in-flight requests (they complete on the old generation), stopped
        gracefully, and respawned from the new generation directory; the
        next worker only rolls once its predecessor's successor is warm, so
        the pool never drops below ``workers - 1`` ready workers.  Every
        response therefore comes entirely from one generation — never a mix.

        Raises ``RuntimeError`` if another swap is already in progress, and
        refuses generations whose input shape or class count differ from the
        serving pool's (the shared-memory arenas are sized for them).
        """
        if self._closed:
            raise RuntimeError("PoolPredictor is closed")
        if not self._swap_lock.acquire(blocking=False):
            raise RuntimeError("swap already in progress")
        try:
            return self._swap_locked(generation, timeout)
        finally:
            self._swap_lock.release()

    def _swap_locked(
        self, generation: Optional[int], timeout: Optional[float]
    ) -> Dict[str, Any]:
        from repro.api.artifacts import read_manifest

        resolved = resolve_artifact(self.path, generation=generation)
        manifest = read_manifest(resolved.path)
        new_shape = tuple(int(d) for d in manifest["input_shape"])
        new_classes = int(manifest["num_classes"])
        if new_shape != self.input_shape or new_classes != self.num_classes:
            raise ValueError(
                f"cannot hot-swap to generation {resolved.generation}: its "
                f"input_shape={new_shape} / num_classes={new_classes} differ "
                f"from the pool's {self.input_shape} / {self.num_classes} "
                "(the shared-memory arenas are sized for the serving shapes)"
            )
        previous_generation = self.generation
        if resolved.path == self._artifact_dir:
            # CURRENT did not move (or the pool serves a bare directory):
            # nothing to roll, and the call stays idempotent.
            return {
                "status": "noop",
                "generation": self.generation,
                "previous_generation": previous_generation,
                "workers_respawned": 0,
                "swap_seconds": 0.0,
            }
        start = time.monotonic()
        deadline = start + (
            timeout if timeout is not None else self.startup_timeout * self.workers
        )
        log_event(
            "swap.started",
            artifact=str(self.path),
            from_generation=previous_generation,
            to_generation=resolved.generation,
        )
        # Point every spawn path at the new generation *before* rolling: a
        # supervisor respawn racing the swap (for a worker that crashed on
        # its own) then also lands on the new artifact.
        self._artifact_dir = resolved.path
        self.generation = resolved.generation
        self.num_members = len(manifest["members"])
        self.approach = manifest["approach"]
        self._has_super_learner = manifest.get("super_learner_weights") is not None
        rolled = 0
        try:
            for worker_id in range(self.workers):
                self._roll_worker(worker_id, deadline)
                rolled += 1
                _SWAP_WORKERS.inc()
                log_event(
                    "swap.worker_rolled",
                    worker=worker_id,
                    generation=self.generation,
                )
        except BaseException as exc:
            _SWAPS.labels("error").inc()
            log_event(
                "swap.failed",
                from_generation=previous_generation,
                to_generation=self.generation,
                workers_rolled=rolled,
                error=str(exc),
            )
            raise
        elapsed = time.monotonic() - start
        self._swaps_total += 1
        _SWAPS.labels("ok").inc()
        _SWAP_SECONDS.observe(elapsed)
        ARTIFACT_GENERATION.set(self.generation)
        log_event(
            "swap.completed",
            from_generation=previous_generation,
            to_generation=self.generation,
            workers=rolled,
            seconds=elapsed,
        )
        logger.info(
            "hot-swapped %s: generation %d -> %d (%d workers rolled in %.2fs)",
            self.path,
            previous_generation,
            self.generation,
            rolled,
            elapsed,
        )
        return {
            "status": "ok",
            "generation": self.generation,
            "previous_generation": previous_generation,
            "workers_respawned": rolled,
            "swap_seconds": elapsed,
        }

    def _roll_worker(self, worker_id: int, deadline: float) -> None:
        """Drain one worker and respawn it from ``self._artifact_dir``.

        Marking the worker in ``_swapping`` hands its lifecycle to the swap
        (the supervisor skips it); removing it from ``_ready`` under the
        pool lock, combined with the dispatcher's claim-recheck, guarantees
        no new dispatch lands on its queue after the drain check — see
        :meth:`_dispatch_group`.
        """
        with self._lock:
            self._swapping.add(worker_id)
            self._ready.discard(worker_id)
        try:
            # Drain: every in-flight request this worker owns was claimed
            # before the _ready removal above, so the (still running) worker
            # will answer it on the old generation.
            while True:
                with self._lock:
                    busy = any(
                        owner == worker_id for owner in self._inflight.values()
                    )
                if not busy:
                    break
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"timed out draining worker {worker_id} during swap"
                    )
                time.sleep(0.005)
            process = self._processes[worker_id]
            with self._lifecycle_lock:
                if worker_id in self._down:
                    # Crashed earlier and awaiting the supervisor's backoff;
                    # the roll takes over the replacement right now.
                    del self._down[worker_id]
                elif process.is_alive():
                    try:
                        self._request_queues[worker_id].put(None)
                    except Exception:  # pragma: no cover - queue poisoned
                        pass
                    process.join(timeout=30)
                    if process.is_alive():  # pragma: no cover - stuck worker
                        process.kill()
                        process.join(timeout=10)
                self._install_fresh_ipc(worker_id)
                self._processes[worker_id] = self._spawn_worker(worker_id)
            # Wait until the successor reports ready (the collector adds it
            # to _ready) before rolling the next worker: capacity never
            # drops below workers - 1.
            while True:
                with self._lock:
                    if worker_id in self._ready:
                        break
                if not self._processes[worker_id].is_alive():
                    raise RuntimeError(
                        f"worker {worker_id} failed to load generation "
                        f"{self.generation} during swap"
                    )
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"timed out waiting for worker {worker_id} to warm "
                        f"generation {self.generation} during swap"
                    )
                time.sleep(0.01)
        finally:
            with self._lock:
                self._swapping.discard(worker_id)

    def _resolve(self, request_id: int, result=None, exception=None) -> None:
        with self._lock:
            future = self._futures.pop(request_id, None)
            self._inflight.pop(request_id, None)
            self._inflight_since.pop(request_id, None)
        if future is None:  # pragma: no cover - duplicate/late reply
            return
        if exception is not None:
            future.set_exception(exception)
        else:
            future.set_result(result)

    # --------------------------------------------------------------- client
    def _resolve_method(self, method: Optional[str]) -> str:
        return resolve_combination_method(
            method, default=self.method, has_super_learner=self._has_super_learner
        )

    def predict_proba(
        self,
        x: np.ndarray,
        method: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Combined class probabilities, shape ``(samples, classes)``.

        Bitwise identical to ``EnsemblePredictor.predict_proba`` on the same
        input.  Safe to call from many threads at once.
        """
        start = time.perf_counter()
        try:
            if self._closed:
                raise RuntimeError("PoolPredictor is closed")
            from repro.api.predictor import validate_batch

            x = validate_batch(x, self.input_shape)
            resolved = self._resolve_method(method)
            request = _Request(next(self._request_ids), x, resolved)
            with self._lock:
                self._futures[request.request_id] = request.future
            self._pending.put(request)
            result = request.future.result(timeout=timeout or self.request_timeout)
        except BaseException:
            _REQUESTS_ERROR.inc()
            raise
        if _metrics.enabled:
            _REQUESTS_OK.inc()
            _REQUEST_ROWS.observe(x.shape[0])
            _REQUEST_LATENCY.observe(time.perf_counter() - start)
        return result

    def predict(
        self,
        x: np.ndarray,
        method: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Predicted class labels, shape ``(samples,)``."""
        return self.predict_proba(x, method=method, timeout=timeout).argmax(axis=1)

    # ------------------------------------------------------------ lifecycle
    def alive_workers(self) -> int:
        """Workers that are loaded *and* whose process is alive right now."""
        with self._lock:
            ready = list(self._ready)
        return sum(1 for worker_id in ready if self._processes[worker_id].is_alive())

    def healthz(self) -> Dict[str, Any]:
        """Health summary for the ``/healthz`` endpoint.

        ``status`` is ``ok`` at full capacity, ``degraded`` while some (but
        not all) workers are down — e.g. during the death-to-respawn-to-warm
        gap — and ``down`` when no worker can answer.
        """
        alive = self.alive_workers()
        if alive == self.workers:
            status = "ok"
        elif alive > 0:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "alive_workers": alive,
            "workers": self.workers,
            "generation": self.generation,
            "restarts": self._restarts_total,
            "restart_workers": self.restart_workers,
        }

    def info(self) -> Dict[str, Any]:
        """JSON-friendly description of the pool (CLI ``serve`` /info)."""
        arenas = [
            arena.stats() if arena is not None else None for arena in self._arenas
        ]
        return {
            "artifact": str(self.path),
            "approach": self.approach,
            "generation": self.generation,
            "swaps": self._swaps_total,
            "workers": self.workers,
            "alive_workers": self.alive_workers(),
            "worker_pids": [process.pid for process in self._processes],
            "restarts": self._restarts_total,
            "restart_workers": self.restart_workers,
            "num_members": self.num_members,
            "num_classes": self.num_classes,
            "input_shape": list(self.input_shape),
            "method": self.method,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "super_learner": self._has_super_learner,
            "transport": self.transport,
            "arena_slots": self.arena_slots if self.transport == "shm" else None,
            "arena_bytes_per_worker": (
                self._arenas[0].total_bytes
                if self.transport == "shm" and self._arenas[0] is not None
                else None
            ),
            "arenas": arenas,
            "request_latency_seconds": _latency_quantiles(_REQUEST_LATENCY),
        }

    def _shutdown_processes(self) -> None:
        for request_queue in self._request_queues:
            try:
                request_queue.put(None)
            except Exception:  # pragma: no cover
                pass
        for process in self._processes:
            process.join(timeout=10)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5)
        for request_queue in self._request_queues:
            request_queue.close()
            request_queue.join_thread()

    def close(self) -> None:
        """Stop the supervisor and dispatcher, drain the workers, fail
        pending requests.

        Idempotent; after it returns no child process of the pool is alive.
        """
        if self._closed:
            return
        self._closed = True
        self._stop_supervisor.set()
        self._supervisor.join(timeout=10)
        self._pending.put(None)
        self._dispatcher.join(timeout=10)
        self._shutdown_processes()
        self._stop_collector.set()
        self._collector.join(timeout=10)
        for result_queue in self._result_queues:
            result_queue.close()
            result_queue.join_thread()
        with self._lock:
            leftovers = list(self._futures.values())
            self._futures.clear()
            self._inflight.clear()
            self._inflight_since.clear()
        for future in leftovers:
            if not future.done():
                future.set_exception(RuntimeError("PoolPredictor closed"))
        self._retire_arenas()
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover
            pass
        log_event("serve.pool_closed", artifact=str(self.path))
        logger.info("serving pool for %s shut down", self.path)

    def __enter__(self) -> "PoolPredictor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PoolPredictor(artifact={str(self.path)!r}, workers={self.workers}, "
            f"method={self.method!r})"
        )

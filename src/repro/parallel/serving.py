"""Multi-worker serving pool on top of the ensemble artifact format.

:class:`PoolPredictor` closes the ROADMAP "multi-process serving" item: N
worker processes each warm-load one :class:`~repro.api.predictor.EnsemblePredictor`
from the *same* artifact directory, and a dispatcher coalesces incoming
requests into micro-batches (up to ``max_batch`` rows or ``max_wait_ms``)
that are handed to the workers round-robin.  Client calls are thread-safe:
any number of application threads can call :meth:`predict` /
:meth:`predict_proba` concurrently; each call blocks only on its own future.

Micro-batching semantics: coalescing groups *requests* into one IPC dispatch
(amortising queue/pickle overhead); inside the worker each request still runs
through ``EnsemblePredictor.predict_proba`` with its own rows and the
configured ``batch_size``, so every answer is **bitwise identical** to what a
single-process ``EnsemblePredictor`` would return for the same call.
"""

from __future__ import annotations

import atexit
import itertools
import queue as thread_queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import multiprocessing as mp

import numpy as np

from repro.core.ensemble import COMBINATION_METHODS
from repro.utils.logging import get_logger

logger = get_logger("parallel.serving")

_STOP = ("__stop__", -1, None)  # collector-thread shutdown message


def _serving_worker(
    worker_id: int,
    artifact: str,
    method: str,
    batch_size: int,
    warm: bool,
    request_queue,
    result_queue,
) -> None:
    """Worker main loop: load the artifact once, answer request groups."""
    try:
        from repro.api.predictor import EnsemblePredictor

        predictor = EnsemblePredictor.load(
            artifact, method=method, batch_size=batch_size, warm=warm
        )
        result_queue.put(("ready", worker_id, None))
    except BaseException as exc:  # pragma: no cover - startup failure path
        result_queue.put(("fatal", worker_id, f"{type(exc).__name__}: {exc}"))
        return
    while True:
        group = request_queue.get()
        if group is None:
            break
        replies = []
        for request_id, x, method_override in group:
            try:
                proba = predictor.predict_proba(x, method=method_override)
                replies.append((request_id, proba, None))
            except Exception as exc:
                replies.append((request_id, None, f"{type(exc).__name__}: {exc}"))
        result_queue.put(("result", worker_id, replies))


@dataclass
class _Request:
    request_id: int
    x: np.ndarray
    method: str
    future: Future = field(default_factory=Future)

    @property
    def rows(self) -> int:
        return int(self.x.shape[0])


class PoolPredictor:
    """Serve one saved ensemble artifact from a pool of worker processes.

    Construct directly or via :meth:`load` (mirrors
    ``EnsemblePredictor.load``).  Always ``close()`` the pool — or use it as a
    context manager — so worker processes and queues shut down promptly; an
    ``atexit`` hook covers forgotten pools.
    """

    def __init__(
        self,
        path: Union[str, Path],
        workers: int = 2,
        method: str = "average",
        batch_size: int = 256,
        max_batch: int = 1024,
        max_wait_ms: float = 2.0,
        warm: bool = True,
        request_timeout: float = 300.0,
        startup_timeout: float = 180.0,
    ):
        from repro.api.artifacts import read_manifest

        if workers < 1:
            raise ValueError("workers must be at least 1")
        if method not in COMBINATION_METHODS:
            raise ValueError(
                f"unknown combination method {method!r}; valid choices: "
                + ", ".join(repr(m) for m in COMBINATION_METHODS)
            )
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")

        manifest = read_manifest(path)
        self.path = Path(path)
        self.method = method
        self.workers = int(workers)
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.request_timeout = float(request_timeout)
        self.input_shape = tuple(int(d) for d in manifest["input_shape"])
        self.num_classes = int(manifest["num_classes"])
        self.num_members = len(manifest["members"])
        self.approach = manifest["approach"]
        self._has_super_learner = manifest.get("super_learner_weights") is not None
        if method == "super_learner" and not self._has_super_learner:
            raise RuntimeError(
                "this artifact has no fitted super-learner weights; pick "
                "method='average'/'vote'"
            )

        ctx = mp.get_context("spawn")
        self._result_queue = ctx.Queue()
        self._request_queues = []
        self._processes = []
        self._closed = False
        self._lock = threading.Lock()
        self._futures: Dict[int, Future] = {}
        # request_id -> worker_id for dispatched-but-unanswered requests, so
        # a worker death fails exactly its in-flight futures (promptly,
        # instead of letting clients run into the full request timeout).
        self._inflight: Dict[int, int] = {}
        self._dead_workers: set = set()
        self._request_ids = itertools.count()
        for worker_id in range(self.workers):
            request_queue = ctx.Queue()
            process = ctx.Process(
                target=_serving_worker,
                args=(
                    worker_id,
                    str(path),
                    method,
                    int(batch_size),
                    bool(warm),
                    request_queue,
                    self._result_queue,
                ),
                daemon=True,
                name=f"repro-serve-{worker_id}",
            )
            process.start()
            self._request_queues.append(request_queue)
            self._processes.append(process)

        # Wait until every worker has its predictor loaded (warm pool).
        ready = 0
        deadline = time.monotonic() + float(startup_timeout)
        try:
            while ready < self.workers:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeError("serving workers failed to start in time")
                kind, worker_id, info = self._result_queue.get(timeout=remaining)
                if kind == "ready":
                    ready += 1
                elif kind == "fatal":
                    raise RuntimeError(f"serving worker {worker_id} failed to load: {info}")
        except BaseException:
            self._shutdown_processes()
            raise

        self._pending: "thread_queue.Queue" = thread_queue.Queue()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-serve-collect", daemon=True
        )
        self._dispatcher.start()
        self._collector.start()
        atexit.register(self.close)
        logger.info(
            "serving %s ensemble (%d members) from %s with %d workers",
            self.approach,
            self.num_members,
            path,
            self.workers,
        )

    # ------------------------------------------------------------ factories
    @classmethod
    def load(cls, path: Union[str, Path], **kwargs) -> "PoolPredictor":
        """Mirror of ``EnsemblePredictor.load`` for the pooled server."""
        return cls(path, **kwargs)

    # ------------------------------------------------------- internal loops
    def _dispatch_loop(self) -> None:
        rr = itertools.cycle(range(self.workers))
        stop = False
        while not stop:
            item = self._pending.get()
            if item is None:
                break
            group: List[_Request] = [item]
            rows = item.rows
            deadline = time.monotonic() + self.max_wait_ms / 1000.0
            # Micro-batch: coalesce whatever arrives within the wait window,
            # up to max_batch total rows.
            while rows < self.max_batch:
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    break
                try:
                    extra = self._pending.get(timeout=timeout)
                except thread_queue.Empty:
                    break
                if extra is None:
                    stop = True
                    break
                group.append(extra)
                rows += extra.rows
            worker_id = self._pick_worker(rr, group)
            if worker_id is None:
                continue
            payload = [(request.request_id, request.x, request.method) for request in group]
            with self._lock:
                for request in group:
                    self._inflight[request.request_id] = worker_id
            self._request_queues[worker_id].put(payload)

    def _pick_worker(self, rr, group: List[_Request]) -> Optional[int]:
        """Round-robin over live workers; fail the group if none are left."""
        for _ in range(self.workers):
            worker_id = next(rr)
            if self._processes[worker_id].is_alive():
                return worker_id
        error = RuntimeError("no serving workers alive")
        for request in group:
            self._resolve(request.request_id, exception=error)
        return None

    def _collect_loop(self) -> None:
        while True:
            try:
                kind, worker_id, payload = self._result_queue.get(timeout=0.5)
            except thread_queue.Empty:
                # No replies: a quiet moment to notice workers that died with
                # requests in flight (a crashed process sends no message).
                self._reap_dead_workers()
                continue
            if kind == "__stop__":
                break
            if kind == "result":
                for request_id, proba, error in payload:
                    if error is not None:
                        self._resolve(request_id, exception=RuntimeError(error))
                    else:
                        self._resolve(request_id, result=proba)
            elif kind == "fatal":  # pragma: no cover - late worker death
                logger.error("serving worker %d died: %s", worker_id, payload)

    def _reap_dead_workers(self) -> None:
        """Fail the in-flight futures of any worker process that has died."""
        if self._closed:
            return
        for worker_id, process in enumerate(self._processes):
            if worker_id in self._dead_workers or process.is_alive():
                continue
            self._dead_workers.add(worker_id)
            with self._lock:
                orphaned = [
                    request_id
                    for request_id, owner in self._inflight.items()
                    if owner == worker_id
                ]
            logger.error(
                "serving worker %d died (exit code %s); failing %d in-flight requests",
                worker_id,
                process.exitcode,
                len(orphaned),
            )
            error = RuntimeError(f"serving worker {worker_id} died")
            for request_id in orphaned:
                self._resolve(request_id, exception=error)

    def _resolve(self, request_id: int, result=None, exception=None) -> None:
        with self._lock:
            future = self._futures.pop(request_id, None)
            self._inflight.pop(request_id, None)
        if future is None:  # pragma: no cover - duplicate/late reply
            return
        if exception is not None:
            future.set_exception(exception)
        else:
            future.set_result(result)

    # --------------------------------------------------------------- client
    def _resolve_method(self, method: Optional[str]) -> str:
        resolved = self.method if method is None else method
        if resolved not in COMBINATION_METHODS:
            raise ValueError(
                f"unknown combination method {resolved!r}; valid choices: "
                + ", ".join(repr(m) for m in COMBINATION_METHODS)
            )
        if resolved == "super_learner" and not self._has_super_learner:
            raise RuntimeError(
                "this artifact has no fitted super-learner weights; pick "
                "method='average'/'vote'"
            )
        return resolved

    def predict_proba(
        self,
        x: np.ndarray,
        method: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Combined class probabilities, shape ``(samples, classes)``.

        Bitwise identical to ``EnsemblePredictor.predict_proba`` on the same
        input.  Safe to call from many threads at once.
        """
        if self._closed:
            raise RuntimeError("PoolPredictor is closed")
        from repro.api.predictor import validate_batch

        x = validate_batch(x, self.input_shape)
        resolved = self._resolve_method(method)
        request = _Request(next(self._request_ids), x, resolved)
        with self._lock:
            self._futures[request.request_id] = request.future
        self._pending.put(request)
        return request.future.result(timeout=timeout or self.request_timeout)

    def predict(
        self,
        x: np.ndarray,
        method: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Predicted class labels, shape ``(samples,)``."""
        return self.predict_proba(x, method=method, timeout=timeout).argmax(axis=1)

    # ------------------------------------------------------------ lifecycle
    def info(self) -> Dict[str, Any]:
        """JSON-friendly description of the pool (CLI ``serve`` /info)."""
        return {
            "artifact": str(self.path),
            "approach": self.approach,
            "workers": self.workers,
            "alive_workers": sum(1 for p in self._processes if p.is_alive()),
            "num_members": self.num_members,
            "num_classes": self.num_classes,
            "input_shape": list(self.input_shape),
            "method": self.method,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "super_learner": self._has_super_learner,
        }

    def _shutdown_processes(self) -> None:
        for request_queue in self._request_queues:
            try:
                request_queue.put(None)
            except Exception:  # pragma: no cover
                pass
        for process in self._processes:
            process.join(timeout=10)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5)
        for request_queue in self._request_queues:
            request_queue.close()
            request_queue.join_thread()

    def close(self) -> None:
        """Stop the dispatcher, drain the workers, fail pending requests.

        Idempotent; after it returns no child process of the pool is alive.
        """
        if self._closed:
            return
        self._closed = True
        self._pending.put(None)
        self._dispatcher.join(timeout=10)
        self._shutdown_processes()
        self._result_queue.put(_STOP)
        self._collector.join(timeout=10)
        self._result_queue.close()
        self._result_queue.join_thread()
        with self._lock:
            leftovers = list(self._futures.values())
            self._futures.clear()
            self._inflight.clear()
        for future in leftovers:
            if not future.done():
                future.set_exception(RuntimeError("PoolPredictor closed"))
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover
            pass
        logger.info("serving pool for %s shut down", self.path)

    def __enter__(self) -> "PoolPredictor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PoolPredictor(artifact={str(self.path)!r}, workers={self.workers}, "
            f"method={self.method!r})"
        )

"""Process-based parallel execution layer for training and serving.

Two halves share the same ``spawn``-safe multiprocessing substrate:

* **Training** — :class:`ParallelExecutor` fans independent ensemble-member
  fits out over a persistent worker pool.  The training set is published once
  through POSIX shared memory (:class:`SharedDataset`; workers get zero-copy
  ``np.ndarray`` views), every worker's BLAS pool is capped before its numpy
  import (:func:`repro.utils.parallel.blas_thread_limit`), and outcomes carry
  both per-member seconds and the batch's critical-path makespan.  Enabled
  end to end by ``TrainingConfig(workers=N)``; ``workers=1`` keeps the exact
  pre-existing serial code path.
* **Serving** — :class:`PoolPredictor` answers concurrent predict requests
  from N worker processes that each warm-load one ``EnsemblePredictor`` from
  a shared artifact directory, with request micro-batching, round-robin
  dispatch, and a self-healing supervisor (dead workers are evicted and
  respawned under bounded backoff; each worker owns private crash-isolated
  queues).  Exposed over HTTP by ``python -m repro serve``
  (:func:`repro.parallel.server.run_server`), including Prometheus
  ``GET /metrics`` and a degrading ``GET /healthz``.  The request/response
  data plane is pluggable: ``transport="shm"`` (default) moves tensors
  through per-worker shared-memory arenas (:class:`ShmArena`) so the queues
  carry only fixed-size descriptors; ``transport="pickle"`` is the reference
  tensors-through-the-queues path.
"""

from repro.parallel.executor import ParallelExecutor, train_members
from repro.parallel.shared_data import AttachedDataset, SharedArrayMeta, SharedDataset
from repro.parallel.shm_transport import ArenaMeta, ShmArena
from repro.parallel.worker import MemberOutcome, MemberTask
from repro.parallel.serving import PoolPredictor

__all__ = [
    "ParallelExecutor",
    "train_members",
    "SharedDataset",
    "AttachedDataset",
    "SharedArrayMeta",
    "ArenaMeta",
    "ShmArena",
    "MemberTask",
    "MemberOutcome",
    "PoolPredictor",
]

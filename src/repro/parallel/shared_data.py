"""Zero-copy dataset publication across processes.

:class:`SharedDataset` copies a set of numpy arrays into POSIX shared memory
**once** (on the publishing side); every worker process then attaches the same
segments and builds plain ``np.ndarray`` views onto them — no per-worker copy
of the training set, no pickling of multi-hundred-megabyte tensors through
pipes.

Lifecycle (create / attach, with tracked cleanup)
-------------------------------------------------

* The **publisher** (the parent process) owns the segments: it creates them,
  hands the lightweight :class:`SharedArrayMeta` descriptors to workers, and
  is the only party allowed to ``unlink`` (destroy) them — after all workers
  have shut down.
* Every **attacher** (worker) holds a handle per segment and must ``close``
  its mapping on exit; :class:`AttachedDataset` registers an ``atexit`` hook
  so worker death cannot leak mappings.  Attachers deregister the segments
  from their ``multiprocessing.resource_tracker`` so a worker exiting early
  does not tear the segment out from under its siblings (the CPython tracker
  would otherwise unlink names it believes were leaked).

After ``SharedDataset.close()`` the segments are gone from ``/dev/shm`` — the
test suite asserts no residue survives a training run.
"""

from __future__ import annotations

import atexit
import os
import secrets
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Tuple

import numpy as np

from repro.utils.logging import get_logger

logger = get_logger("parallel.shared_data")

#: Prefix of every segment repro creates; tests sweep /dev/shm for leftovers.
SEGMENT_PREFIX = "repro-shm"


@dataclass(frozen=True)
class SharedArrayMeta:
    """Everything a worker needs to re-materialise a published array."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


@contextmanager
def _attach_without_tracking():
    """Suppress resource-tracker registration while *attaching* a segment.

    ``SharedMemory(name=...)`` registers the segment with the attaching
    process's resource tracker (until Python 3.13's ``track=False``), which
    is wrong for non-owners: a tracker that outlives its attacher "cleans
    up" by unlinking the name — destroying the publisher's segment — or, for
    spawn children sharing the publisher's tracker, produces spurious
    KeyError noise at shutdown.  Only the publisher's own creation-time
    registration should stand.
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - always available on CPython
        yield
        return
    original = resource_tracker.register

    def register(name, rtype):
        if rtype != "shared_memory":  # pragma: no cover - not hit in practice
            original(name, rtype)

    resource_tracker.register = register
    try:
        yield
    finally:
        resource_tracker.register = original


def create_segment(nbytes: int, tag: str) -> shared_memory.SharedMemory:
    """Create an owned raw segment under the repro naming convention.

    The caller is the publisher: it must eventually ``close()`` *and*
    ``unlink()`` the segment (the leak tests sweep ``/dev/shm`` for
    ``SEGMENT_PREFIX`` residue).  ``tag`` disambiguates segments created by
    the same process (e.g. per-worker serving arenas).
    """
    name = f"{SEGMENT_PREFIX}-{os.getpid()}-{tag}-{secrets.token_hex(4)}"
    return shared_memory.SharedMemory(create=True, size=max(1, int(nbytes)), name=name)


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without registering it for tracker cleanup.

    Mirrors the attach side of :class:`AttachedDataset`: the attacher must
    ``close()`` its mapping on exit but never ``unlink`` — the publisher owns
    the name.
    """
    with _attach_without_tracking():
        return shared_memory.SharedMemory(name=name)


class SharedDataset:
    """Publisher-side handle: arrays copied once into named shared memory."""

    def __init__(self, arrays: Dict[str, np.ndarray]):
        if not arrays:
            raise ValueError("SharedDataset needs at least one array")
        token = f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
        self._segments: List[shared_memory.SharedMemory] = []
        self._meta: Dict[str, SharedArrayMeta] = {}
        self._closed = False
        try:
            for key, value in arrays.items():
                array = np.ascontiguousarray(value)
                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes), name=f"{token}-{key}"
                )
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                view[...] = array
                self._segments.append(segment)
                self._meta[key] = SharedArrayMeta(
                    name=segment.name, shape=tuple(array.shape), dtype=str(array.dtype)
                )
        except Exception:
            self.close()
            raise
        self._atexit = self.close
        atexit.register(self._atexit)
        logger.debug("published %d shared arrays under %s-*", len(self._meta), token)

    @property
    def meta(self) -> Dict[str, SharedArrayMeta]:
        """Descriptors to ship to workers (tiny and picklable)."""
        return dict(self._meta)

    @property
    def total_bytes(self) -> int:
        return sum(segment.size for segment in self._segments)

    def view(self, key: str) -> np.ndarray:
        """Publisher-side view of a published array (shares the segment)."""
        meta = self._meta[key]
        segment = next(s for s in self._segments if s.name == meta.name)
        return np.ndarray(meta.shape, dtype=np.dtype(meta.dtype), buffer=segment.buf)

    def close(self) -> None:
        """Destroy the segments (close the mapping, then unlink the names).

        Idempotent.  Must only run after every attacher has closed — call it
        once the worker pool has shut down.
        """
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments = []
        if getattr(self, "_atexit", None) is not None:
            try:
                atexit.unregister(self._atexit)
            except Exception:  # pragma: no cover
                pass

    def __enter__(self) -> "SharedDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass


class AttachedDataset:
    """Worker-side handle: zero-copy views onto a published dataset."""

    def __init__(self, meta: Dict[str, SharedArrayMeta]):
        self._segments: List[shared_memory.SharedMemory] = []
        self.views: Dict[str, np.ndarray] = {}
        self._closed = False
        for key, entry in meta.items():
            with _attach_without_tracking():
                segment = shared_memory.SharedMemory(name=entry.name)
            self._segments.append(segment)
            self.views[key] = np.ndarray(
                entry.shape, dtype=np.dtype(entry.dtype), buffer=segment.buf
            )
        self._atexit = self.close
        atexit.register(self._atexit)

    def __getitem__(self, key: str) -> np.ndarray:
        return self.views[key]

    def close(self) -> None:
        """Drop the mappings (does **not** unlink — the publisher owns that)."""
        if self._closed:
            return
        self._closed = True
        self.views = {}
        for segment in self._segments:
            try:
                segment.close()
            except Exception:  # pragma: no cover
                pass
        self._segments = []
        try:
            atexit.unregister(self._atexit)
        except Exception:  # pragma: no cover
            pass

    def __enter__(self) -> "AttachedDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Worker-process side of the parallel engine (training *and* serving).

Everything here runs inside ``spawn``-started worker processes, so it is all
module-level (picklable by reference) and communicates exclusively through
the picklable :class:`MemberTask` / :class:`MemberOutcome` records plus the
shared-memory dataset attached at worker start-up.  The serving-pool worker
loop (:func:`_serving_worker_main`) lives here too: it answers request
descriptors from :class:`~repro.parallel.serving.PoolPredictor`, reading
request rows from — and writing probabilities into — its per-worker
shared-memory arena when the pool runs the ``shm`` transport.

A worker trains exactly the way the serial path does — same
:class:`~repro.nn.training.Trainer`, same seed derivations, same bootstrap
sampling against the (shared) training set — so a member trained by a worker
is bitwise identical to the member the serial loop would have produced,
provided the BLAS thread count matches (floating-point summation order inside
GEMM depends on it; the executor caps workers to one BLAS thread each by
default).  Because every input is derived from the task record alone, a task
*retried* on a different worker after a crash is also bitwise identical to a
fault-free first attempt.

Resilience contract with the executor:

* the worker runs a persistent loop over its private request queue (one
  task at a time, ``None`` ends the loop) and ships every message through
  its private result queue — queue locks are never shared across workers,
  so a SIGKILL mid-operation poisons only this worker's queues, which the
  executor replaces at respawn;
* a daemon heartbeat thread emits ``("heartbeat", worker_id, None)`` every
  ``heartbeat_interval`` seconds so the executor can tell a *stopped*
  process (SIGSTOP, scheduler starvation) from a merely slow one; a worker
  wedged inside the training call keeps heartbeating, which is exactly why
  the executor additionally enforces per-task deadlines;
* the final :mod:`repro.obs` registry snapshot of each member fit travels
  back inside :class:`MemberOutcome`, so per-member training metrics survive
  worker exit (the registry is reset after each snapshot: snapshots are
  deltas, and the parent merges them without double counting);
* :func:`repro.faults.fire` injection points (``train`` point) sit directly
  around the member fit for chaos tests — free when ``REPRO_FAULTS`` is
  unset.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.parallel.shared_data import AttachedDataset, SharedArrayMeta
from repro.utils.parallel import apply_blas_thread_cap

# Populated once per worker by _init_worker; read by every _train_member call.
_ATTACHED: Optional[AttachedDataset] = None


@dataclass
class MemberTask:
    """One ensemble member to train, shipped parent -> worker.

    ``init_weights`` (when given) are installed over a ``seed``-initialised
    model — this is how hatched members travel: the parent hatches from the
    MotherNet and ships the resulting weight/state snapshot, the worker
    rebuilds the model (``Model.from_spec(spec, seed=init_seed)``) and
    restores the snapshot before fine-tuning.  ``bag_seed`` (when given) makes
    the worker draw the member's bootstrap sample from the shared training
    set, exactly as the serial path draws it in the parent.
    """

    name: str
    spec_json: str
    config: object  # TrainingConfig; typed loosely to keep this module import-light
    train_seed: int
    dtype: Optional[str] = None
    init_seed: int = 0
    init_weights: Optional[Dict[str, Dict[str, object]]] = None
    bag_seed: Optional[int] = None
    collect_phase_timings: bool = True


@dataclass
class MemberOutcome:
    """One trained member, shipped worker -> parent."""

    name: str
    state: Dict[str, object]  # packed model state (spec + dtype + weights)
    result: object  # TrainingResult
    seconds: float  # in-worker wall clock of the fit (per-member cost)
    samples_per_epoch: int
    parameters: int
    compute_phases: Dict[str, float] = field(default_factory=dict)
    # Delta snapshot of the worker's repro.obs registry covering this fit;
    # merged into the parent registry so per-member metrics outlive the
    # worker process.  None when metrics are disabled in the worker.
    metrics: Optional[Dict[str, Dict[str, object]]] = None
    attempt: int = 0  # which attempt produced this outcome (0 = first try)


def _init_worker(meta: Dict[str, SharedArrayMeta], blas_threads: int) -> None:
    """Cap BLAS threads and attach the shared dataset (idempotent)."""
    apply_blas_thread_cap(blas_threads)
    global _ATTACHED
    if _ATTACHED is None:
        _ATTACHED = AttachedDataset(meta)


def _train_member(task: MemberTask, attempt: int = 0) -> MemberOutcome:
    """Train one member against the shared dataset and return its outcome."""
    # Imports live here (not at module top) so the parent can enumerate tasks
    # without paying for the full nn stack, and so spawn start-up stays lean
    # until a task actually arrives.
    from repro.arch.serialization import spec_from_json
    from repro.data.sampling import bootstrap_sample
    from repro.faults import fire
    from repro.nn.model import Model
    from repro.nn.serialization import pack_model_state
    from repro.nn.training import Trainer
    from repro.obs.metrics import get_registry
    from repro.utils.timing import capture_phase_timings

    if _ATTACHED is None:
        raise RuntimeError("worker used before _init_worker attached the dataset")
    x = _ATTACHED["x"]
    y = _ATTACHED["y"]

    spec = spec_from_json(task.spec_json)
    model = Model.from_spec(spec, seed=task.init_seed, dtype=task.dtype)
    if task.init_weights is not None:
        model.set_weights(task.init_weights)

    if task.bag_seed is not None:
        bag = bootstrap_sample(x, y, seed=task.bag_seed)
        x_fit, y_fit, samples = bag.x, bag.y, bag.size
    else:
        x_fit, y_fit, samples = x, y, int(x.shape[0])

    # Chaos-test injection point: fires "mid-member" — after the task is
    # accepted and the model is built, before any result can be produced.
    fire("train", member=task.name, attempt=attempt)

    start = time.perf_counter()
    if task.collect_phase_timings:
        with capture_phase_timings() as phases:
            result = Trainer(task.config).fit(model, x_fit, y_fit, seed=task.train_seed)
    else:
        phases = {}
        result = Trainer(task.config).fit(model, x_fit, y_fit, seed=task.train_seed)
    seconds = time.perf_counter() - start

    # Ship the registry delta for this fit and reset, so the next task on
    # this worker starts from zero and the parent never double-merges.
    registry = get_registry()
    if registry.enabled:
        metrics = registry.snapshot()
        registry.reset()
    else:
        metrics = None

    return MemberOutcome(
        name=task.name,
        state=pack_model_state(model),
        result=result,
        seconds=seconds,
        samples_per_epoch=samples,
        parameters=model.parameter_count(),
        compute_phases=dict(phases),
        metrics=metrics,
        attempt=attempt,
    )


def _serving_worker_main(
    worker_id: int,
    artifact: str,
    method: str,
    batch_size: int,
    warm: bool,
    arena_meta,
    request_queue,
    result_queue,
) -> None:
    """Serving-pool worker: load the artifact once, answer request groups.

    Two request encodings arrive on the queue (besides the ``None``
    shutdown sentinel), tagged by their first element:

    * ``("pickle", [(request_id, rows, method), ...])`` — the reference
      transport: tensors travel through the queue itself.
    * ``("shm", (generation, request_region, entries))`` — the zero-copy
      transport: each entry is ``(request_id, offset, shape, dtype, method,
      result_offset, result_capacity)`` and the rows live in this worker's
      shared-memory arena (``arena_meta``).  The worker predicts directly on
      a view of the arena bytes and writes the probabilities into the
      reserved result region; only the descriptor goes back on the queue.

    Replies mirror the encodings: ``("result", worker_id, ("pickle",
    replies))`` or ``("result", worker_id, ("shm", generation,
    request_region, replies))`` where each shm reply is ``(request_id,
    result_offset, shape, dtype, inline_result, error)`` — ``inline_result``
    carries the probabilities through the queue in the rare case the
    reservation cannot hold them (never for float32/float64 outputs).
    """
    import numpy as np

    arena = None
    try:
        from repro.api.predictor import EnsemblePredictor
        from repro.parallel.shared_data import attach_segment

        predictor = EnsemblePredictor.load(
            artifact, method=method, batch_size=batch_size, warm=warm
        )
        if arena_meta is not None:
            arena = attach_segment(arena_meta.name)
        result_queue.put(("ready", worker_id, None))
    except BaseException as exc:  # pragma: no cover - startup failure path
        result_queue.put(("fatal", worker_id, f"{type(exc).__name__}: {exc}"))
        return
    from repro.faults import fire

    try:
        while True:
            item = request_queue.get()
            if item is None:
                break
            # Chaos-test injection point ("serve"): crash or wedge this worker
            # with a request group in flight — free when REPRO_FAULTS is unset.
            fire("serve", worker=worker_id)
            kind, payload = item
            if kind == "pickle":
                replies = []
                for request_id, x, method_override in payload:
                    try:
                        proba = predictor.predict_proba(x, method=method_override)
                        replies.append((request_id, proba, None))
                    except Exception as exc:
                        replies.append(
                            (request_id, None, f"{type(exc).__name__}: {exc}")
                        )
                result_queue.put(("result", worker_id, ("pickle", replies)))
                continue
            generation, request_region, entries = payload
            replies = []
            for request_id, offset, shape, dtype, method_override, res_off, res_cap in entries:
                try:
                    rows = np.ndarray(
                        tuple(shape),
                        dtype=np.dtype(dtype),
                        buffer=arena.buf,
                        offset=offset,
                    )
                    proba = predictor.predict_proba(rows, method=method_override)
                    del rows
                    # Chaos-test injection point ("serve_shm_write"): die or
                    # wedge mid-slot-write — the dispatcher must survive a
                    # result region that never gets its descriptor.
                    fire("serve_shm_write", worker=worker_id)
                    if proba.nbytes <= res_cap:
                        out = np.ndarray(
                            proba.shape,
                            dtype=proba.dtype,
                            buffer=arena.buf,
                            offset=res_off,
                        )
                        np.copyto(out, proba, casting="no")
                        del out
                        replies.append(
                            (
                                request_id,
                                res_off,
                                tuple(proba.shape),
                                str(proba.dtype),
                                None,
                                None,
                            )
                        )
                    else:  # reservation too narrow: fall back through the queue
                        replies.append((request_id, res_off, None, None, proba, None))
                except Exception as exc:
                    replies.append(
                        (request_id, res_off, None, None, None, f"{type(exc).__name__}: {exc}")
                    )
            result_queue.put(
                ("result", worker_id, ("shm", generation, request_region, replies))
            )
    finally:
        if arena is not None:
            try:
                arena.close()
            except Exception:  # pragma: no cover - views torn down with us
                pass


def _heartbeat_loop(worker_id: int, result_queue, interval: float, stop: threading.Event) -> None:
    """Daemon thread: tell the parent this process is still scheduled."""
    while not stop.wait(interval):
        try:
            result_queue.put(("heartbeat", worker_id, None))
        except Exception:  # pragma: no cover - queue torn down at exit
            return


def _worker_main(
    worker_id: int,
    meta: Dict[str, SharedArrayMeta],
    blas_threads: int,
    heartbeat_interval: float,
    request_queue,
    result_queue,
) -> None:
    """Training-worker main loop (one process; see module docstring)."""
    try:
        _init_worker(meta, blas_threads)
    except BaseException as exc:  # pragma: no cover - startup failure path
        try:
            result_queue.put(("fatal", worker_id, f"{type(exc).__name__}: {exc}"))
        finally:
            return
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(worker_id, result_queue, heartbeat_interval, stop),
        name=f"repro-train-heartbeat-{worker_id}",
        daemon=True,
    )
    beat.start()
    try:
        while True:
            item = request_queue.get()
            if item is None:
                break
            task_index, attempt, task = item
            try:
                outcome = _train_member(task, attempt=attempt)
            except Exception as exc:
                result_queue.put(
                    ("error", worker_id, (task_index, attempt, f"{type(exc).__name__}: {exc}"))
                )
            else:
                result_queue.put(("result", worker_id, (task_index, attempt, outcome)))
    finally:
        stop.set()

"""Worker-process side of the parallel training engine.

Everything here runs inside ``spawn``-started worker processes, so it is all
module-level (picklable by reference) and communicates exclusively through
the picklable :class:`MemberTask` / :class:`MemberOutcome` records plus the
shared-memory dataset attached at pool start-up.

A worker trains exactly the way the serial path does — same
:class:`~repro.nn.training.Trainer`, same seed derivations, same bootstrap
sampling against the (shared) training set — so a member trained by a worker
is bitwise identical to the member the serial loop would have produced,
provided the BLAS thread count matches (floating-point summation order inside
GEMM depends on it; the executor caps workers to one BLAS thread each by
default).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.parallel.shared_data import AttachedDataset, SharedArrayMeta
from repro.utils.parallel import apply_blas_thread_cap

# Populated once per worker by _init_worker; read by every _train_member call.
_ATTACHED: Optional[AttachedDataset] = None


@dataclass
class MemberTask:
    """One ensemble member to train, shipped parent -> worker.

    ``init_weights`` (when given) are installed over a ``seed``-initialised
    model — this is how hatched members travel: the parent hatches from the
    MotherNet and ships the resulting weight/state snapshot, the worker
    rebuilds the model (``Model.from_spec(spec, seed=init_seed)``) and
    restores the snapshot before fine-tuning.  ``bag_seed`` (when given) makes
    the worker draw the member's bootstrap sample from the shared training
    set, exactly as the serial path draws it in the parent.
    """

    name: str
    spec_json: str
    config: object  # TrainingConfig; typed loosely to keep this module import-light
    train_seed: int
    dtype: Optional[str] = None
    init_seed: int = 0
    init_weights: Optional[Dict[str, Dict[str, object]]] = None
    bag_seed: Optional[int] = None
    collect_phase_timings: bool = True


@dataclass
class MemberOutcome:
    """One trained member, shipped worker -> parent."""

    name: str
    state: Dict[str, object]  # packed model state (spec + dtype + weights)
    result: object  # TrainingResult
    seconds: float  # in-worker wall clock of the fit (per-member cost)
    samples_per_epoch: int
    parameters: int
    compute_phases: Dict[str, float] = field(default_factory=dict)


def _init_worker(meta: Dict[str, SharedArrayMeta], blas_threads: int) -> None:
    """Pool initializer: cap BLAS threads and attach the shared dataset."""
    apply_blas_thread_cap(blas_threads)
    global _ATTACHED
    _ATTACHED = AttachedDataset(meta)


def _train_member(task: MemberTask) -> MemberOutcome:
    """Train one member against the shared dataset and return its outcome."""
    # Imports live here (not at module top) so the parent can enumerate tasks
    # without paying for the full nn stack, and so spawn start-up stays lean
    # until a task actually arrives.
    from repro.arch.serialization import spec_from_json
    from repro.data.sampling import bootstrap_sample
    from repro.nn.model import Model
    from repro.nn.serialization import pack_model_state
    from repro.nn.training import Trainer
    from repro.utils.timing import capture_phase_timings

    if _ATTACHED is None:
        raise RuntimeError("worker used before _init_worker attached the dataset")
    x = _ATTACHED["x"]
    y = _ATTACHED["y"]

    spec = spec_from_json(task.spec_json)
    model = Model.from_spec(spec, seed=task.init_seed, dtype=task.dtype)
    if task.init_weights is not None:
        model.set_weights(task.init_weights)

    if task.bag_seed is not None:
        bag = bootstrap_sample(x, y, seed=task.bag_seed)
        x_fit, y_fit, samples = bag.x, bag.y, bag.size
    else:
        x_fit, y_fit, samples = x, y, int(x.shape[0])

    start = time.perf_counter()
    if task.collect_phase_timings:
        with capture_phase_timings() as phases:
            result = Trainer(task.config).fit(model, x_fit, y_fit, seed=task.train_seed)
    else:
        phases = {}
        result = Trainer(task.config).fit(model, x_fit, y_fit, seed=task.train_seed)
    seconds = time.perf_counter() - start

    return MemberOutcome(
        name=task.name,
        state=pack_model_state(model),
        result=result,
        seconds=seconds,
        samples_per_epoch=samples,
        parameters=model.parameter_count(),
        compute_phases=dict(phases),
    )

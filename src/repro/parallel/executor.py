"""Process-based parallel training of ensemble members.

:class:`ParallelExecutor` is the engine behind ``TrainingConfig(workers=N)``:
a persistent, ``spawn``-safe ``multiprocessing`` pool whose workers attach the
training set through shared memory exactly once (see
:mod:`repro.parallel.shared_data`), train independent ensemble members, and
ship back ``(weights, TrainingResult, cost)`` records.

Key properties
--------------

* **Deterministic** — tasks carry the same derived seeds the serial loop
  would use, workers run the same ``Trainer``, and outcomes come back in task
  order.  With matching BLAS thread counts the trained members are *bitwise*
  identical to the serial path, run to run and serial to parallel.
* **No oversubscription** — worker start-up happens inside
  :func:`~repro.utils.parallel.blas_thread_limit`, so every worker's BLAS
  pool is capped (default: one thread per worker) before numpy is imported.
* **Makespan accounting** — :meth:`train` returns the critical-path wall
  clock of the whole batch next to the per-member in-worker seconds, so cost
  ledgers can report both "total compute" and "time you actually waited".
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.obs.metrics import get_registry
from repro.parallel.shared_data import SharedDataset
from repro.parallel.worker import MemberOutcome, MemberTask, _init_worker, _train_member
from repro.utils.logging import get_logger
from repro.utils.parallel import blas_thread_limit, cpu_count

logger = get_logger("parallel.executor")

# Parallel-phase telemetry (repro.obs): how many member tasks ran on pools,
# the compute they burned, and the critical path of the latest batch.
_metrics = get_registry()
_TASKS_TOTAL = _metrics.counter(
    "repro_parallel_tasks_total", "Member-training tasks completed on worker pools."
)
_TASK_SECONDS = _metrics.counter(
    "repro_parallel_task_seconds_total",
    "Summed in-worker training seconds of completed pool tasks.",
)
_LAST_MAKESPAN = _metrics.gauge(
    "repro_parallel_last_makespan_seconds",
    "Critical-path wall clock of the most recent parallel training batch.",
)
_POOL_WORKERS = _metrics.gauge(
    "repro_parallel_pool_workers", "Worker processes of the most recent training pool."
)

__all__ = ["MemberTask", "MemberOutcome", "ParallelExecutor", "train_members"]


class ParallelExecutor:
    """Persistent spawn-based worker pool over a shared-memory dataset.

    Parameters
    ----------
    data:
        The arrays to publish once for all workers — the trainers pass
        ``{"x": x_train, "y": y_train}``.
    workers:
        Number of worker processes.
    blas_threads_per_worker:
        BLAS thread cap applied to each worker before its numpy import
        (default 1 — with ``workers ~= cores`` this uses the machine fully
        without oversubscription).  Bitwise serial/parallel equivalence holds
        when the serial run's BLAS pool has this same size (e.g. under
        ``OMP_NUM_THREADS=1``).
    task_timeout:
        Per-task safety net in seconds; a worker that exceeds it raises
        ``multiprocessing.TimeoutError`` in the parent instead of hanging the
        run forever.
    """

    def __init__(
        self,
        data: Dict[str, np.ndarray],
        workers: int,
        blas_threads_per_worker: int = 1,
        task_timeout: float = 900.0,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if blas_threads_per_worker < 1:
            raise ValueError("blas_threads_per_worker must be at least 1")
        self.workers = int(workers)
        self.blas_threads_per_worker = int(blas_threads_per_worker)
        self.task_timeout = float(task_timeout)
        self._shared = SharedDataset(data)
        self._pool: mp.pool.Pool | None = None
        if self.workers * self.blas_threads_per_worker > cpu_count():
            logger.info(
                "workers (%d) x blas threads (%d) exceeds the %d usable cores; "
                "expect time-slicing rather than speedup",
                self.workers,
                self.blas_threads_per_worker,
                cpu_count(),
            )

    # ---------------------------------------------------------------- pool
    def _ensure_pool(self) -> mp.pool.Pool:
        if self._pool is None:
            ctx = mp.get_context("spawn")
            # The env cap must surround process creation: spawn children
            # inherit the environment at exec time and size their BLAS pools
            # from it when they import numpy.
            with blas_thread_limit(self.blas_threads_per_worker):
                self._pool = ctx.Pool(
                    processes=self.workers,
                    initializer=_init_worker,
                    initargs=(self._shared.meta, self.blas_threads_per_worker),
                )
        return self._pool

    # ---------------------------------------------------------------- run
    def train(self, tasks: Sequence[MemberTask]) -> Tuple[List[MemberOutcome], float]:
        """Train every task; returns ``(outcomes_in_task_order, makespan)``.

        ``makespan`` is the parent-side wall clock from first submission to
        last result — the critical path of the batch, as opposed to the sum
        of the per-member ``MemberOutcome.seconds``.
        """
        tasks = list(tasks)
        if not tasks:
            return [], 0.0
        pool = self._ensure_pool()
        start = time.perf_counter()
        pending = [pool.apply_async(_train_member, (task,)) for task in tasks]
        try:
            outcomes = [handle.get(timeout=self.task_timeout) for handle in pending]
        except BaseException:
            # A hung or failed worker must not hang the caller a second time:
            # close()/join() would wait for the stuck task, so kill the pool
            # outright before the exception propagates.
            self._terminate()
            raise
        makespan = time.perf_counter() - start
        if _metrics.enabled:
            _TASKS_TOTAL.inc(len(outcomes))
            _TASK_SECONDS.inc(sum(outcome.seconds for outcome in outcomes))
            _LAST_MAKESPAN.set(makespan)
            _POOL_WORKERS.set(self.workers)
        logger.info(
            "trained %d members on %d workers: makespan %.2fs, member-seconds %.2fs",
            len(outcomes),
            self.workers,
            makespan,
            sum(outcome.seconds for outcome in outcomes),
        )
        return outcomes, makespan

    # ------------------------------------------------------------- cleanup
    def _terminate(self) -> None:
        """Forcibly stop the workers (used on the error path, where waiting
        for in-flight tasks could block forever) and free the segments."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._shared.close()

    def close(self) -> None:
        """Shut the pool down, then destroy the shared segments (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        self._shared.close()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass


def train_members(
    tasks: Sequence[MemberTask],
    x: np.ndarray,
    y: np.ndarray,
    workers: int,
    blas_threads_per_worker: int = 1,
) -> Tuple[List[MemberOutcome], float]:
    """One-shot convenience wrapper: publish, train, tear down.

    This is what the ensemble trainers call for a single parallel phase; the
    class form is for callers that run several batches against one published
    dataset.
    """
    with ParallelExecutor(
        {"x": np.asarray(x), "y": np.asarray(y)},
        workers=workers,
        blas_threads_per_worker=blas_threads_per_worker,
    ) as executor:
        return executor.train(tasks)

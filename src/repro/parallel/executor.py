"""Fault-tolerant process-based parallel training of ensemble members.

:class:`ParallelExecutor` is the engine behind ``TrainingConfig(workers=N)``:
a persistent, ``spawn``-safe pool of worker processes that attach the
training set through shared memory exactly once (see
:mod:`repro.parallel.shared_data`), train independent ensemble members, and
ship back ``(weights, TrainingResult, cost)`` records.

Key properties
--------------

* **Deterministic** — tasks carry the same derived seeds the serial loop
  would use, workers run the same ``Trainer``, and outcomes come back in task
  order.  With matching BLAS thread counts the trained members are *bitwise*
  identical to the serial path, run to run, serial to parallel, and — because
  a task record fully determines its member — fault-free to retried-after-a-
  crash.
* **No oversubscription** — worker start-up happens inside
  :func:`~repro.utils.parallel.blas_thread_limit`, so every worker's BLAS
  pool is capped (default: one thread per worker) before numpy is imported.
* **Fault-tolerant** — a worker crash (SIGKILL, OOM kill, segfault), hang
  (wedged syscall, infinite loop), or in-process exception no longer kills
  the run.  The scheduler detects the failure, evicts the worker, respawns
  the pool slot under bounded exponential backoff (the same supervisor
  semantics as the serving pool), and retries the failed
  :class:`~repro.parallel.worker.MemberTask` up to ``max_task_retries``
  times.  Detection combines three signals:

  - **process death** — ``Process.is_alive()`` turning false;
  - **per-task deadline** — a task running longer than ``task_timeout``
    seconds marks its worker wedged; the executor SIGKILLs it (a hung
    worker cannot be asked nicely) and retries the task elsewhere;
  - **heartbeat loss** — each worker's daemon heartbeat thread pings every
    ``heartbeat_interval`` seconds; a silent-but-alive process (SIGSTOP,
    scheduler starvation) past ``heartbeat_timeout`` is treated as wedged.

  Retries exhausted surface as a :class:`RuntimeError` naming the member.
* **Crash-isolated IPC** — every worker owns a private request queue and a
  private result queue (multiplexed in the parent via
  ``multiprocessing.connection.wait``), so a SIGKILL landing while a worker
  holds one of its queue locks poisons only its own queues; the respawn
  installs fresh ones.
* **Makespan accounting** — :meth:`train` returns the critical-path wall
  clock of the whole batch next to the per-member in-worker seconds, so cost
  ledgers can report both "total compute" and "time you actually waited".
* **Streaming results** — :meth:`train` accepts an ``on_outcome`` callback
  invoked the moment each task finishes (in completion order), which is how
  checkpointing journals members to disk *during* the run rather than after
  it.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as thread_queue
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _mp_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.events import log_event
from repro.obs.metrics import get_registry
from repro.parallel.shared_data import SharedDataset
from repro.parallel.worker import MemberOutcome, MemberTask, _worker_main
from repro.utils.logging import get_logger
from repro.utils.parallel import blas_thread_limit, cpu_count

logger = get_logger("parallel.executor")

# Parallel-phase telemetry (repro.obs): how many member tasks ran on pools,
# the compute they burned, the critical path of the latest batch, and the
# fault-tolerance lifecycle (retries, evictions, respawns, heartbeat misses).
_metrics = get_registry()
_TASKS_TOTAL = _metrics.counter(
    "repro_parallel_tasks_total", "Member-training tasks completed on worker pools."
)
_TASK_SECONDS = _metrics.counter(
    "repro_parallel_task_seconds_total",
    "Summed in-worker training seconds of completed pool tasks.",
)
_LAST_MAKESPAN = _metrics.gauge(
    "repro_parallel_last_makespan_seconds",
    "Critical-path wall clock of the most recent parallel training batch.",
)
_POOL_WORKERS = _metrics.gauge(
    "repro_parallel_pool_workers", "Worker processes of the most recent training pool."
)
_TASK_RETRIES = _metrics.counter(
    "repro_training_task_retries_total",
    "Member-training tasks re-enqueued after a worker fault.",
)
_WORKER_EVICTIONS = _metrics.counter(
    "repro_training_worker_evictions_total",
    "Training workers evicted from the pool.",
    ("reason",),
)
_WORKER_RESTARTS = _metrics.counter(
    "repro_training_worker_restarts_total", "Training workers respawned after eviction."
)
_HEARTBEAT_MISSES = _metrics.counter(
    "repro_training_heartbeat_misses_total",
    "Alive-but-silent training workers detected via heartbeat loss.",
)

__all__ = ["MemberTask", "MemberOutcome", "ParallelExecutor", "train_members"]


@dataclass
class _Dispatch:
    """Parent-side record of one task currently running on a worker."""

    task_index: int
    attempt: int
    deadline: float  # monotonic time after which the worker counts as hung


class ParallelExecutor:
    """Persistent spawn-based worker pool over a shared-memory dataset.

    Parameters
    ----------
    data:
        The arrays to publish once for all workers — the trainers pass
        ``{"x": x_train, "y": y_train}``.
    workers:
        Number of worker processes.
    blas_threads_per_worker:
        BLAS thread cap applied to each worker before its numpy import
        (default 1 — with ``workers ~= cores`` this uses the machine fully
        without oversubscription).  Bitwise serial/parallel equivalence holds
        when the serial run's BLAS pool has this same size (e.g. under
        ``OMP_NUM_THREADS=1``).
    task_timeout:
        Per-task deadline in seconds.  A worker that exceeds it is treated
        as wedged: SIGKILLed, evicted, respawned, and its task retried.
    max_task_retries:
        How many times a failed task (crash, hang, in-worker exception) is
        re-enqueued before the run fails with an error naming the member.
    heartbeat_interval / heartbeat_timeout:
        Workers ping every ``heartbeat_interval`` seconds; an alive process
        silent past ``heartbeat_timeout`` is treated as wedged.  The timeout
        must comfortably cover worker start-up (spawn + numpy import).
    restart_backoff / restart_backoff_max:
        Initial and maximum delay before respawning an evicted pool slot,
        doubling per consecutive eviction (a worker that returns a result
        resets its backoff) — the same bounded-backoff supervisor semantics
        as the serving pool.
    """

    def __init__(
        self,
        data: Dict[str, np.ndarray],
        workers: int,
        blas_threads_per_worker: int = 1,
        task_timeout: float = 900.0,
        max_task_retries: int = 2,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 60.0,
        restart_backoff: float = 0.25,
        restart_backoff_max: float = 30.0,
        poll_interval: float = 0.1,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if blas_threads_per_worker < 1:
            raise ValueError("blas_threads_per_worker must be at least 1")
        if task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if max_task_retries < 0:
            raise ValueError("max_task_retries must be non-negative")
        if heartbeat_interval <= 0 or heartbeat_timeout <= heartbeat_interval:
            raise ValueError("need 0 < heartbeat_interval < heartbeat_timeout")
        if restart_backoff <= 0 or restart_backoff_max < restart_backoff:
            raise ValueError("need 0 < restart_backoff <= restart_backoff_max")
        self.workers = int(workers)
        self.blas_threads_per_worker = int(blas_threads_per_worker)
        self.task_timeout = float(task_timeout)
        self.max_task_retries = int(max_task_retries)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.restart_backoff = float(restart_backoff)
        self.restart_backoff_max = float(restart_backoff_max)
        self.poll_interval = float(poll_interval)
        self._shared = SharedDataset(data)
        self._ctx = mp.get_context("spawn")
        self._processes: List[Optional[mp.process.BaseProcess]] = [None] * self.workers
        self._request_queues: List = [None] * self.workers
        self._result_queues: List = [None] * self.workers
        self._last_beat: Dict[int, float] = {}
        # worker -> monotonic time its respawn is due; worker -> consecutive
        # evictions since it last produced a result (drives the backoff).
        self._down: Dict[int, float] = {}
        self._evictions: Dict[int, int] = {i: 0 for i in range(self.workers)}
        self._started = False
        if self.workers * self.blas_threads_per_worker > cpu_count():
            logger.info(
                "workers (%d) x blas threads (%d) exceeds the %d usable cores; "
                "expect time-slicing rather than speedup",
                self.workers,
                self.blas_threads_per_worker,
                cpu_count(),
            )

    # ---------------------------------------------------------------- pool
    def _spawn_worker(self, worker_id: int) -> None:
        """(Re)start ``worker_id`` on fresh private queues.

        Fresh queues matter on the respawn path: a SIGKILL can land while
        the predecessor holds one of its queue locks, leaving the lock
        acquired forever; undelivered payloads on the old queues belong to
        task attempts that were already rescheduled.
        """
        self._request_queues[worker_id] = self._ctx.Queue()
        self._result_queues[worker_id] = self._ctx.Queue()
        # The env cap must surround process creation: spawn children inherit
        # the environment at exec time and size their BLAS pools from it when
        # they import numpy.
        with blas_thread_limit(self.blas_threads_per_worker):
            process = self._ctx.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    self._shared.meta,
                    self.blas_threads_per_worker,
                    self.heartbeat_interval,
                    self._request_queues[worker_id],
                    self._result_queues[worker_id],
                ),
                daemon=True,
                name=f"repro-train-{worker_id}",
            )
            process.start()
        self._processes[worker_id] = process
        self._last_beat[worker_id] = time.monotonic()

    def _ensure_workers(self) -> None:
        if not self._started:
            for worker_id in range(self.workers):
                self._spawn_worker(worker_id)
            self._started = True

    def _poll_results(self, timeout: float) -> List[tuple]:
        """Drain whatever messages the per-worker result queues hold.

        Multiplexes over every queue's reader pipe with
        ``multiprocessing.connection.wait``; returns a (possibly empty) list
        of ``(kind, worker_id, payload)`` messages.  Queues swapped out by a
        concurrent respawn surface as closed readers and are skipped.
        """
        snapshot = {
            queue._reader: queue for queue in self._result_queues if queue is not None
        }
        try:
            readable = _mp_wait(list(snapshot), timeout=timeout)
        except OSError:  # pragma: no cover - reader closed mid-wait (respawn)
            return []
        messages: List[tuple] = []
        for reader in readable:
            queue = snapshot[reader]
            while True:
                try:
                    messages.append(queue.get_nowait())
                except thread_queue.Empty:
                    break
                except (OSError, ValueError, EOFError):  # pragma: no cover
                    break  # queue closed/poisoned; successor takes over
        return messages

    # ------------------------------------------------------------ lifecycle
    def _evict_worker(self, worker_id: int, reason: str, member: Optional[str]) -> None:
        """Take a dead or wedged worker out of rotation and schedule respawn."""
        process = self._processes[worker_id]
        if process is not None and process.is_alive():
            # A wedged worker cannot be asked nicely; SIGKILL mirrors what an
            # operator (or the OOM killer) would do.
            process.kill()
            process.join(timeout=10)
        attempts = self._evictions[worker_id]
        self._evictions[worker_id] = attempts + 1
        backoff = min(self.restart_backoff * (2 ** attempts), self.restart_backoff_max)
        self._down[worker_id] = time.monotonic() + backoff
        if _metrics.enabled:
            _WORKER_EVICTIONS.labels(reason).inc()
            if reason == "heartbeat":
                _HEARTBEAT_MISSES.inc()
        exitcode = None if process is None else process.exitcode
        logger.error(
            "training worker %d evicted (%s, exit code %s)%s; respawning in %.2fs",
            worker_id,
            reason,
            exitcode,
            f" while training {member!r}" if member else "",
            backoff,
        )
        log_event(
            "train.worker_evicted",
            worker=worker_id,
            reason=reason,
            exitcode=exitcode,
            member=member,
            restart_in_seconds=round(backoff, 3),
        )

    def _respawn_due_workers(self, now: float) -> None:
        for worker_id, due in list(self._down.items()):
            if now < due:
                continue
            del self._down[worker_id]
            self._spawn_worker(worker_id)
            _WORKER_RESTARTS.inc()
            logger.info(
                "respawned training worker %d (eviction %d)",
                worker_id,
                self._evictions[worker_id],
            )
            log_event(
                "train.worker_respawned",
                worker=worker_id,
                eviction=self._evictions[worker_id],
            )

    # ---------------------------------------------------------------- run
    def train(
        self,
        tasks: Sequence[MemberTask],
        on_outcome: Optional[Callable[[int, MemberOutcome], None]] = None,
    ) -> Tuple[List[MemberOutcome], float]:
        """Train every task; returns ``(outcomes_in_task_order, makespan)``.

        ``makespan`` is the parent-side wall clock from first submission to
        last result — the critical path of the batch, as opposed to the sum
        of the per-member ``MemberOutcome.seconds``.  ``on_outcome(task_index,
        outcome)`` fires in completion order as results stream in (the
        checkpoint journal hook); an exception it raises aborts the run.
        """
        tasks = list(tasks)
        if not tasks:
            return [], 0.0
        try:
            self._ensure_workers()
            start = time.perf_counter()
            outcomes: List[Optional[MemberOutcome]] = [None] * len(tasks)
            attempts = [0] * len(tasks)
            pending = deque(range(len(tasks)))
            busy: Dict[int, _Dispatch] = {}
            done = 0
            retries = 0

            def fail_or_retry(task_index: int, reason: str) -> None:
                nonlocal retries
                attempts[task_index] += 1
                if attempts[task_index] > self.max_task_retries:
                    log_event(
                        "train.retries_exhausted",
                        member=tasks[task_index].name,
                        attempts=attempts[task_index],
                        reason=reason,
                    )
                    raise RuntimeError(
                        f"training of member {tasks[task_index].name!r} failed "
                        f"{attempts[task_index]} times (max_task_retries="
                        f"{self.max_task_retries}); last failure: {reason}"
                    )
                retries += 1
                _TASK_RETRIES.inc()
                pending.append(task_index)
                logger.warning(
                    "retrying member %r (attempt %d/%d): %s",
                    tasks[task_index].name,
                    attempts[task_index] + 1,
                    self.max_task_retries + 1,
                    reason,
                )
                log_event(
                    "train.task_retried",
                    member=tasks[task_index].name,
                    attempt=attempts[task_index],
                    reason=reason,
                )

            while done < len(tasks):
                # 1. Dispatch pending tasks to idle, healthy workers.
                for worker_id in range(self.workers):
                    if not pending:
                        break
                    if worker_id in busy or worker_id in self._down:
                        continue
                    process = self._processes[worker_id]
                    if process is None or not process.is_alive():
                        continue
                    task_index = pending.popleft()
                    if outcomes[task_index] is not None:
                        continue  # a late straggler already answered it
                    self._request_queues[worker_id].put(
                        (task_index, attempts[task_index], tasks[task_index])
                    )
                    busy[worker_id] = _Dispatch(
                        task_index,
                        attempts[task_index],
                        time.monotonic() + self.task_timeout,
                    )

                # 2. Collect messages (results, errors, heartbeats).
                for kind, worker_id, payload in self._poll_results(self.poll_interval):
                    self._last_beat[worker_id] = time.monotonic()
                    if kind == "heartbeat":
                        continue
                    if kind == "result":
                        task_index, attempt, outcome = payload
                        busy.pop(worker_id, None)
                        self._evictions[worker_id] = 0
                        if outcomes[task_index] is None:
                            outcomes[task_index] = outcome
                            done += 1
                            if outcome.metrics:
                                _metrics.merge_snapshot(outcome.metrics)
                            if on_outcome is not None:
                                on_outcome(task_index, outcome)
                    elif kind == "error":
                        task_index, attempt, message = payload
                        busy.pop(worker_id, None)
                        if outcomes[task_index] is None:
                            fail_or_retry(task_index, message)
                    elif kind == "fatal":  # worker could not start (attach failed)
                        self._evict_worker(worker_id, "startup", None)

                now = time.monotonic()

                # 3. Health checks: deaths, deadlines, heartbeat loss.
                for worker_id in range(self.workers):
                    if worker_id in self._down:
                        continue
                    process = self._processes[worker_id]
                    if process is None:
                        continue
                    dispatch = busy.get(worker_id)
                    if not process.is_alive():
                        reason = "died"
                    elif dispatch is not None and now >= dispatch.deadline:
                        reason = "deadline"
                    elif now - self._last_beat.get(worker_id, now) > self.heartbeat_timeout:
                        reason = "heartbeat"
                    else:
                        continue
                    member = None if dispatch is None else tasks[dispatch.task_index].name
                    self._evict_worker(worker_id, reason, member)
                    busy.pop(worker_id, None)
                    if dispatch is not None and outcomes[dispatch.task_index] is None:
                        fail_or_retry(
                            dispatch.task_index,
                            f"worker {worker_id} {reason}"
                            + (
                                f" after {self.task_timeout:.0f}s deadline"
                                if reason == "deadline"
                                else ""
                            ),
                        )

                # 4. Bring evicted pool slots back under backoff.
                self._respawn_due_workers(now)

            makespan = time.perf_counter() - start
        except BaseException:
            # A failed run must not hang the caller a second time: waiting
            # for stuck tasks could block forever, so kill the pool outright
            # before the exception propagates.
            self._terminate()
            raise
        if _metrics.enabled:
            _TASKS_TOTAL.inc(len(outcomes))
            _TASK_SECONDS.inc(sum(outcome.seconds for outcome in outcomes))
            _LAST_MAKESPAN.set(makespan)
            _POOL_WORKERS.set(self.workers)
        logger.info(
            "trained %d members on %d workers: makespan %.2fs, member-seconds %.2fs"
            "%s",
            len(outcomes),
            self.workers,
            makespan,
            sum(outcome.seconds for outcome in outcomes),
            f", {retries} task retries" if retries else "",
        )
        return outcomes, makespan  # type: ignore[return-value]

    # ------------------------------------------------------------- cleanup
    def _close_queues(self) -> None:
        for queues in (self._request_queues, self._result_queues):
            for index, queue in enumerate(queues):
                if queue is None:
                    continue
                try:
                    queue.close()
                    queue.join_thread()
                except Exception:  # pragma: no cover - feeder already gone
                    pass
                queues[index] = None

    def _terminate(self) -> None:
        """Forcibly stop the workers (used on the error path, where waiting
        for in-flight tasks could block forever) and free the segments."""
        for process in self._processes:
            if process is not None and process.is_alive():
                process.kill()
        for index, process in enumerate(self._processes):
            if process is not None:
                process.join(timeout=10)
                self._processes[index] = None
        self._close_queues()
        self._started = False
        self._shared.close()

    def close(self) -> None:
        """Shut the pool down, then destroy the shared segments (idempotent)."""
        for worker_id, process in enumerate(self._processes):
            if process is None or not process.is_alive():
                continue
            try:
                self._request_queues[worker_id].put(None)
            except Exception:  # pragma: no cover
                pass
        for index, process in enumerate(self._processes):
            if process is None:
                continue
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=5)
            self._processes[index] = None
        self._close_queues()
        self._started = False
        self._shared.close()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass


def train_members(
    tasks: Sequence[MemberTask],
    x: np.ndarray,
    y: np.ndarray,
    workers: int,
    blas_threads_per_worker: int = 1,
    task_timeout: float = 900.0,
    max_task_retries: int = 2,
    on_outcome: Optional[Callable[[int, MemberOutcome], None]] = None,
) -> Tuple[List[MemberOutcome], float]:
    """One-shot convenience wrapper: publish, train, tear down.

    This is what the ensemble trainers call for a single parallel phase; the
    class form is for callers that run several batches against one published
    dataset.
    """
    with ParallelExecutor(
        {"x": np.asarray(x), "y": np.asarray(y)},
        workers=workers,
        blas_threads_per_worker=blas_threads_per_worker,
        task_timeout=task_timeout,
        max_task_retries=max_task_retries,
    ) as executor:
        return executor.train(tasks, on_outcome=on_outcome)

"""Lightweight HTTP front for the multi-worker serving pool.

``python -m repro serve`` exposes a prediction backend over a threaded
stdlib HTTP server — no third-party web stack.  Two backends share the same
endpoint surface:

* ``--mode pool`` (default) — a local
  :class:`~repro.parallel.serving.PoolPredictor`;
* ``--mode queue`` — a :class:`~repro.fleet.front.FleetFront`: requests are
  published as jobs on a partitioned broker and answered by
  ``repro fleet-worker`` consumers (local subprocesses managed and
  autoscaled by the front, plus any externally attached ones).

Endpoints
---------

* ``GET /healthz`` — health: ``{"status": "ok" | "degraded" | "down", ...}``.
  ``degraded`` means running below capacity (a pool worker died and its
  respawn is warming up; a fleet has fewer consumers attached than
  ``min_consumers``); ``down`` (HTTP 503) means nothing can answer.  Queue
  mode includes queue depth and redelivery counts.
* ``GET /info`` — the backend's ``info()`` (worker pids and restart counts
  in pool mode; broker/partition stats, consumer fleet, and autoscaler state
  in queue mode) plus ``uptime_seconds``.
* ``GET /metrics`` — Prometheus text exposition of the process-wide metrics
  registry: request counters and latency histograms, dispatch batch sizes,
  worker lifecycle counters, process gauges.  In queue mode the consumers
  ship registry deltas back with their acks, so this aggregates the fleet.
* ``POST /predict`` — body ``{"inputs": [[...], ...], "method": "average",
  "proba": false}``; answers ``{"predictions": [...]}`` (labels) or
  ``{"probabilities": [[...], ...]}`` when ``proba`` is true.  Outputs are
  bitwise identical to a single-process ``EnsemblePredictor`` on the same
  batch.  In queue mode, ``"async": true`` returns ``202 {"job_id": ...}``
  immediately instead of blocking.
* ``GET /result/<job_id>`` (queue mode) — poll an async job: ``200`` with
  the result once done (the result is consumed), ``202`` while pending,
  ``404`` for unknown/expired ids.
* ``POST /admin/swap`` — zero-downtime hot-swap onto a new artifact
  generation: body ``{}`` re-resolves the store's ``CURRENT`` pointer,
  ``{"generation": N}`` pins an explicit generation.  Pool mode rolls the
  workers one at a time; queue mode broadcasts a control message that every
  attached fleet consumer applies and acknowledges.  ``409`` while another
  swap is in progress.

Each HTTP connection is handled on its own thread
(``ThreadingHTTPServer``); the pool's dispatcher coalesces concurrent
requests into micro-batches across those threads.

Logging on the serve front is structured: one JSON object per line on
stderr (``repro.obs.events``), machine-ingestable without regexes; pass
``log_format="text"`` (CLI ``--log-format text``) for the classic format.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.obs.events import configure_logging, enable_events, log_event
from repro.obs.exposition import CONTENT_TYPE, render_prometheus
from repro.obs.metrics import get_registry
from repro.obs.process import update_process_metrics
from repro.parallel.serving import PoolPredictor
from repro.utils.logging import get_logger

logger = get_logger("parallel.server")

_metrics = get_registry()
_HTTP_REQUESTS = _metrics.counter(
    "repro_http_requests_total", "HTTP requests served.", ("path", "code")
)
_HTTP_LATENCY = _metrics.histogram(
    "repro_http_request_latency_seconds", "HTTP request handling latency.", ("path",)
)

#: Endpoints tracked as metric label values; anything else counts as "other"
#: so arbitrary probe paths cannot blow up the label cardinality.  Every
#: ``/result/<job_id>`` poll collapses into the single "/result" label.
_KNOWN_PATHS = ("/predict", "/admin/swap", "/info", "/healthz", "/metrics")


def _make_handler(pool, mode: str, started_at: float):
    queue_mode = mode == "queue"

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def _metric_path(self) -> str:
            if self.path.startswith("/result/"):
                return "/result"
            return self.path if self.path in _KNOWN_PATHS else "other"

        def _reply(self, status: int, payload: dict) -> None:
            body = json.dumps(payload).encode("utf-8")
            self._reply_raw(status, body, "application/json")

        def _reply_raw(self, status: int, body: bytes, content_type: str) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            _HTTP_REQUESTS.labels(self._metric_path(), str(status)).inc()

        def do_GET(self):  # noqa: N802 - stdlib API name
            with _HTTP_LATENCY.labels(self._metric_path()).time():
                if self.path == "/healthz":
                    health = pool.healthz()
                    self._reply(503 if health["status"] == "down" else 200, health)
                elif self.path == "/info":
                    info = pool.info()
                    info["mode"] = mode
                    info["uptime_seconds"] = round(time.monotonic() - started_at, 3)
                    self._reply(200, info)
                elif self.path == "/metrics":
                    update_process_metrics()
                    body = render_prometheus().encode("utf-8")
                    self._reply_raw(200, body, CONTENT_TYPE)
                elif self.path.startswith("/result/"):
                    self._get_result(self.path[len("/result/"):])
                else:
                    self._reply(404, {"error": f"unknown path {self.path!r}"})

        def _get_result(self, job_id: str) -> None:
            if not queue_mode:
                self._reply(
                    404, {"error": "/result is only available in queue mode"}
                )
                return
            status, proba, error, want_proba = pool.poll(job_id)
            if status == "unknown":
                self._reply(
                    404,
                    {"error": f"unknown job id {job_id!r} (expired or fetched?)"},
                )
            elif status == "pending":
                self._reply(202, {"job_id": job_id, "status": "pending"})
            elif error is not None:
                self._reply(500, {"job_id": job_id, "error": error})
            elif want_proba:
                self._reply(
                    200, {"job_id": job_id, "probabilities": proba.tolist()}
                )
            else:
                self._reply(
                    200,
                    {"job_id": job_id, "predictions": proba.argmax(axis=1).tolist()},
                )

        def _admin_swap(self) -> None:
            try:
                length = int(self.headers.get("Content-Length", "0"))
                body = json.loads(self.rfile.read(length) or b"{}")
                generation = body.get("generation")
                if generation is not None:
                    generation = int(generation)
                summary = pool.swap(generation=generation)
            except (json.JSONDecodeError, TypeError, ValueError, FileNotFoundError) as exc:
                self._reply(400, {"error": str(exc)})
            except RuntimeError as exc:
                if "already in progress" in str(exc):
                    self._reply(409, {"error": str(exc)})
                else:
                    self._reply(400, {"error": str(exc)})
            else:
                self._reply(200, summary)

        def do_POST(self):  # noqa: N802 - stdlib API name
            with _HTTP_LATENCY.labels(self._metric_path()).time():
                if self.path == "/admin/swap":
                    self._admin_swap()
                    return
                if self.path != "/predict":
                    self._reply(404, {"error": f"unknown path {self.path!r}"})
                    return
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                    body = json.loads(self.rfile.read(length) or b"{}")
                    inputs = body.get("inputs")
                    if inputs is None:
                        raise ValueError('request body needs an "inputs" array')
                    x = np.asarray(inputs, dtype=np.float64)
                    method = body.get("method")
                    want_proba = bool(body.get("proba", False))
                    if body.get("async", False):
                        if not queue_mode:
                            raise ValueError(
                                'async predict ("async": true) needs '
                                "--mode queue"
                            )
                        job_id = pool.submit(x, method=method, want_proba=want_proba)
                        self._reply(
                            202,
                            {
                                "job_id": job_id,
                                "status": "pending",
                                "result_url": f"/result/{job_id}",
                            },
                        )
                    elif want_proba:
                        proba = pool.predict_proba(x, method=method)
                        self._reply(200, {"probabilities": proba.tolist()})
                    else:
                        labels = pool.predict(x, method=method)
                        self._reply(200, {"predictions": labels.tolist()})
                except (ValueError, TypeError, RuntimeError, json.JSONDecodeError) as exc:
                    self._reply(400, {"error": str(exc)})

        def log_message(self, fmt, *args):  # pragma: no cover - quiet server
            logger.debug("%s - %s", self.address_string(), fmt % args)

    return Handler


def run_server(
    artifact: Union[str, Path],
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int = 2,
    method: str = "average",
    batch_size: int = 256,
    max_batch: int = 1024,
    max_wait_ms: float = 2.0,
    restart_workers: bool = True,
    transport: str = "shm",
    log_format: str = "json",
    log_file: Optional[Union[str, Path]] = None,
    ready_event: Optional[threading.Event] = None,
    mode: str = "pool",
    partitions: int = 4,
    min_consumers: int = 1,
    max_consumers: int = 4,
    consumer_workers: Optional[int] = None,
    visibility_timeout: float = 30.0,
    fleet_port: int = 0,
    fleet_authkey: str = "repro-fleet",
    autoscale: bool = True,
    autoscale_cooldown: float = 10.0,
    autoscale_interval: float = 1.0,
    up_queue_depth: float = 4.0,
    down_queue_depth: float = 1.0,
    up_p99_seconds: float = 2.0,
    down_p99_seconds: float = 0.5,
    spawn_consumers: bool = True,
    startup_timeout: float = 180.0,
) -> int:
    """Serve ``artifact`` until SIGINT/SIGTERM; returns the process exit code.

    Prints one machine-readable JSON line (``{"event": "serving", ...}``)
    once the backend is warm and the socket is bound — with ``--port 0``
    this is how callers learn the ephemeral port (and, in queue mode, the
    broker address fleet workers attach to).  Lifecycle transitions (start,
    worker death/respawn, stop) are emitted as structured events on stderr;
    ``log_file`` mirrors them into a size-rotated JSON file.

    ``mode="queue"`` swaps the local pool for a
    :class:`~repro.fleet.front.FleetFront` and waits up to
    ``startup_timeout`` for ``min_consumers`` consumers to attach before
    announcing readiness; ``spawn_consumers=False`` skips both the local
    consumer subprocesses and the wait, for fronts served purely by external
    ``repro fleet-worker`` processes.
    """
    from repro import __version__

    if mode not in ("pool", "queue"):
        raise ValueError(f"unknown serve mode {mode!r}; expected 'pool' or 'queue'")
    configure_logging(fmt=log_format, force=True, log_file=log_file)
    enable_events()
    started_at = time.monotonic()
    if mode == "queue":
        from repro.fleet.front import FleetFront

        pool = FleetFront(
            artifact,
            partitions=partitions,
            visibility_timeout=visibility_timeout,
            method=method,
            min_consumers=min_consumers,
            max_consumers=max_consumers,
            consumer_workers=workers if consumer_workers is None else consumer_workers,
            batch_size=batch_size,
            max_batch=max_batch,
            transport=transport,
            spawn_local=spawn_consumers,
            autoscale=autoscale,
            autoscale_cooldown=autoscale_cooldown,
            autoscale_interval=autoscale_interval,
            up_queue_depth=up_queue_depth,
            down_queue_depth=down_queue_depth,
            up_p99_seconds=up_p99_seconds,
            down_p99_seconds=down_p99_seconds,
            host=host,
            fleet_port=fleet_port,
            fleet_authkey=fleet_authkey,
            log_format=log_format,
            log_file=log_file,
        )
        if spawn_consumers:
            try:
                pool.wait_ready(timeout=startup_timeout)
            except BaseException:
                pool.close()
                raise
    else:
        pool = PoolPredictor(
            artifact,
            workers=workers,
            method=method,
            batch_size=batch_size,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            restart_workers=restart_workers,
            transport=transport,
        )
    try:
        server = ThreadingHTTPServer(
            (host, int(port)), _make_handler(pool, mode, started_at)
        )
    except BaseException:
        pool.close()
        raise
    bound_port = server.server_address[1]

    def _shutdown(*_args):
        # serve_forever blocks the main thread; shutdown() must come from
        # another thread or it deadlocks.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous_handlers = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous_handlers[sig] = signal.signal(sig, _shutdown)
        except ValueError:  # pragma: no cover - non-main thread (tests)
            pass

    banner = {
        "event": "serving",
        "version": __version__,
        "mode": mode,
        "url": f"http://{host}:{bound_port}",
        "host": host,
        "port": bound_port,
        "workers": workers,
        "method": method,
        "transport": transport,
        "artifact": str(artifact),
    }
    if mode == "queue":
        banner["broker"] = (
            f"{pool.broker_address[0]}:{pool.broker_address[1]}"
        )
    print(json.dumps(banner), flush=True)
    log_event(
        "serve.started",
        url=f"http://{host}:{bound_port}",
        version=__version__,
        mode=mode,
        workers=workers,
        artifact=str(artifact),
        restart_workers=restart_workers,
        transport=transport,
    )
    if ready_event is not None:
        ready_event.set()
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
        pool.close()
        for sig, handler in previous_handlers.items():
            try:
                signal.signal(sig, handler)
            except ValueError:  # pragma: no cover
                pass
        log_event("serve.stopped", artifact=str(artifact))
        print(json.dumps({"event": "stopped"}), flush=True)
    return 0

"""Lightweight HTTP front for the multi-worker serving pool.

``python -m repro serve`` builds a :class:`~repro.parallel.serving.PoolPredictor`
and exposes it over a threaded stdlib HTTP server — no third-party web stack.

Endpoints
---------

* ``GET /healthz`` — health: ``{"status": "ok" | "degraded" | "down", ...}``.
  ``degraded`` means the supervisor is running below capacity (e.g. a worker
  died and its respawn is still warming up); ``down`` (HTTP 503) means no
  worker can answer.
* ``GET /info`` — the pool's :meth:`~repro.parallel.serving.PoolPredictor.info`
  (including worker pids and restart counts).
* ``GET /metrics`` — Prometheus text exposition of the process-wide metrics
  registry: request counters and latency histograms, dispatch batch sizes,
  worker lifecycle counters, process gauges.
* ``POST /predict`` — body ``{"inputs": [[...], ...], "method": "average",
  "proba": false}``; answers ``{"predictions": [...]}`` (labels) or
  ``{"probabilities": [[...], ...]}`` when ``proba`` is true.  Outputs are
  bitwise identical to a single-process ``EnsemblePredictor`` on the same
  batch.

Each HTTP connection is handled on its own thread
(``ThreadingHTTPServer``); the pool's dispatcher coalesces concurrent
requests into micro-batches across those threads.

Logging on the serve front is structured: one JSON object per line on
stderr (``repro.obs.events``), machine-ingestable without regexes; pass
``log_format="text"`` (CLI ``--log-format text``) for the classic format.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.obs.events import configure_logging, enable_events, log_event
from repro.obs.exposition import CONTENT_TYPE, render_prometheus
from repro.obs.metrics import get_registry
from repro.obs.process import update_process_metrics
from repro.parallel.serving import PoolPredictor
from repro.utils.logging import get_logger

logger = get_logger("parallel.server")

_metrics = get_registry()
_HTTP_REQUESTS = _metrics.counter(
    "repro_http_requests_total", "HTTP requests served.", ("path", "code")
)
_HTTP_LATENCY = _metrics.histogram(
    "repro_http_request_latency_seconds", "HTTP request handling latency.", ("path",)
)

#: Endpoints tracked as metric label values; anything else counts as "other"
#: so arbitrary probe paths cannot blow up the label cardinality.
_KNOWN_PATHS = ("/predict", "/info", "/healthz", "/metrics")


def _make_handler(pool: PoolPredictor):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def _metric_path(self) -> str:
            return self.path if self.path in _KNOWN_PATHS else "other"

        def _reply(self, status: int, payload: dict) -> None:
            body = json.dumps(payload).encode("utf-8")
            self._reply_raw(status, body, "application/json")

        def _reply_raw(self, status: int, body: bytes, content_type: str) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            _HTTP_REQUESTS.labels(self._metric_path(), str(status)).inc()

        def do_GET(self):  # noqa: N802 - stdlib API name
            with _HTTP_LATENCY.labels(self._metric_path()).time():
                if self.path == "/healthz":
                    health = pool.healthz()
                    self._reply(503 if health["status"] == "down" else 200, health)
                elif self.path == "/info":
                    self._reply(200, pool.info())
                elif self.path == "/metrics":
                    update_process_metrics()
                    body = render_prometheus().encode("utf-8")
                    self._reply_raw(200, body, CONTENT_TYPE)
                else:
                    self._reply(404, {"error": f"unknown path {self.path!r}"})

        def do_POST(self):  # noqa: N802 - stdlib API name
            with _HTTP_LATENCY.labels(self._metric_path()).time():
                if self.path != "/predict":
                    self._reply(404, {"error": f"unknown path {self.path!r}"})
                    return
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                    body = json.loads(self.rfile.read(length) or b"{}")
                    inputs = body.get("inputs")
                    if inputs is None:
                        raise ValueError('request body needs an "inputs" array')
                    x = np.asarray(inputs, dtype=np.float64)
                    method = body.get("method")
                    if body.get("proba", False):
                        proba = pool.predict_proba(x, method=method)
                        self._reply(200, {"probabilities": proba.tolist()})
                    else:
                        labels = pool.predict(x, method=method)
                        self._reply(200, {"predictions": labels.tolist()})
                except (ValueError, TypeError, RuntimeError, json.JSONDecodeError) as exc:
                    self._reply(400, {"error": str(exc)})

        def log_message(self, fmt, *args):  # pragma: no cover - quiet server
            logger.debug("%s - %s", self.address_string(), fmt % args)

    return Handler


def run_server(
    artifact: Union[str, Path],
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int = 2,
    method: str = "average",
    batch_size: int = 256,
    max_batch: int = 1024,
    max_wait_ms: float = 2.0,
    restart_workers: bool = True,
    transport: str = "shm",
    log_format: str = "json",
    log_file: Optional[Union[str, Path]] = None,
    ready_event: Optional[threading.Event] = None,
) -> int:
    """Serve ``artifact`` until SIGINT/SIGTERM; returns the process exit code.

    Prints one machine-readable JSON line (``{"event": "serving", ...}``)
    once the pool is warm and the socket is bound — with ``--port 0`` this is
    how callers learn the ephemeral port.  Lifecycle transitions (start,
    worker death/respawn, stop) are emitted as structured events on stderr;
    ``log_file`` mirrors them into a size-rotated JSON file.
    """
    configure_logging(fmt=log_format, force=True, log_file=log_file)
    enable_events()
    pool = PoolPredictor(
        artifact,
        workers=workers,
        method=method,
        batch_size=batch_size,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        restart_workers=restart_workers,
        transport=transport,
    )
    try:
        server = ThreadingHTTPServer((host, int(port)), _make_handler(pool))
    except BaseException:
        pool.close()
        raise
    bound_port = server.server_address[1]

    def _shutdown(*_args):
        # serve_forever blocks the main thread; shutdown() must come from
        # another thread or it deadlocks.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous_handlers = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous_handlers[sig] = signal.signal(sig, _shutdown)
        except ValueError:  # pragma: no cover - non-main thread (tests)
            pass

    print(
        json.dumps(
            {
                "event": "serving",
                "url": f"http://{host}:{bound_port}",
                "host": host,
                "port": bound_port,
                "workers": workers,
                "method": method,
                "transport": transport,
                "artifact": str(artifact),
            }
        ),
        flush=True,
    )
    log_event(
        "serve.started",
        url=f"http://{host}:{bound_port}",
        workers=workers,
        artifact=str(artifact),
        restart_workers=restart_workers,
        transport=transport,
    )
    if ready_event is not None:
        ready_event.set()
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
        pool.close()
        for sig, handler in previous_handlers.items():
            try:
                signal.signal(sig, handler)
            except ValueError:  # pragma: no cover
                pass
        log_event("serve.stopped", artifact=str(artifact))
        print(json.dumps({"event": "stopped"}), flush=True)
    return 0

"""Zero-copy request/response arenas for the serving pool (``transport="shm"``).

The pickle transport ships every request batch and every probability matrix
*through* the worker queues: the dispatcher pickles the rows, the pipe copies
them kernel-side, the worker unpickles them — and the reply makes the same
trip in reverse.  For large batches that is the dominant serving cost.

:class:`ShmArena` removes the tensor bytes from the queues entirely.  Each
serving worker owns one POSIX shared-memory segment (created through the
:mod:`repro.parallel.shared_data` publish/attach machinery) laid out as two
regions::

    [0, request_bytes)                       request ring  (dispatcher writes)
    [request_bytes, request_bytes+result_bytes)  result ring (worker writes)

The dispatcher copies request rows **once** into the request region; the
worker maps the same segment, runs ``predict_proba`` directly on zero-copy
views of those rows, and writes the probabilities into a result region the
dispatcher reserved for it.  The queues carry only fixed-size descriptors
(request ids, offsets, shapes, dtypes) — a few hundred bytes regardless of
batch size.

Single-producer / single-consumer, lock-free across processes
-------------------------------------------------------------

Each arena has exactly one writer per region on each side of the process
boundary: the dispatcher thread is the only writer of the request region and
the worker process is the only writer of the result region.  Cross-process
visibility is sequenced by the descriptor queues (a descriptor is enqueued
only after its bytes are fully written), so the shared memory itself needs no
locks — the worker never blocks the dispatcher and vice versa.  The small
parent-side *bookkeeping* (which byte ranges are in flight) is guarded by an
ordinary ``threading.Lock`` inside :class:`_RegionAllocator`; no worker ever
touches it, so a SIGKILLed worker cannot leave it held.

Crash semantics
---------------

A worker killed mid-slot-write corrupts nothing the parent trusts: the
descriptor for that dispatch never arrives, the supervisor fails the
in-flight futures on death, and the respawn path **retires** the whole arena
(unlinks the ``/dev/shm`` name immediately) and hands the successor a fresh
one — no allocator state survives into the new generation.  Result views
already delivered to clients keep the retired segment mapped until the last
view is garbage-collected; only then is the mapping closed (the name is long
gone, so the leak sweeps stay clean).
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.parallel.shared_data import create_segment
from repro.utils.logging import get_logger

logger = get_logger("parallel.shm_transport")

#: Every region handed out is aligned to this many bytes so numpy views onto
#: the arena start on cache-line boundaries regardless of request dtype.
ALIGNMENT = 64

#: Worst-case element width the result reservation assumes (float64 — the
#: widest dtype the prediction paths produce).
RESULT_ITEMSIZE = 8


def _align(nbytes: int) -> int:
    return (int(nbytes) + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


@dataclass(frozen=True)
class ArenaMeta:
    """Everything a worker needs to attach its arena (tiny and picklable)."""

    name: str
    request_bytes: int
    result_bytes: int
    generation: int


class _RegionAllocator:
    """First-fit free-list allocator over ``[base, base + capacity)``.

    Regions are allocated per *dispatch* (requests) or per *request*
    (results), so the call rate is low; a plain interval free list with
    neighbour coalescing is plenty.  Frees arrive from arbitrary threads
    (the collector, client-side view finalizers), hence the lock.
    """

    def __init__(self, base: int, capacity: int):
        self.base = int(base)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._free: List[Tuple[int, int]] = [(self.base, self.capacity)]
        self._allocated: Dict[int, int] = {}

    def alloc(self, nbytes: int) -> Optional[int]:
        """Reserve an aligned region; ``None`` when nothing fits (the caller
        falls back to the pickle transport for that dispatch)."""
        need = _align(max(1, nbytes))
        with self._lock:
            for index, (offset, size) in enumerate(self._free):
                if size < need:
                    continue
                if size == need:
                    self._free.pop(index)
                else:
                    self._free[index] = (offset + need, size - need)
                self._allocated[offset] = need
                return offset
        return None

    def free(self, offset: int) -> bool:
        """Release a region, coalescing with free neighbours.  Unknown
        offsets are ignored (stale descriptors from a pre-respawn worker
        generation must never corrupt the successor's book-keeping)."""
        with self._lock:
            size = self._allocated.pop(offset, None)
            if size is None:
                return False
            start, end = offset, offset + size
            merged: List[Tuple[int, int]] = []
            inserted = False
            for free_offset, free_size in self._free:
                if free_offset + free_size == start:
                    start = free_offset
                elif free_offset == end:
                    end = free_offset + free_size
                else:
                    if not inserted and free_offset > end:
                        merged.append((start, end - start))
                        inserted = True
                    merged.append((free_offset, free_size))
            if not inserted:
                merged.append((start, end - start))
            merged.sort()
            self._free = merged
            return True

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return sum(self._allocated.values())

    @property
    def inflight_regions(self) -> int:
        with self._lock:
            return len(self._allocated)


class ShmArena:
    """Parent-side handle of one worker's request/result arena.

    Sized at pool start from the dispatch envelope: ``slots`` concurrent
    dispatches of up to ``max_batch`` rows each.  A single oversized request
    (rows > ``max_batch``) simply allocates several slots' worth of
    contiguous bytes — multi-slot coalescing falls out of byte-granularity
    allocation for free.
    """

    def __init__(
        self,
        worker_id: int,
        max_batch: int,
        feature_size: int,
        num_classes: int,
        slots: int = 4,
        generation: int = 0,
        request_itemsize: int = 8,
    ):
        if slots < 1:
            raise ValueError("arena needs at least one slot")
        slot_request = _align(max_batch * feature_size * request_itemsize)
        slot_result = _align(max_batch * num_classes * RESULT_ITEMSIZE)
        # Per-request alignment padding can eat into a nominally exact fit;
        # one extra aligned unit per slot keeps "slots × max_batch rows"
        # honestly representable.
        self.request_bytes = slots * (slot_request + ALIGNMENT)
        self.result_bytes = slots * (slot_result + ALIGNMENT)
        self.worker_id = int(worker_id)
        self.slots = int(slots)
        self.generation = int(generation)
        self._segment = create_segment(
            self.request_bytes + self.result_bytes,
            tag=f"arena-w{worker_id}-g{generation}",
        )
        self._requests = _RegionAllocator(0, self.request_bytes)
        self._results = _RegionAllocator(self.request_bytes, self.result_bytes)
        self._lock = threading.Lock()
        self._exported_views = 0
        self._retired = False
        self._closed = False

    # ----------------------------------------------------------- descriptors
    @property
    def meta(self) -> ArenaMeta:
        return ArenaMeta(
            name=self._segment.name,
            request_bytes=self.request_bytes,
            result_bytes=self.result_bytes,
            generation=self.generation,
        )

    @property
    def total_bytes(self) -> int:
        return self.request_bytes + self.result_bytes

    def stats(self) -> Dict[str, object]:
        """Occupancy snapshot for ``/info`` (and tests)."""
        with self._lock:
            exported = self._exported_views
        return {
            "generation": self.generation,
            "slots": self.slots,
            "total_bytes": self.total_bytes,
            "request_capacity_bytes": self.request_bytes,
            "request_used_bytes": self._requests.used_bytes,
            "result_capacity_bytes": self.result_bytes,
            "result_used_bytes": self._results.used_bytes,
            "inflight_dispatches": self._requests.inflight_regions,
            "exported_result_views": exported,
        }

    # ------------------------------------------------------------ dispatcher
    def alloc_request(self, nbytes: int) -> Optional[int]:
        return None if self._retired else self._requests.alloc(nbytes)

    def alloc_result(self, nbytes: int) -> Optional[int]:
        return None if self._retired else self._results.alloc(nbytes)

    def free_request(self, offset: int) -> bool:
        return self._requests.free(offset)

    def free_result(self, offset: int) -> bool:
        return self._results.free(offset)

    def write_request(self, offset: int, array: np.ndarray) -> None:
        """Copy one request's rows into the arena — the single copy the shm
        transport performs on the inbound path."""
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=self._segment.buf, offset=offset
        )
        np.copyto(view, array, casting="no")
        del view

    # -------------------------------------------------------------- collector
    def take_result_view(
        self, offset: int, shape: Tuple[int, ...], dtype: str
    ) -> np.ndarray:
        """Zero-copy view of a worker-written result region.

        The region stays reserved until the returned array is garbage
        collected (a ``weakref.finalize`` hook frees it), so the client can
        hold the probabilities as long as it likes without the ring
        recycling the bytes underneath it.
        """
        view = np.ndarray(
            tuple(shape), dtype=np.dtype(dtype), buffer=self._segment.buf, offset=offset
        )
        with self._lock:
            self._exported_views += 1
        weakref.finalize(view, self._release_result_region, offset)
        return view

    def _release_result_region(self, offset: int) -> None:
        self._results.free(offset)
        with self._lock:
            self._exported_views -= 1
            close_now = self._retired and self._exported_views == 0
        if close_now:
            self._close_segment()

    # -------------------------------------------------------------- lifecycle
    def retire(self) -> None:
        """Tear the arena down: unlink the ``/dev/shm`` name *now* (no leak
        regardless of what else happens), close the mapping as soon as the
        last exported result view is gone.  Idempotent."""
        with self._lock:
            if self._retired:
                return
            self._retired = True
            close_now = self._exported_views == 0
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        if close_now:
            self._close_segment()

    def _close_segment(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - a view resurfaced; the name
            # is already unlinked, so the worst case is a mapping that lives
            # until the exporting array dies.
            with self._lock:
                self._closed = False

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            self.retire()
        except Exception:
            pass

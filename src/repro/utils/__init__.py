"""Shared utilities: seeded RNG management, timing, and lightweight logging."""

from repro.utils.rng import RngManager, as_rng, derive_seed
from repro.utils.timing import Timer, WallClockAccumulator
from repro.utils.logging import get_logger

__all__ = [
    "RngManager",
    "as_rng",
    "derive_seed",
    "Timer",
    "WallClockAccumulator",
    "get_logger",
]

"""Shared utilities: seeded RNG management, timing, BLAS thread-pool control,
and lightweight logging."""

from repro.utils.rng import RngManager, as_rng, derive_seed
from repro.utils.timing import Timer, WallClockAccumulator
from repro.utils.parallel import apply_blas_thread_cap, blas_thread_limit, cpu_count
from repro.utils.logging import get_logger

__all__ = [
    "RngManager",
    "as_rng",
    "derive_seed",
    "Timer",
    "WallClockAccumulator",
    "blas_thread_limit",
    "apply_blas_thread_cap",
    "cpu_count",
    "get_logger",
]

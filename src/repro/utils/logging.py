"""Logger access for the library (configuration lives in ``repro.obs.events``).

Historically this module carried its own ad-hoc root-logger setup; the
observability subsystem replaced that with a single shared configuration
(:func:`repro.obs.events.configure_logging`) that supports both the classic
text format and structured JSON event lines.  ``get_logger`` keeps its
long-standing contract: loggers are namespaced under ``repro`` and the
library-wide verbosity is controlled by ``REPRO_LOG_LEVEL`` (default
``WARNING``); the output format additionally honours ``REPRO_LOG_FORMAT``
(``text`` | ``json``).
"""

from __future__ import annotations

import logging

from repro.obs.events import configure_logging


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``.

    Ensures the shared root handler is installed (idempotent), then hands out
    the named child logger.
    """
    configure_logging()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)

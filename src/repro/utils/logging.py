"""Lightweight logging configuration shared across the library."""

from __future__ import annotations

import logging
import os

_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"
_CONFIGURED = False


def _configure_root() -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    level_name = os.environ.get("REPRO_LOG_LEVEL", "WARNING").upper()
    level = getattr(logging, level_name, logging.WARNING)
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(_FORMAT))
    root = logging.getLogger("repro")
    root.setLevel(level)
    if not root.handlers:
        root.addHandler(handler)
    _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``.

    The verbosity of the whole library is controlled by the
    ``REPRO_LOG_LEVEL`` environment variable (default ``WARNING``).
    """
    _configure_root()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)

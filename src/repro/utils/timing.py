"""Wall-clock timing helpers used by the training-cost accounting layer.

Besides the per-network accounting (:class:`Timer`,
:class:`WallClockAccumulator`), this module hosts the *compute-phase*
registry: hot-path layers report how long they spend in each internal phase
(``conv.im2col``, ``conv.gemm``, ``conv.bias``, ``conv.col2im``) so the cost
ledger can split training time into data movement versus BLAS compute.  The
registry is off unless a caller enables it via :func:`enable_phase_timing` or
:func:`capture_phase_timings`; note the ensemble trainers *do* enable it for
their fits by default (a few ``perf_counter`` pairs per conv call — well
under a percent of a conv's cost; pass ``collect_phase_timings=False`` to
train fully uninstrumented).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


class Timer:
    """A simple start/stop wall-clock timer.

    Can be used directly or as a context manager::

        with Timer() as t:
            work()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class WallClockAccumulator:
    """Accumulates wall-clock time under named categories.

    Used by the ensemble trainers to split total training time into
    per-network contributions (the breakdown shown in Figure 5b of the paper).
    """

    totals: Dict[str, float] = field(default_factory=dict)

    def add(self, category: str, seconds: float) -> None:
        self.totals[category] = self.totals.get(category, 0.0) + float(seconds)

    @contextmanager
    def measure(self, category: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(category, time.perf_counter() - start)

    @property
    def total(self) -> float:
        return float(sum(self.totals.values()))

    def as_dict(self) -> Dict[str, float]:
        return dict(self.totals)

    def merge(self, other: "WallClockAccumulator") -> "WallClockAccumulator":
        merged = WallClockAccumulator(dict(self.totals))
        for key, value in other.totals.items():
            merged.add(key, value)
        return merged


# ---------------------------------------------------------------------------
# Compute-phase registry (opt-in, consumed by the cost ledger)
# ---------------------------------------------------------------------------

_phase_accumulator: Optional[WallClockAccumulator] = None


def phase_timing_enabled() -> bool:
    """Whether hot-path layers should report per-phase timings."""
    return _phase_accumulator is not None


def enable_phase_timing() -> WallClockAccumulator:
    """Turn the phase registry on (idempotent); returns the accumulator."""
    global _phase_accumulator
    if _phase_accumulator is None:
        _phase_accumulator = WallClockAccumulator()
    return _phase_accumulator


def disable_phase_timing() -> None:
    """Turn the phase registry off and drop accumulated totals."""
    global _phase_accumulator
    _phase_accumulator = None


def record_phase(category: str, seconds: float) -> None:
    """Report ``seconds`` spent in ``category``; no-op while disabled."""
    acc = _phase_accumulator
    if acc is not None:
        acc.add(category, seconds)


def phase_timings() -> Dict[str, float]:
    """Snapshot of the accumulated per-phase totals (empty while disabled)."""
    acc = _phase_accumulator
    return dict(acc.totals) if acc is not None else {}


@contextmanager
def capture_phase_timings() -> Iterator[Dict[str, float]]:
    """Enable phase timing for the block and capture the *delta* it produced.

    The yielded dict is filled in when the block exits, so hold on to the
    reference::

        with capture_phase_timings() as phases:
            trainer.fit(model, x, y)
        print(phases)  # {"conv.gemm": 1.23, "conv.im2col": 0.45, ...}

    Nested captures work (each sees only its own delta); if the registry was
    already enabled by an outer caller it is left enabled on exit.
    """
    was_enabled = phase_timing_enabled()
    acc = enable_phase_timing()
    before = dict(acc.totals)
    captured: Dict[str, float] = {}
    try:
        yield captured
    finally:
        for key, value in acc.totals.items():
            delta = value - before.get(key, 0.0)
            if delta > 0.0:
                captured[key] = delta
        if not was_enabled:
            disable_phase_timing()

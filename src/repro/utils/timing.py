"""Wall-clock timing helpers used by the training-cost accounting layer."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


class Timer:
    """A simple start/stop wall-clock timer.

    Can be used directly or as a context manager::

        with Timer() as t:
            work()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class WallClockAccumulator:
    """Accumulates wall-clock time under named categories.

    Used by the ensemble trainers to split total training time into
    per-network contributions (the breakdown shown in Figure 5b of the paper).
    """

    totals: Dict[str, float] = field(default_factory=dict)

    def add(self, category: str, seconds: float) -> None:
        self.totals[category] = self.totals.get(category, 0.0) + float(seconds)

    @contextmanager
    def measure(self, category: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(category, time.perf_counter() - start)

    @property
    def total(self) -> float:
        return float(sum(self.totals.values()))

    def as_dict(self) -> Dict[str, float]:
        return dict(self.totals)

    def merge(self, other: "WallClockAccumulator") -> "WallClockAccumulator":
        merged = WallClockAccumulator(dict(self.totals))
        for key, value in other.totals.items():
            merged.add(key, value)
        return merged

"""Deterministic random-number management.

Every stochastic component in the library (weight initialisation, bagging,
widening-unit selection, synthetic data generation) receives an explicit
``numpy.random.Generator`` or an integer seed.  This module centralises the
conversion and provides a small hierarchical seed-derivation helper so that
experiments are reproducible bit-for-bit while sub-components still receive
statistically independent streams.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    The derivation is stable across processes and platforms (it hashes the
    string representation of the labels with SHA-256), so e.g. the bagged
    sample for ensemble member 17 is identical on every run with the same
    base seed.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little") % (2**63 - 1)


class RngManager:
    """Hierarchical generator factory rooted at a single base seed.

    Example
    -------
    >>> rngs = RngManager(7)
    >>> init_rng = rngs.generator("init", "member", 3)
    >>> bag_rng = rngs.generator("bagging", 3)
    """

    def __init__(self, base_seed: Optional[int] = 0):
        if base_seed is None:
            base_seed = int(np.random.default_rng().integers(0, 2**31 - 1))
        self.base_seed = int(base_seed)

    def seed(self, *labels: object) -> int:
        """Return the derived integer seed for ``labels``."""
        return derive_seed(self.base_seed, *labels)

    def generator(self, *labels: object) -> np.random.Generator:
        """Return a fresh generator seeded from ``labels``."""
        return np.random.default_rng(self.seed(*labels))

    def spawn(self, *labels: object) -> "RngManager":
        """Return a child manager whose base seed is derived from ``labels``."""
        return RngManager(self.seed(*labels))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RngManager(base_seed={self.base_seed})"

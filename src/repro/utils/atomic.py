"""Crash-safe file writes: write to a temp file, fsync, then rename.

Every artifact writer in the library goes through these helpers so that a
``kill -9`` (or power loss) at any instant leaves either the old file, the
new file, or no file — never a half-written one.  ``os.replace`` is atomic
on POSIX within one filesystem, and the temp file lives next to its target
so the rename never crosses a mount boundary.

The directory entry itself is fsynced after the rename (best effort — some
filesystems refuse ``open()`` on directories), so the new name survives a
crash immediately after the call returns.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Union

__all__ = ["atomic_writer", "atomic_write_bytes", "atomic_write_text", "fsync_dir"]


def fsync_dir(path: Union[str, Path]) -> None:
    """Flush directory metadata (new/renamed entries) to disk, best effort."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs refuses dir fsync
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_writer(path: Union[str, Path], mode: str = "wb") -> Iterator[IO]:
    """Context manager: yield a temp-file handle; publish it atomically.

    The data is written to ``<path>.tmp.<pid>`` in the target directory,
    flushed and fsynced on clean exit, then moved over ``path`` with
    ``os.replace``.  On an exception the temp file is removed and the target
    is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f"{path.name}.tmp.{os.getpid()}"
    handle = open(tmp, mode)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(tmp, path)
    except BaseException:
        handle.close()
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - already gone
            pass
        raise
    fsync_dir(path.parent)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``."""
    path = Path(path)
    with atomic_writer(path, "wb") as handle:
        handle.write(data)
    return path


def atomic_write_text(path: Union[str, Path], text: str, encoding: str = "utf-8") -> Path:
    """Atomically replace ``path`` with ``text``."""
    return atomic_write_bytes(path, text.encode(encoding))

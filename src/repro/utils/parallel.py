"""BLAS thread-pool control for multi-process execution.

When ``repro.parallel`` fans ensemble-member training out over N worker
processes, every worker's BLAS library (OpenBLAS / MKL / BLIS behind numpy)
would by default spin up one thread per core — N workers x C BLAS threads on a
C-core machine oversubscribes the CPU badly and can make the "parallel" run
slower than the serial one.  The fix is to cap each worker's BLAS pool so that
``workers x blas_threads_per_worker <= cores``.

BLAS libraries size their thread pools from environment variables **read at
library load time**, so the only reliable, dependency-free cap is to set the
environment *before* the worker interpreter imports numpy.  With the ``spawn``
start method the child inherits the parent's environment at exec time, which
is exactly what :func:`blas_thread_limit` exploits: the executor wraps worker
start-up in the context manager, the children import numpy under the capped
environment, and the parent's own (already initialised) BLAS pool is left
untouched.

:func:`apply_blas_thread_cap` is the best-effort in-process complement (used
inside already-running workers): it goes through ``threadpoolctl`` when that
package happens to be installed and silently degrades to an env-var-only cap
(affecting grandchildren, not the current process) otherwise.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: Environment variables honoured by the BLAS/OpenMP implementations numpy
#: commonly links against.  Setting all of them is idempotent and harmless.
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "BLIS_NUM_THREADS",
)


def cpu_count() -> int:
    """Usable CPU count (respects the process affinity mask when set)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@contextmanager
def blas_thread_limit(threads: int) -> Iterator[None]:
    """Cap the BLAS thread pool of *subsequently spawned* processes.

    Sets every variable in :data:`BLAS_ENV_VARS` to ``threads`` for the
    duration of the block and restores the previous values afterwards.
    Processes started (with the ``spawn`` method) inside the block inherit the
    capped environment before their numpy import, which is the only point at
    which the cap is guaranteed to take effect.  The calling process's own
    BLAS pool is not resized.
    """
    if threads < 1:
        raise ValueError("threads must be at least 1")
    saved: Dict[str, Optional[str]] = {var: os.environ.get(var) for var in BLAS_ENV_VARS}
    for var in BLAS_ENV_VARS:
        os.environ[var] = str(int(threads))
    try:
        yield
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


def apply_blas_thread_cap(threads: int) -> bool:
    """Best-effort cap of the *current* process's BLAS pool.

    Returns ``True`` when a runtime cap was actually applied (requires the
    optional ``threadpoolctl`` package).  Without it, the env variables are
    still exported so any further child processes inherit the cap; the
    current process's already-initialised pool keeps its size — which is why
    :class:`~repro.parallel.executor.ParallelExecutor` additionally sets the
    environment *before* spawning (see :func:`blas_thread_limit`).
    """
    if threads < 1:
        raise ValueError("threads must be at least 1")
    for var in BLAS_ENV_VARS:
        os.environ[var] = str(int(threads))
    try:  # pragma: no cover - exercised only where threadpoolctl exists
        import threadpoolctl

        threadpoolctl.threadpool_limits(limits=int(threads))
        return True
    except ImportError:
        return False

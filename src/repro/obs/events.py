"""Structured event logging: one JSON object per line, stdlib only.

This replaces the ad-hoc root-logger configuration that used to live in
``repro.utils.logging``: all library loggers still hang off the ``repro``
root, but the single root handler is installed here and can format records
either as classic human-readable text (the default) or as machine-parseable
JSON lines (the serve front's default — each line is one event a log shipper
can ingest without regexes).

Two layers:

* :func:`configure_logging` — idempotent root configuration.  Format comes
  from the ``fmt`` argument or the ``REPRO_LOG_FORMAT`` environment variable
  (``text`` | ``json``); verbosity from ``REPRO_LOG_LEVEL`` as before.
* :func:`log_event` — emit a structured event (a name plus arbitrary
  JSON-able fields) through the dedicated ``repro.events`` logger.  In JSON
  mode the fields become top-level keys; in text mode they render as
  ``key=value`` pairs.  Events default to INFO, so enable them explicitly
  with :func:`enable_events` (the serve front does) or by raising the global
  level.

Event lines look like::

    {"ts": 1753776000.123, "level": "info", "logger": "repro.events",
     "event": "serve.worker_respawned", "worker": 1, "restarts": 2}
"""

from __future__ import annotations

import json
import logging
import logging.handlers
import os
import sys
import threading
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Union

__all__ = [
    "EVENTS_LOGGER_NAME",
    "JsonLineFormatter",
    "TextEventFormatter",
    "configure_logging",
    "enable_events",
    "log_event",
]

EVENTS_LOGGER_NAME = "repro.events"

_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"
_lock = threading.Lock()
_configured_fmt: Optional[str] = None
_handler: Optional[logging.Handler] = None  # the handler *we* installed
_file_handler: Optional[logging.Handler] = None  # rotating file sink, if any
_file_handler_path: Optional[str] = None


def _event_fields(record: logging.LogRecord) -> Dict[str, Any]:
    fields = getattr(record, "repro_fields", None)
    return dict(fields) if fields else {}


class JsonLineFormatter(logging.Formatter):
    """Render every record as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
        }
        event = getattr(record, "repro_event", None)
        if event is not None:
            payload["event"] = event
        else:
            payload["message"] = record.getMessage()
        for key, value in _event_fields(record).items():
            if key not in payload:
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, separators=(",", ":"))


class TextEventFormatter(logging.Formatter):
    """The classic human-readable format, with event fields as key=value."""

    def __init__(self) -> None:
        super().__init__(_FORMAT)

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        fields = _event_fields(record)
        if fields:
            rendered = " ".join(f"{key}={value}" for key, value in fields.items())
            base = f"{base} {rendered}"
        return base


def _resolve_level(level: Optional[str]) -> int:
    name = (level or os.environ.get("REPRO_LOG_LEVEL", "WARNING")).upper()
    resolved = getattr(logging, name, None)
    return resolved if isinstance(resolved, int) else logging.WARNING


def _resolve_fmt(fmt: Optional[str]) -> str:
    resolved = (fmt or os.environ.get("REPRO_LOG_FORMAT", "text")).strip().lower()
    return resolved if resolved in ("text", "json") else "text"


def configure_logging(
    level: Optional[str] = None,
    fmt: Optional[str] = None,
    stream: Optional[TextIO] = None,
    force: bool = False,
    log_file: Optional[Union[str, Path]] = None,
    log_file_max_bytes: int = 10 * 1024 * 1024,
    log_file_backups: int = 3,
) -> None:
    """Install (once) this module's handler on the ``repro`` root logger.

    Subsequent calls are no-ops unless ``force`` is true — ``python -m repro
    serve`` uses that to switch an already-configured process to JSON event
    lines.  Only the handler installed here is ever replaced: handlers an
    application attached to ``logging.getLogger("repro")`` itself are left
    untouched, and when such handlers exist the library adds its own only
    under ``force`` (matching the historical "don't double-log" behaviour).
    ``stream`` defaults to stderr, keeping stdout free for machine-readable
    command output.

    ``log_file`` additionally attaches a size-rotated file sink (the ``serve``
    and ``train`` fronts' ``--log-file``): always JSON lines — a file sink
    exists for machines, whatever the terminal format — rotated at
    ``log_file_max_bytes`` with ``log_file_backups`` old files kept
    (``<name>.1`` ... ``<name>.N``).  The file sink is installed even when an
    application already configured its own stderr handlers, and a later call
    naming a different path replaces it.
    """
    global _configured_fmt, _handler, _file_handler, _file_handler_path
    resolved_fmt = _resolve_fmt(fmt)
    with _lock:
        root = logging.getLogger("repro")
        if log_file is not None:
            path = str(Path(log_file))
            if _file_handler is None or _file_handler_path != path:
                if _file_handler is not None:
                    root.removeHandler(_file_handler)
                    _file_handler.close()
                Path(path).parent.mkdir(parents=True, exist_ok=True)
                file_handler = logging.handlers.RotatingFileHandler(
                    path,
                    maxBytes=int(log_file_max_bytes),
                    backupCount=int(log_file_backups),
                    encoding="utf-8",
                )
                file_handler.setFormatter(JsonLineFormatter())
                root.addHandler(file_handler)
                _file_handler = file_handler
                _file_handler_path = path
        if _configured_fmt is not None and not force:
            if log_file is not None and root.level == logging.NOTSET:
                root.setLevel(_resolve_level(level))
            return
        if _handler is not None:
            root.removeHandler(_handler)
            _handler = None
        if force or not (set(root.handlers) - {_file_handler}):
            formatter: logging.Formatter = (
                JsonLineFormatter() if resolved_fmt == "json" else TextEventFormatter()
            )
            handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
            handler.setFormatter(formatter)
            root.addHandler(handler)
            _handler = handler
        root.setLevel(_resolve_level(level))
        _configured_fmt = resolved_fmt


def enable_events(level: int = logging.INFO) -> None:
    """Let INFO-level events through the ``repro.events`` logger regardless
    of the library-wide verbosity (the serve front calls this on startup)."""
    logging.getLogger(EVENTS_LOGGER_NAME).setLevel(level)


def log_event(event: str, level: int = logging.INFO, **fields: Any) -> None:
    """Emit a structured event: a dotted name plus JSON-able fields.

    Cheap when the event logger's level filters it out (one ``isEnabledFor``
    check); formatting happens only for records that are actually emitted.
    """
    logger = logging.getLogger(EVENTS_LOGGER_NAME)
    if not logger.isEnabledFor(level):
        return
    configure_logging()  # lazily ensure a handler exists
    logger.log(
        level,
        event,
        extra={"repro_event": event, "repro_fields": fields},
    )

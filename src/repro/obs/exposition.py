"""Prometheus text exposition (format version 0.0.4) for the metrics core.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
into the plain-text format every Prometheus-compatible scraper understands::

    # HELP repro_serve_requests_total Predict requests answered by the pool.
    # TYPE repro_serve_requests_total counter
    repro_serve_requests_total{status="ok"} 42

Histograms emit the standard cumulative ``_bucket{le="..."}`` series plus
``_sum`` and ``_count``.  The encoder is deterministic: metrics render in
name order and children in label-value order, so scrapes diff cleanly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry

__all__ = ["CONTENT_TYPE", "render_prometheus"]

#: HTTP Content-Type of the rendered exposition.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(names: Tuple[str, ...], values: Tuple[str, ...], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"' for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render ``registry`` (default: the process-wide one) as exposition text."""
    if registry is None:
        registry = get_registry()
    lines: List[str] = []
    for metric in registry.collect():
        lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.type_name}")
        samples = sorted(metric.samples(), key=lambda item: item[0])
        if isinstance(metric, Histogram):
            for labelvalues, (counts, total) in samples:
                cumulative = 0
                for bound, count in zip(metric.buckets, counts):
                    cumulative += count
                    le = _labels_text(
                        metric.labelnames, labelvalues, f'le="{_format_value(bound)}"'
                    )
                    lines.append(f"{metric.name}_bucket{le} {cumulative}")
                cumulative += counts[-1]
                le = _labels_text(metric.labelnames, labelvalues, 'le="+Inf"')
                lines.append(f"{metric.name}_bucket{le} {cumulative}")
                labels = _labels_text(metric.labelnames, labelvalues)
                lines.append(f"{metric.name}_sum{labels} {_format_value(total)}")
                lines.append(f"{metric.name}_count{labels} {cumulative}")
        elif isinstance(metric, (Counter, Gauge)):
            for labelvalues, value in samples:
                labels = _labels_text(metric.labelnames, labelvalues)
                lines.append(f"{metric.name}{labels} {_format_value(value)}")
        else:  # pragma: no cover - no other metric types exist today
            continue
    return "\n".join(lines) + "\n" if lines else ""

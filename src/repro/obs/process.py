"""Process-level gauges for the ``/metrics`` endpoint: see the hardware.

Reads ``/proc/self`` on Linux (resident set, open file descriptors, thread
count) and falls back to portable stdlib sources elsewhere; everything is
best-effort — a missing source simply leaves its gauge at the last value.
:func:`update_process_metrics` is called by the HTTP server on every
``/metrics`` scrape, so the numbers are fresh without any background thread.
"""

from __future__ import annotations

import os
import resource
import time
from typing import Optional

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["update_process_metrics"]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096
_START_TIME = time.time()


def _rss_bytes() -> Optional[float]:
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:
        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return float(rss_kb) * 1024.0  # peak, not current — best effort
    except Exception:  # pragma: no cover - exotic platforms
        return None


def _open_fds() -> Optional[int]:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:  # pragma: no cover - non-Linux
        return None


def _thread_count() -> Optional[int]:
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("Threads:"):
                    return int(line.split()[1])
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        pass
    return None


def update_process_metrics(registry: Optional[MetricsRegistry] = None) -> None:
    """Refresh the ``repro_process_*`` gauges on ``registry``."""
    if registry is None:
        registry = get_registry()
    if not registry.enabled:
        return

    times = os.times()
    registry.gauge(
        "repro_process_cpu_seconds_total",
        "Total user+system CPU seconds of this process.",
    ).set(times.user + times.system)
    registry.gauge(
        "repro_process_start_time_seconds",
        "Unix time the process (observability subsystem) started.",
    ).set(_START_TIME)
    registry.gauge(
        "repro_process_uptime_seconds", "Seconds since the process started."
    ).set(time.time() - _START_TIME)

    rss = _rss_bytes()
    if rss is not None:
        registry.gauge(
            "repro_process_resident_memory_bytes", "Resident set size in bytes."
        ).set(rss)
    fds = _open_fds()
    if fds is not None:
        registry.gauge(
            "repro_process_open_fds", "Open file descriptors."
        ).set(fds)
    threads = _thread_count()
    if threads is not None:
        registry.gauge(
            "repro_process_threads", "OS threads in this process."
        ).set(threads)

"""Dependency-free metrics core: counters, gauges, histograms, registry.

The observability subsystem needs to run everywhere the library runs — CI
containers, spawn-started worker processes, user laptops — so the metric
primitives are implemented on the stdlib alone and follow the Prometheus
data model closely enough that :func:`repro.obs.exposition.render_prometheus`
can emit standard text exposition format.

Design constraints
------------------

* **Thread-safe.**  The serving pool updates metrics from HTTP handler
  threads, the dispatcher, the collector, and the supervisor concurrently;
  every mutation takes the owning metric's lock (uncontended CPython lock
  acquisition is tens of nanoseconds).
* **Near-zero-overhead disabled mode.**  Every mutator checks the registry's
  ``enabled`` flag first and returns immediately when metrics are off — one
  attribute load and a branch, no lock, no allocation.  The
  ``metrics_overhead`` micro-benchmark pins the *enabled* cost on a real VGG
  training run at under 2%.
* **Get-or-create registration.**  Instrumented modules declare their metrics
  at import time via :meth:`MetricsRegistry.counter` / :meth:`gauge` /
  :meth:`histogram`; re-declaring the same name with the same type and labels
  returns the existing metric, so import order and repeated imports are
  harmless.  Conflicting re-declarations raise.
"""

from __future__ import annotations

import os
import re
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "quantile_from_counts",
]

#: Fixed latency buckets (seconds) shared by every latency histogram in the
#: library: sub-millisecond dispatch overhead up to multi-second cold paths.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def quantile_from_counts(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Bucket-interpolated quantile over histogram counts.

    ``bounds`` are the finite bucket upper bounds and ``counts`` the
    non-cumulative per-bucket counts (``len(bounds) + 1`` entries, the last
    being the implicit ``+Inf`` bucket) — exactly the layout
    :class:`Histogram` keeps.  Interpolates linearly inside the bucket the
    rank falls into, like PromQL's ``histogram_quantile``: observations are
    assumed non-negative (the first bucket interpolates from 0), and a rank
    landing in the ``+Inf`` bucket is clamped to the highest finite bound.
    Returns ``nan`` for an empty histogram.

    Module-level (rather than only a :class:`Histogram` method) so callers
    that window a histogram — e.g. the fleet autoscaler computing a p99 over
    the counts observed *since its last tick* — can run the same math on a
    counts delta.
    """
    if not 0.0 <= float(q) <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    total = sum(counts)
    if total == 0:
        return float("nan")
    rank = float(q) * total
    cumulative = 0
    lower = 0.0
    for bound, count in zip(bounds, counts):
        cumulative += count
        if cumulative >= rank and count:
            fraction = (rank - (cumulative - count)) / count
            return lower + fraction * (bound - lower)
        lower = bound
    return float(bounds[-1])


class _Timer:
    """Context manager that observes its block's duration on a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram"):
        self._histogram = histogram

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class Metric:
    """Base class: name/help/labels plus the labelled-children machinery.

    A metric without label names is its own single sample; a metric with
    label names is a family whose samples are created on first use through
    :meth:`labels`.
    """

    type_name = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        registry: Optional["MetricsRegistry"] = None,
    ):
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = str(help)
        self.labelnames = tuple(labelnames)
        self._registry = registry if registry is not None else get_registry()
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], "Metric"] = {}

    # ------------------------------------------------------------- children
    def labels(self, *labelvalues: object, **labelkwargs: object) -> "Metric":
        """Return (creating on first use) the child for the given label values."""
        if not self.labelnames:
            raise ValueError(f"metric {self.name} declares no labels")
        if labelvalues and labelkwargs:
            raise ValueError("pass label values either positionally or by keyword")
        if labelkwargs:
            if set(labelkwargs) != set(self.labelnames):
                raise ValueError(
                    f"metric {self.name} expects labels {self.labelnames}, got "
                    f"{sorted(labelkwargs)}"
                )
            values = tuple(str(labelkwargs[label]) for label in self.labelnames)
        else:
            if len(labelvalues) != len(self.labelnames):
                raise ValueError(
                    f"metric {self.name} expects {len(self.labelnames)} label "
                    f"values, got {len(labelvalues)}"
                )
            values = tuple(str(value) for value in labelvalues)
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._make_child(values)
                self._children[values] = child
            return child

    def _make_child(self, values: Tuple[str, ...]) -> "Metric":
        child = type(self).__new__(type(self))
        child.name = self.name
        child.help = self.help
        child.labelnames = ()
        child._registry = self._registry
        child._lock = threading.Lock()
        child._children = {}
        self._copy_config_to(child)
        child._init_value()
        child.labelvalues = values
        return child

    def _copy_config_to(self, child: "Metric") -> None:
        """Copy subclass configuration (e.g. bucket bounds) onto a child."""

    def _init_value(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _require_unlabelled(self) -> None:
        if self.labelnames:
            raise ValueError(
                f"metric {self.name} is labelled by {self.labelnames}; call "
                ".labels(...) first"
            )

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        """``(labelvalues, value)`` pairs for every child (exposition hook)."""
        if self.labelnames:
            with self._lock:
                children = list(self._children.items())
            return [(values, child._read()) for values, child in children]
        return [((), self._read())]

    def _read(self) -> object:  # pragma: no cover - overridden
        raise NotImplementedError

    def _reset(self) -> None:
        with self._lock:
            self._children.clear()
        self._init_value()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class Counter(Metric):
    """Monotonically increasing count (requests served, epochs run, ...)."""

    type_name = "counter"

    def __init__(self, name, help, labelnames=(), registry=None):
        super().__init__(name, help, labelnames, registry)
        self._init_value()

    def _init_value(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        self._require_unlabelled()
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _read(self) -> float:
        return self._value


class Gauge(Metric):
    """A value that can go up and down (alive workers, last epoch loss, ...)."""

    type_name = "gauge"

    def __init__(self, name, help, labelnames=(), registry=None):
        super().__init__(name, help, labelnames, registry)
        self._init_value()

    def _init_value(self) -> None:
        self._value = 0.0
        # Distinguishes "set to 0" from "never written": registry snapshots
        # skip untouched gauges so a worker that merely *registered* a gauge
        # cannot clobber the parent's value with the default 0 on merge.
        self._touched = False

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self._require_unlabelled()
        with self._lock:
            self._value = float(value)
            self._touched = True

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        self._require_unlabelled()
        with self._lock:
            self._value += amount
            self._touched = True

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def touched_samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        """Like :meth:`samples`, but only gauges that were actually written.

        A labelled child created by ``labels(...)`` but never set is skipped
        too.  This is what :meth:`MetricsRegistry.snapshot` ships between
        processes — untouched gauges carry no information, only the power to
        overwrite a real value with 0.
        """
        if self.labelnames:
            with self._lock:
                children = list(self._children.items())
            return [
                (values, child._read()) for values, child in children if child._touched
            ]
        return [((), self._read())] if self._touched else []

    @property
    def value(self) -> float:
        return self._value

    def _read(self) -> float:
        return self._value


class Histogram(Metric):
    """Bucketed distribution (latency, batch size) with ``sum`` and ``count``.

    ``buckets`` are the *upper bounds* of the non-cumulative buckets; an
    implicit ``+Inf`` bucket is always present.  The exposition layer emits
    the standard cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``.
    """

    type_name = "histogram"

    def __init__(
        self,
        name,
        help,
        labelnames=(),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        registry=None,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bucket bounds must be sorted ascending")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        self.buckets = bounds
        super().__init__(name, help, labelnames, registry)
        self._init_value()

    def _copy_config_to(self, child: "Metric") -> None:
        child.buckets = self.buckets

    def _init_value(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)  # + the +Inf bucket
        self._sum = 0.0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self._require_unlabelled()
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    def time(self) -> _Timer:
        """``with histogram.time(): ...`` observes the block's duration."""
        return _Timer(self)

    def bucket_counts(self) -> List[int]:
        """Consistent snapshot of the non-cumulative per-bucket counts
        (``len(buckets) + 1`` entries; the last is the ``+Inf`` bucket)."""
        self._require_unlabelled()
        counts, _ = self._read()
        return counts

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate over everything observed.

        See :func:`quantile_from_counts` for the semantics; ``nan`` when the
        histogram is empty.  For a *windowed* quantile (recent observations
        only), snapshot :meth:`bucket_counts` periodically and feed the delta
        to :func:`quantile_from_counts` instead.
        """
        return quantile_from_counts(self.buckets, self.bucket_counts(), q)

    def merge(self, counts: Sequence[int], total: float) -> None:
        """Fold another histogram's ``(bucket counts, sum)`` into this one.

        Used when worker processes ship registry snapshots back to the
        parent; both sides share the same bucket layout because they run the
        same instrumented modules.
        """
        if not self._registry.enabled:
            return
        self._require_unlabelled()
        if len(counts) != len(self._counts):
            raise ValueError(
                f"histogram {self.name}: cannot merge {len(counts)} bucket "
                f"counts into {len(self._counts)} buckets"
            )
        with self._lock:
            for index, count in enumerate(counts):
                self._counts[index] += int(count)
            self._sum += float(total)

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    def _read(self) -> Tuple[List[int], float]:
        with self._lock:
            return list(self._counts), self._sum


class MetricsRegistry:
    """Process-wide collection of metrics with a global enable switch.

    ``enabled`` defaults to on unless the ``REPRO_METRICS`` environment
    variable is set to ``0`` / ``off`` / ``false`` / ``no``.  Disabling makes
    every metric mutator a constant-time no-op; the registry structure (names,
    helps, label sets) stays intact so re-enabling just resumes collection.
    """

    def __init__(self, enabled: Optional[bool] = None):
        if enabled is None:
            enabled = os.environ.get("REPRO_METRICS", "on").strip().lower() not in (
                "0",
                "off",
                "false",
                "no",
            )
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------ lifecycle
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every metric's samples (keeps registrations; test helper)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric._reset()

    # --------------------------------------------------------- registration
    def _get_or_create(self, cls, name, help, labelnames, **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}{existing.labelnames}"
                    )
                if cls is Histogram and "buckets" in kwargs:
                    bounds = tuple(float(b) for b in kwargs["buckets"])
                    if bounds != existing.buckets:  # type: ignore[union-attr]
                        raise ValueError(
                            f"histogram {name!r} already registered with "
                            "different buckets"
                        )
                return existing
            metric = cls(name, help, labelnames, registry=self, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    # ----------------------------------------------------------- collection
    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> Iterable[Metric]:
        """All registered metrics in name order (stable exposition output)."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    # ----------------------------------------------------- snapshot / merge
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A picklable plain-data view of every registered metric.

        The snapshot is what training workers ship back to the parent inside
        ``MemberOutcome`` so per-member metrics survive worker exit; it can
        cross ``multiprocessing`` queues or be serialised as JSON (histogram
        samples are ``(bucket counts, sum)`` pairs).
        """
        out: Dict[str, Dict[str, object]] = {}
        for metric in self.collect():
            samples = (
                metric.touched_samples()
                if isinstance(metric, Gauge)
                else metric.samples()
            )
            entry: Dict[str, object] = {
                "type": metric.type_name,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "samples": [[list(values), value] for values, value in samples],
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            out[metric.name] = entry
        return out

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`snapshot` from another process into this registry.

        Counters and histograms *accumulate* (they are deltas of work done
        elsewhere); gauges are *set* (last writer wins — e.g. the final
        epoch loss of the member a worker just trained).  Process-level
        gauges (``repro_process_*``) describe the process that took the
        snapshot, not this one, and are skipped.  Metrics unknown to this
        process are registered on the fly, so series instrumented only in
        worker-side modules still reach the parent's ``/metrics``.
        """
        if not self.enabled:
            return
        for name, entry in snapshot.items():
            kind = entry["type"]
            labelnames = tuple(entry["labelnames"])  # type: ignore[arg-type]
            if kind == "gauge" and name.startswith("repro_process_"):
                continue
            if kind == "counter":
                metric: Metric = self.counter(name, str(entry["help"]), labelnames)
            elif kind == "gauge":
                metric = self.gauge(name, str(entry["help"]), labelnames)
            elif kind == "histogram":
                metric = self.histogram(
                    name,
                    str(entry["help"]),
                    labelnames,
                    buckets=entry["buckets"],  # type: ignore[arg-type]
                )
            else:  # pragma: no cover - snapshot from a newer version
                continue
            for labelvalues, value in entry["samples"]:  # type: ignore[union-attr]
                child = metric.labels(*labelvalues) if labelnames else metric
                if kind == "counter":
                    child.inc(float(value))  # type: ignore[attr-defined]
                elif kind == "gauge":
                    child.set(float(value))  # type: ignore[attr-defined]
                else:
                    counts, total = value
                    child.merge(counts, total)  # type: ignore[attr-defined]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"MetricsRegistry(enabled={self.enabled}, "
                f"metrics={len(self._metrics)})"
            )


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every instrumented module uses."""
    return _REGISTRY

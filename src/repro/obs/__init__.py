"""Observability subsystem: metrics, Prometheus exposition, structured events.

``repro.obs`` makes the system visible at runtime without adding a single
third-party dependency:

* :mod:`repro.obs.metrics` — thread-safe :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` primitives behind a process-wide
  :class:`MetricsRegistry` (near-zero-overhead disabled mode via
  ``REPRO_METRICS=off``).
* :mod:`repro.obs.exposition` — :func:`render_prometheus`, the standard text
  exposition served by ``GET /metrics`` on the serving front.
* :mod:`repro.obs.events` — structured JSON event logging (one JSON object
  per line) shared with the classic text logs through a single root handler;
  :func:`log_event` is how lifecycle transitions (worker death/respawn,
  server start/stop, experiment phases) are recorded.
* :mod:`repro.obs.process` — ``repro_process_*`` gauges (RSS, CPU seconds,
  fds, threads) refreshed on every scrape.

The hot paths are instrumented throughout the library: per-epoch training
gauges in :mod:`repro.nn.training`, per-phase counters in
:mod:`repro.core.trainer` and :mod:`repro.parallel.executor`, and request
count / batch-size / latency histograms in :mod:`repro.parallel.serving`.
"""

from repro.obs.events import (
    JsonLineFormatter,
    configure_logging,
    enable_events,
    log_event,
)
from repro.obs.exposition import CONTENT_TYPE, render_prometheus
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.process import update_process_metrics

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLineFormatter",
    "MetricsRegistry",
    "configure_logging",
    "enable_events",
    "get_registry",
    "log_event",
    "render_prometheus",
    "update_process_metrics",
]

"""Structural validation and hatch-compatibility checks.

Hatching (``repro.core.hatching``) can only expand a network: it adds layers,
widens layers, and grows filter sizes.  ``check_hatchable`` verifies that a
target architecture is reachable from a candidate MotherNet by such
function-preserving transformations; the MotherNet construction in
``repro.core.mothernet`` guarantees this property by design and the tests
assert it.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.arch.spec import ArchitectureSpec


class IncompatibleArchitectureError(ValueError):
    """Raised when two architectures cannot participate in the same
    MotherNet/hatching relationship."""


def _ensure(condition: bool, message: str, errors: List[str]) -> None:
    if not condition:
        errors.append(message)


def check_same_task(specs: Sequence[ArchitectureSpec]) -> None:
    """All ensemble members must share input shape, class count, and family
    (fully-connected vs convolutional, plain vs residual), because they are
    trained for the same task and hatched from the same MotherNet."""
    if not specs:
        raise IncompatibleArchitectureError("the ensemble is empty")
    reference = specs[0]
    errors: List[str] = []
    for spec in specs[1:]:
        _ensure(
            spec.input_shape == reference.input_shape,
            f"{spec.name}: input shape {spec.input_shape} != {reference.input_shape}",
            errors,
        )
        _ensure(
            spec.num_classes == reference.num_classes,
            f"{spec.name}: num_classes {spec.num_classes} != {reference.num_classes}",
            errors,
        )
        _ensure(
            spec.kind == reference.kind,
            f"{spec.name}: kind {spec.kind} != {reference.kind}",
            errors,
        )
        _ensure(
            spec.is_residual == reference.is_residual,
            f"{spec.name}: residual flag differs from {reference.name}",
            errors,
        )
        _ensure(
            spec.use_batchnorm == reference.use_batchnorm,
            f"{spec.name}: use_batchnorm differs from {reference.name}",
            errors,
        )
        if spec.kind == "conv":
            _ensure(
                spec.num_blocks == reference.num_blocks,
                f"{spec.name}: {spec.num_blocks} blocks != {reference.num_blocks}",
                errors,
            )
    if errors:
        raise IncompatibleArchitectureError(
            "ensemble members are not structurally compatible:\n  " + "\n  ".join(errors)
        )


def hatchability_errors(parent: ArchitectureSpec, child: ArchitectureSpec) -> List[str]:
    """Return the list of reasons why ``child`` cannot be hatched from
    ``parent`` (empty list means hatchable)."""
    errors: List[str] = []
    _ensure(parent.kind == child.kind, "different architecture families", errors)
    _ensure(parent.input_shape == child.input_shape, "different input shapes", errors)
    _ensure(parent.num_classes == child.num_classes, "different class counts", errors)
    _ensure(parent.use_batchnorm == child.use_batchnorm, "different BatchNorm settings", errors)
    if errors:
        return errors

    if parent.kind == "conv":
        _ensure(
            parent.num_blocks == child.num_blocks,
            f"different block counts ({parent.num_blocks} vs {child.num_blocks})",
            errors,
        )
        for b, (p_block, c_block) in enumerate(zip(parent.conv_blocks, child.conv_blocks)):
            _ensure(
                p_block.residual == c_block.residual,
                f"block {b}: residual flag differs",
                errors,
            )
            _ensure(
                p_block.depth <= c_block.depth,
                f"block {b}: parent has more layers ({p_block.depth} > {c_block.depth})",
                errors,
            )
            for i, (p_layer, c_layer) in enumerate(zip(p_block.layers, c_block.layers)):
                _ensure(
                    p_layer.filters <= c_layer.filters,
                    f"block {b} layer {i}: parent wider ({p_layer.filters} > {c_layer.filters})",
                    errors,
                )
                _ensure(
                    p_layer.filter_size <= c_layer.filter_size,
                    f"block {b} layer {i}: parent filter larger "
                    f"({p_layer.filter_size} > {c_layer.filter_size})",
                    errors,
                )
    _ensure(
        len(parent.dense_layers) <= len(child.dense_layers),
        "parent has more hidden dense layers than child",
        errors,
    )
    for i, (p_layer, c_layer) in enumerate(zip(parent.dense_layers, child.dense_layers)):
        _ensure(
            p_layer.units <= c_layer.units,
            f"dense layer {i}: parent wider ({p_layer.units} > {c_layer.units})",
            errors,
        )
    return errors


def is_hatchable(parent: ArchitectureSpec, child: ArchitectureSpec) -> bool:
    """True if ``child`` can be obtained from ``parent`` by function-preserving
    transformations (deepen / widen / grow filters)."""
    return not hatchability_errors(parent, child)


def check_hatchable(parent: ArchitectureSpec, child: ArchitectureSpec) -> None:
    """Raise :class:`IncompatibleArchitectureError` if ``child`` is not
    hatchable from ``parent``."""
    errors = hatchability_errors(parent, child)
    if errors:
        raise IncompatibleArchitectureError(
            f"{child.name} cannot be hatched from {parent.name}:\n  " + "\n  ".join(errors)
        )

"""Architecture specifications, parameter accounting, validation, and the
zoo of paper architectures (Table-1 VGG variants, ResNet families, MLPs)."""

from repro.arch.spec import (
    ArchitectureSpec,
    ConvBlockSpec,
    ConvLayerSpec,
    DenseLayerSpec,
)
from repro.arch.params import (
    count_parameters,
    parameter_breakdown,
    shared_parameter_fraction,
    sort_by_size,
)
from repro.arch.serialization import (
    spec_from_dict,
    spec_from_json,
    spec_to_dict,
    spec_to_json,
)
from repro.arch.validation import (
    IncompatibleArchitectureError,
    check_hatchable,
    check_same_task,
    hatchability_errors,
    is_hatchable,
)
from repro.arch.zoo import (
    DEFAULT_INPUT_SHAPE,
    RESNET_DEPTHS,
    VGG_VARIANT_NAMES,
    mlp,
    mlp_family,
    resnet,
    resnet_variant_family,
    small_vgg_ensemble,
    v16_variant_family,
    vgg,
)

__all__ = [
    "ArchitectureSpec",
    "ConvBlockSpec",
    "ConvLayerSpec",
    "DenseLayerSpec",
    "count_parameters",
    "parameter_breakdown",
    "shared_parameter_fraction",
    "sort_by_size",
    "spec_to_dict",
    "spec_from_dict",
    "spec_to_json",
    "spec_from_json",
    "IncompatibleArchitectureError",
    "check_hatchable",
    "check_same_task",
    "hatchability_errors",
    "is_hatchable",
    "DEFAULT_INPUT_SHAPE",
    "RESNET_DEPTHS",
    "VGG_VARIANT_NAMES",
    "mlp",
    "mlp_family",
    "resnet",
    "resnet_variant_family",
    "small_vgg_ensemble",
    "v16_variant_family",
    "vgg",
]

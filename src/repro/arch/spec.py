"""Declarative architecture specifications.

The MotherNets algorithm operates on the *structure* of feed-forward networks:
it needs to compare layer and block shapes across ensemble members, count
parameters, and decide how a trained MotherNet must be expanded to reach each
member.  ``ArchitectureSpec`` is that structural description, decoupled from
any trained weights.  ``repro.nn.model.Model.from_spec`` turns a spec into a
trainable network; ``repro.core`` constructs MotherNet specs and hatches
models between specs.

Two families are supported, mirroring §2.1 of the paper:

* fully-connected networks: an ordered tuple of hidden-layer widths;
* convolutional networks: an ordered tuple of blocks, each a tuple of
  convolutional layers described by ``<filter_size>:<filter_number>`` (the
  paper's notation), optionally residual (ResNet-style units).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence, Tuple


@dataclass(frozen=True)
class ConvLayerSpec:
    """One convolutional layer: ``<filter_size>:<filters>`` in the paper's
    notation.  For residual blocks a ``ConvLayerSpec`` describes one residual
    *unit* (two convolutions of this size/width plus a projection shortcut)."""

    filter_size: int = 3
    filters: int = 64

    def __post_init__(self):
        if self.filter_size <= 0 or self.filter_size % 2 == 0:
            raise ValueError(f"filter_size must be a positive odd integer, got {self.filter_size}")
        if self.filters <= 0:
            raise ValueError(f"filters must be positive, got {self.filters}")

    def notation(self) -> str:
        """The paper's ``<filter_size>:<filters>`` notation."""
        return f"{self.filter_size}:{self.filters}"

    @classmethod
    def parse(cls, text: str) -> "ConvLayerSpec":
        """Parse ``"3:64"`` into a spec."""
        size, filters = text.strip().split(":")
        return cls(filter_size=int(size), filters=int(filters))


@dataclass(frozen=True)
class ConvBlockSpec:
    """A block of convolutional layers separated from the next block by a
    max-pooling layer (VGG style) or a block of residual units (ResNet style)."""

    layers: Tuple[ConvLayerSpec, ...]
    residual: bool = False

    def __post_init__(self):
        if not self.layers:
            raise ValueError("a convolutional block must contain at least one layer")
        object.__setattr__(self, "layers", tuple(self.layers))

    @property
    def depth(self) -> int:
        return len(self.layers)

    def notation(self) -> str:
        body = " ".join(layer.notation() for layer in self.layers)
        return f"[{body}]" + ("*" if self.residual else "")

    @classmethod
    def of(cls, *layer_texts: str, residual: bool = False) -> "ConvBlockSpec":
        """Build a block from ``"3:64"``-style strings."""
        return cls(tuple(ConvLayerSpec.parse(t) for t in layer_texts), residual=residual)


@dataclass(frozen=True)
class DenseLayerSpec:
    """One hidden fully-connected layer."""

    units: int

    def __post_init__(self):
        if self.units <= 0:
            raise ValueError(f"units must be positive, got {self.units}")


@dataclass(frozen=True)
class ArchitectureSpec:
    """A complete feed-forward architecture.

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. ``"V16"``).
    input_shape:
        ``(channels, height, width)`` for convolutional networks or
        ``(features,)`` for fully-connected networks.
    num_classes:
        Output dimensionality of the classifier head.
    conv_blocks:
        Convolutional blocks (empty for fully-connected networks).
    dense_layers:
        Hidden fully-connected layers placed after the convolutional stage
        (or directly after the input for fully-connected networks).
    use_batchnorm:
        Whether convolutional/dense hidden layers are followed by BatchNorm.
    dropout_rate:
        Dropout applied before the classifier head (0 disables it).
    """

    name: str
    input_shape: Tuple[int, ...]
    num_classes: int
    conv_blocks: Tuple[ConvBlockSpec, ...] = field(default_factory=tuple)
    dense_layers: Tuple[DenseLayerSpec, ...] = field(default_factory=tuple)
    use_batchnorm: bool = True
    dropout_rate: float = 0.0

    def __post_init__(self):
        object.__setattr__(self, "input_shape", tuple(int(s) for s in self.input_shape))
        object.__setattr__(self, "conv_blocks", tuple(self.conv_blocks))
        object.__setattr__(self, "dense_layers", tuple(self.dense_layers))
        if self.num_classes < 2:
            raise ValueError("num_classes must be at least 2")
        if self.conv_blocks and len(self.input_shape) != 3:
            raise ValueError("convolutional architectures need a (C, H, W) input_shape")
        if not self.conv_blocks and len(self.input_shape) != 1:
            raise ValueError("fully-connected architectures need a (features,) input_shape")
        if not self.conv_blocks and not self.dense_layers:
            raise ValueError("an architecture needs at least one hidden layer or conv block")
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError("dropout_rate must be in [0, 1)")
        if any(s <= 0 for s in self.input_shape):
            raise ValueError("input_shape entries must be positive")

    # --------------------------------------------------------------- helpers
    @property
    def kind(self) -> str:
        """``"conv"`` or ``"dense"``."""
        return "conv" if self.conv_blocks else "dense"

    @property
    def is_residual(self) -> bool:
        return any(block.residual for block in self.conv_blocks)

    @property
    def num_blocks(self) -> int:
        return len(self.conv_blocks)

    @property
    def hidden_widths(self) -> Tuple[int, ...]:
        return tuple(layer.units for layer in self.dense_layers)

    def with_name(self, name: str) -> "ArchitectureSpec":
        return replace(self, name=name)

    def conv_depth(self) -> int:
        """Total number of convolutional layers (residual units count the two
        convolutions they contain)."""
        total = 0
        for block in self.conv_blocks:
            per_layer = 2 if block.residual else 1
            total += per_layer * block.depth
        return total

    def describe(self) -> str:
        """A Table-1-style textual description of the architecture."""
        if self.kind == "dense":
            widths = "-".join(str(w) for w in self.hidden_widths)
            return f"{self.name}: dense[{widths}] -> {self.num_classes}"
        blocks = " | ".join(block.notation() for block in self.conv_blocks)
        tail = ""
        if self.dense_layers:
            tail = " | fc[" + "-".join(str(w) for w in self.hidden_widths) + "]"
        return f"{self.name}: {blocks}{tail} -> {self.num_classes}"

    # ------------------------------------------------------------ factories
    @classmethod
    def dense(
        cls,
        name: str,
        input_features: int,
        hidden_units: Sequence[int],
        num_classes: int,
        use_batchnorm: bool = False,
        dropout_rate: float = 0.0,
    ) -> "ArchitectureSpec":
        """Convenience constructor for fully-connected architectures."""
        return cls(
            name=name,
            input_shape=(int(input_features),),
            num_classes=int(num_classes),
            dense_layers=tuple(DenseLayerSpec(int(u)) for u in hidden_units),
            use_batchnorm=use_batchnorm,
            dropout_rate=dropout_rate,
        )

    @classmethod
    def convolutional(
        cls,
        name: str,
        input_shape: Tuple[int, int, int],
        blocks: Iterable[Sequence[str]],
        num_classes: int,
        dense_layers: Sequence[int] = (),
        residual: bool = False,
        use_batchnorm: bool = True,
        dropout_rate: float = 0.0,
    ) -> "ArchitectureSpec":
        """Convenience constructor: ``blocks`` is an iterable of blocks, each a
        sequence of ``"3:64"``-style layer strings."""
        conv_blocks = tuple(
            ConvBlockSpec.of(*block, residual=residual) for block in blocks
        )
        return cls(
            name=name,
            input_shape=tuple(input_shape),
            num_classes=int(num_classes),
            conv_blocks=conv_blocks,
            dense_layers=tuple(DenseLayerSpec(int(u)) for u in dense_layers),
            use_batchnorm=use_batchnorm,
            dropout_rate=dropout_rate,
        )

"""Parameter counting for architecture specs.

The clustering algorithm (Algorithm 1) and the MotherNet-size invariants are
all phrased in terms of the number of trainable parameters of a network, so
the count must be available *without* materialising the network.  The result
is guaranteed (and tested) to equal ``Model.from_spec(spec).parameter_count()``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.arch.spec import ArchitectureSpec, ConvBlockSpec


def _conv_params(in_channels: int, filters: int, filter_size: int, bias: bool = True) -> int:
    count = filters * in_channels * filter_size * filter_size
    if bias:
        count += filters
    return count


def _batchnorm_params(features: int) -> int:
    # gamma and beta are trainable; running statistics are state, not parameters.
    return 2 * features


def _dense_params(in_features: int, out_features: int) -> int:
    return in_features * out_features + out_features


def _plain_block_params(block: ConvBlockSpec, in_channels: int, use_batchnorm: bool) -> int:
    total = 0
    channels = in_channels
    for layer in block.layers:
        total += _conv_params(channels, layer.filters, layer.filter_size)
        if use_batchnorm:
            total += _batchnorm_params(layer.filters)
        channels = layer.filters
    return total


def _residual_block_params(block: ConvBlockSpec, in_channels: int, use_batchnorm: bool) -> int:
    total = 0
    channels = in_channels
    for layer in block.layers:
        # conv1: in -> filters, conv2: filters -> filters, projection 1x1 (no bias).
        total += _conv_params(channels, layer.filters, layer.filter_size)
        total += _conv_params(layer.filters, layer.filters, layer.filter_size)
        total += _conv_params(channels, layer.filters, 1, bias=False)
        if use_batchnorm:
            total += 2 * _batchnorm_params(layer.filters)
        channels = layer.filters
    return total


def block_output_channels(block: ConvBlockSpec) -> int:
    """Channel count flowing out of a block."""
    return block.layers[-1].filters


def count_parameters(spec: ArchitectureSpec) -> int:
    """Total number of trainable parameters described by ``spec``."""
    total = 0
    if spec.kind == "conv":
        channels = spec.input_shape[0]
        for block in spec.conv_blocks:
            if block.residual:
                total += _residual_block_params(block, channels, spec.use_batchnorm)
            else:
                total += _plain_block_params(block, channels, spec.use_batchnorm)
            channels = block_output_channels(block)
        features = channels  # global average pooling keeps channel count
    else:
        features = spec.input_shape[0]
    for layer in spec.dense_layers:
        total += _dense_params(features, layer.units)
        if spec.use_batchnorm:
            total += _batchnorm_params(layer.units)
        features = layer.units
    total += _dense_params(features, spec.num_classes)
    return total


def parameter_breakdown(spec: ArchitectureSpec) -> Dict[str, int]:
    """Per-stage parameter counts (used in reports and the Table-1 bench)."""
    breakdown: Dict[str, int] = {}
    if spec.kind == "conv":
        channels = spec.input_shape[0]
        for b, block in enumerate(spec.conv_blocks):
            if block.residual:
                count = _residual_block_params(block, channels, spec.use_batchnorm)
            else:
                count = _plain_block_params(block, channels, spec.use_batchnorm)
            breakdown[f"block_{b}"] = count
            channels = block_output_channels(block)
        features = channels
    else:
        features = spec.input_shape[0]
    hidden_total = 0
    for layer in spec.dense_layers:
        hidden_total += _dense_params(features, layer.units)
        if spec.use_batchnorm:
            hidden_total += _batchnorm_params(layer.units)
        features = layer.units
    if spec.dense_layers:
        breakdown["dense_hidden"] = hidden_total
    breakdown["classifier"] = _dense_params(features, spec.num_classes)
    return breakdown


def shared_parameter_fraction(parent: ArchitectureSpec, child: ArchitectureSpec) -> float:
    """Fraction of ``child``'s parameters that originate from ``parent``.

    This is the quantity the clustering condition bounds: for every ensemble
    network ``C`` and its MotherNet ``M``, ``(|C| - |M|) < tau * |C|`` i.e.
    ``|M| / |C| > 1 - tau``.
    """
    child_params = count_parameters(child)
    parent_params = count_parameters(parent)
    if child_params <= 0:
        raise ValueError("child architecture has no parameters")
    return min(1.0, parent_params / child_params)


def sort_by_size(specs: List[ArchitectureSpec]) -> List[ArchitectureSpec]:
    """Return the specs sorted by ascending parameter count (ties broken by
    name for determinism)."""
    return sorted(specs, key=lambda s: (count_parameters(s), s.name))

"""Serialization of architecture specifications.

Specs are plain frozen dataclasses; these helpers convert them to and from
JSON-compatible dictionaries so that trained ensembles (spec + weights) can be
stored on disk and reloaded — see ``repro.nn.serialization`` for the weight
side.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.arch.spec import (
    ArchitectureSpec,
    ConvBlockSpec,
    ConvLayerSpec,
    DenseLayerSpec,
)

_FORMAT_VERSION = 1


def spec_to_dict(spec: ArchitectureSpec) -> Dict:
    """Convert a spec to a JSON-compatible dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": spec.name,
        "input_shape": list(spec.input_shape),
        "num_classes": spec.num_classes,
        "use_batchnorm": spec.use_batchnorm,
        "dropout_rate": spec.dropout_rate,
        "conv_blocks": [
            {
                "residual": block.residual,
                "layers": [
                    {"filter_size": layer.filter_size, "filters": layer.filters}
                    for layer in block.layers
                ],
            }
            for block in spec.conv_blocks
        ],
        "dense_layers": [{"units": layer.units} for layer in spec.dense_layers],
    }


def spec_from_dict(data: Dict) -> ArchitectureSpec:
    """Inverse of :func:`spec_to_dict`."""
    version = data.get("format_version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported spec format version {version}")
    conv_blocks = tuple(
        ConvBlockSpec(
            tuple(
                ConvLayerSpec(filter_size=layer["filter_size"], filters=layer["filters"])
                for layer in block["layers"]
            ),
            residual=bool(block.get("residual", False)),
        )
        for block in data.get("conv_blocks", [])
    )
    dense_layers = tuple(DenseLayerSpec(units=layer["units"]) for layer in data.get("dense_layers", []))
    return ArchitectureSpec(
        name=data["name"],
        input_shape=tuple(data["input_shape"]),
        num_classes=int(data["num_classes"]),
        conv_blocks=conv_blocks,
        dense_layers=dense_layers,
        use_batchnorm=bool(data.get("use_batchnorm", True)),
        dropout_rate=float(data.get("dropout_rate", 0.0)),
    )


def spec_to_json(spec: ArchitectureSpec) -> str:
    """Serialise a spec to a JSON string."""
    return json.dumps(spec_to_dict(spec), sort_keys=True)


def spec_from_json(text: str) -> ArchitectureSpec:
    """Parse a spec from a JSON string."""
    return spec_from_dict(json.loads(text))

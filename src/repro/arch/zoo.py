"""Architecture zoo.

Provides the exact architectures used in the paper's evaluation:

* the five VGGNet variants of Table 1 (V13, V16, V16A, V16B, V19);
* the family of up to 100 distinct V16 variants used by the large-ensemble
  experiments (each variant differs from V16 in exactly one layer: more
  filters, a larger filter size, or both — §3 "VGGNets");
* ResNet-style networks with 18/34/50/101/152 layers and the four widened
  variants of each used by the ResNet experiment (§3 "ResNets");
* fully-connected (MLP) families used by unit tests and the quickstart.

Every factory accepts a ``width_scale`` so the same structures can be built
at paper scale (for parameter-count / clustering experiments, Table 1) or
scaled down (for the training benchmarks that must run on a CPU-only numpy
substrate — see DESIGN.md §4).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.arch.spec import ArchitectureSpec, ConvBlockSpec, ConvLayerSpec, DenseLayerSpec
from repro.utils.rng import SeedLike, as_rng

DEFAULT_INPUT_SHAPE: Tuple[int, int, int] = (3, 32, 32)


def _scale(filters: int, width_scale: float) -> int:
    """Scale a filter count, never going below 2 channels."""
    return max(2, int(round(filters * width_scale)))


def _conv_spec(
    name: str,
    blocks: Sequence[Sequence[Tuple[int, int]]],
    num_classes: int,
    input_shape: Tuple[int, int, int],
    width_scale: float,
    residual: bool = False,
    dense_layers: Sequence[int] = (),
    use_batchnorm: bool = True,
) -> ArchitectureSpec:
    conv_blocks = tuple(
        ConvBlockSpec(
            tuple(
                ConvLayerSpec(filter_size=size, filters=_scale(filters, width_scale))
                for size, filters in block
            ),
            residual=residual,
        )
        for block in blocks
    )
    return ArchitectureSpec(
        name=name,
        input_shape=input_shape,
        num_classes=num_classes,
        conv_blocks=conv_blocks,
        dense_layers=tuple(DenseLayerSpec(_scale(u, width_scale)) for u in dense_layers),
        use_batchnorm=use_batchnorm,
    )


# --------------------------------------------------------------------------
# VGGNet variants (Table 1)
# --------------------------------------------------------------------------

_VGG_TABLE1: dict = {
    # name -> list of blocks, each a list of (filter_size, filters)
    "V13": [
        [(3, 64)] * 2,
        [(3, 128)] * 2,
        [(3, 256)] * 2,
        [(3, 512)] * 2,
        [(3, 512)] * 2,
    ],
    "V16": [
        [(3, 64)] * 2,
        [(3, 128)] * 2,
        [(3, 256)] * 2 + [(1, 256)],
        [(3, 512)] * 2 + [(1, 512)],
        [(3, 512)] * 2 + [(1, 512)],
    ],
    "V16A": [
        [(3, 128)] * 2,
        [(3, 128)] * 2,
        [(3, 128)] * 2 + [(1, 256)],
        [(3, 512)] * 2 + [(1, 512)],
        [(3, 256)] * 2 + [(1, 512)],
    ],
    "V16B": [
        [(3, 64)] * 2,
        [(3, 128)] * 2,
        [(3, 256)] * 2 + [(3, 256)],
        [(3, 512)] * 2 + [(3, 512)],
        [(3, 512)] * 2 + [(3, 512)],
    ],
    "V19": [
        [(3, 64)] * 2,
        [(3, 128)] * 2,
        [(3, 256)] * 4,
        [(3, 512)] * 4,
        [(3, 512)] * 4,
    ],
}

VGG_VARIANT_NAMES: Tuple[str, ...] = tuple(_VGG_TABLE1)


def vgg(
    variant: str,
    num_classes: int = 10,
    input_shape: Tuple[int, int, int] = DEFAULT_INPUT_SHAPE,
    width_scale: float = 1.0,
) -> ArchitectureSpec:
    """Build one of the Table-1 VGGNet variants (V13, V16, V16A, V16B, V19)."""
    key = variant.upper()
    if key not in _VGG_TABLE1:
        raise ValueError(f"unknown VGG variant {variant!r}; known: {sorted(_VGG_TABLE1)}")
    name = key if width_scale == 1.0 else f"{key}@{width_scale:g}"
    return _conv_spec(name, _VGG_TABLE1[key], num_classes, input_shape, width_scale)


def small_vgg_ensemble(
    num_classes: int = 10,
    input_shape: Tuple[int, int, int] = DEFAULT_INPUT_SHAPE,
    width_scale: float = 1.0,
) -> List[ArchitectureSpec]:
    """The small ensemble of §3: the five VGGNet variants of Table 1."""
    return [vgg(name, num_classes, input_shape, width_scale) for name in VGG_VARIANT_NAMES]


def v16_variant_family(
    count: int,
    num_classes: int = 10,
    input_shape: Tuple[int, int, int] = DEFAULT_INPUT_SHAPE,
    width_scale: float = 1.0,
    seed: SeedLike = 0,
) -> List[ArchitectureSpec]:
    """The large-ensemble family: up to ``count`` distinct variants of V16.

    As in the paper, every member has a distinct architecture obtained from
    V16 by modifying exactly one convolutional layer in one of three ways:
    (i) increasing its number of filters, (ii) increasing its filter size, or
    (iii) both.  The base V16 is always the first member so that the
    constructed MotherNet coincides with V16 itself.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    rng = as_rng(seed)
    base_blocks = _VGG_TABLE1["V16"]
    positions = [
        (b, i) for b, block in enumerate(base_blocks) for i in range(len(block))
    ]
    members: List[ArchitectureSpec] = [
        vgg("V16", num_classes, input_shape, width_scale).with_name("V16-base")
    ]
    seen = {tuple(tuple(block) for block in base_blocks)}
    attempts = 0
    while len(members) < count:
        attempts += 1
        if attempts > 100 * count:
            raise RuntimeError("unable to generate enough distinct V16 variants")
        block_idx, layer_idx = positions[int(rng.integers(len(positions)))]
        mode = int(rng.integers(3))
        blocks = [list(block) for block in base_blocks]
        size, filters = blocks[block_idx][layer_idx]
        if mode in (0, 2):  # more filters
            filters = int(filters * float(rng.choice([1.125, 1.25, 1.375, 1.5, 1.75, 2.0])))
        if mode in (1, 2):  # larger filter size
            size = size + 2
        blocks[block_idx][layer_idx] = (size, filters)
        key = tuple(tuple(block) for block in blocks)
        if key in seen:
            continue
        seen.add(key)
        name = f"V16-var-{len(members):03d}"
        members.append(_conv_spec(name, blocks, num_classes, input_shape, width_scale))
    return members[:count]


# --------------------------------------------------------------------------
# ResNet variants
# --------------------------------------------------------------------------

# Units per block for the standard ResNet depths.  The paper uses the
# bottleneck design for ResNet-50/101/152; this substrate uses two-convolution
# basic units throughout (see DESIGN.md §4) while keeping the published unit
# counts, so relative sizes and the clustering structure are preserved.
_RESNET_UNITS: dict = {
    18: [2, 2, 2, 2],
    34: [3, 4, 6, 3],
    50: [3, 4, 6, 3],
    101: [3, 4, 23, 3],
    152: [3, 8, 36, 3],
}
_RESNET_WIDTHS: Tuple[int, ...] = (64, 128, 256, 512)
# ResNet-50/101/152 use 4x wider block outputs (bottleneck expansion); widening
# the basic units for those depths keeps their parameter counts well separated
# from ResNet-18/34, which is what drives the clustering result of §3.
_RESNET_EXPANSION: dict = {18: 1, 34: 1, 50: 2, 101: 2, 152: 2}

RESNET_DEPTHS: Tuple[int, ...] = tuple(sorted(_RESNET_UNITS))


def resnet(
    depth: int,
    num_classes: int = 10,
    input_shape: Tuple[int, int, int] = DEFAULT_INPUT_SHAPE,
    width_scale: float = 1.0,
    block_width_multipliers: Sequence[float] = (1.0, 1.0, 1.0, 1.0),
    block_width_offsets: Sequence[int] = (0, 0, 0, 0),
    name: str | None = None,
) -> ArchitectureSpec:
    """Build a ResNet-style architecture of the given ``depth``.

    ``block_width_multipliers`` / ``block_width_offsets`` implement the four
    widened variants used by the paper's ResNet experiment (double or +2 the
    filter count of every even / odd block).
    """
    if depth not in _RESNET_UNITS:
        raise ValueError(f"unsupported ResNet depth {depth}; known: {RESNET_DEPTHS}")
    if len(block_width_multipliers) != 4 or len(block_width_offsets) != 4:
        raise ValueError("ResNets have four blocks; provide four multipliers/offsets")
    expansion = _RESNET_EXPANSION[depth]
    blocks = []
    for b, units in enumerate(_RESNET_UNITS[depth]):
        width = _RESNET_WIDTHS[b] * expansion * block_width_multipliers[b]
        filters = _scale(width, width_scale) + int(block_width_offsets[b])
        blocks.append([(3, filters)] * units)
    spec_name = name or (f"ResNet{depth}" if width_scale == 1.0 else f"ResNet{depth}@{width_scale:g}")
    return _conv_spec(
        spec_name, blocks, num_classes, input_shape, width_scale=1.0, residual=True
    )


def resnet_variant_family(
    num_classes: int = 10,
    input_shape: Tuple[int, int, int] = DEFAULT_INPUT_SHAPE,
    width_scale: float = 1.0,
    depths: Sequence[int] = RESNET_DEPTHS,
) -> List[ArchitectureSpec]:
    """The 25-member ResNet ensemble of §3.

    For each depth in ``depths`` the family contains the base network plus
    four variants: filter count doubled for every even block, doubled for
    every odd block, increased by two for every even block, and increased by
    two for every odd block.
    """
    even = (0, 2)
    odd = (1, 3)
    variants = [
        ("base", (1.0, 1.0, 1.0, 1.0), (0, 0, 0, 0)),
        ("x2even", tuple(2.0 if b in even else 1.0 for b in range(4)), (0, 0, 0, 0)),
        ("x2odd", tuple(2.0 if b in odd else 1.0 for b in range(4)), (0, 0, 0, 0)),
        ("p2even", (1.0, 1.0, 1.0, 1.0), tuple(2 if b in even else 0 for b in range(4))),
        ("p2odd", (1.0, 1.0, 1.0, 1.0), tuple(2 if b in odd else 0 for b in range(4))),
    ]
    members: List[ArchitectureSpec] = []
    for depth in depths:
        for suffix, multipliers, offsets in variants:
            members.append(
                resnet(
                    depth,
                    num_classes=num_classes,
                    input_shape=input_shape,
                    width_scale=width_scale,
                    block_width_multipliers=multipliers,
                    block_width_offsets=offsets,
                    name=f"ResNet{depth}-{suffix}",
                )
            )
    return members


# --------------------------------------------------------------------------
# Fully-connected families
# --------------------------------------------------------------------------


def mlp(
    name: str,
    input_features: int,
    hidden_units: Sequence[int],
    num_classes: int,
    use_batchnorm: bool = False,
) -> ArchitectureSpec:
    """A plain multi-layer perceptron."""
    return ArchitectureSpec.dense(
        name, input_features, hidden_units, num_classes, use_batchnorm=use_batchnorm
    )


def mlp_family(
    count: int,
    input_features: int = 64,
    num_classes: int = 10,
    base_width: int = 32,
    base_depth: int = 2,
    seed: SeedLike = 0,
    use_batchnorm: bool = False,
) -> List[ArchitectureSpec]:
    """A family of MLPs with diverse depths and widths.

    Member 0 is the base network; further members add layers and/or widen
    existing layers, giving a family from which a non-trivial MotherNet can be
    constructed.  Used by the quickstart example and by unit/property tests.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    rng = as_rng(seed)
    members: List[ArchitectureSpec] = []
    seen = set()
    widths = [base_width] * base_depth
    members.append(mlp("mlp-base", input_features, widths, num_classes, use_batchnorm))
    seen.add(tuple(widths))
    attempts = 0
    while len(members) < count:
        attempts += 1
        if attempts > 200 * count:
            raise RuntimeError("unable to generate enough distinct MLP variants")
        depth = base_depth + int(rng.integers(0, 3))
        layer_widths = []
        for i in range(depth):
            multiplier = float(rng.choice([1.0, 1.25, 1.5, 2.0]))
            layer_widths.append(max(4, int(round(base_width * multiplier))))
        key = tuple(layer_widths)
        if key in seen:
            continue
        seen.add(key)
        members.append(
            mlp(
                f"mlp-var-{len(members):03d}",
                input_features,
                layer_widths,
                num_classes,
                use_batchnorm,
            )
        )
    return members[:count]

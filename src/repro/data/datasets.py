"""Synthetic data sets standing in for CIFAR-10, CIFAR-100, and SVHN.

The paper evaluates on CIFAR-10, CIFAR-100 and SVHN.  Those require network
downloads and GPU-scale training, neither of which is available to this
reproduction, so this module generates deterministic synthetic image
classification tasks that exercise exactly the same code paths (multi-class
image classification with convolutional networks) and preserve the properties
the paper's analysis relies on:

* **class structure** — each class is defined by a smooth spatial prototype;
  samples are noisy, spatially jittered, brightness-perturbed renderings of
  their class prototype, so convolutional features genuinely help;
* **difficulty ordering** — ``cifar100_like`` has 10x more classes than
  ``cifar10_like`` (ensembles help more, as the paper observes), while
  ``svhn_like`` has markedly lower intra-class variation so a single base
  learner already achieves low error and ensembling helps least (§3,
  discussion of Figure 8);
* **determinism** — everything is derived from an explicit seed.

See DESIGN.md §4 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


@dataclass
class Dataset:
    """An in-memory classification data set."""

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int

    def __post_init__(self):
        if self.x_train.shape[0] != self.y_train.shape[0]:
            raise ValueError("x_train / y_train size mismatch")
        if self.x_test.shape[0] != self.y_test.shape[0]:
            raise ValueError("x_test / y_test size mismatch")
        if self.num_classes < 2:
            raise ValueError("num_classes must be at least 2")

    @property
    def input_shape(self) -> Tuple[int, ...]:
        """Per-sample input shape (``(C, H, W)`` for images)."""
        return tuple(self.x_train.shape[1:])

    @property
    def train_size(self) -> int:
        return int(self.x_train.shape[0])

    @property
    def test_size(self) -> int:
        return int(self.x_test.shape[0])

    def subset(self, train_samples: int, test_samples: int) -> "Dataset":
        """A smaller view of the data set (used by fast tests)."""
        return Dataset(
            name=f"{self.name}[{train_samples}/{test_samples}]",
            x_train=self.x_train[:train_samples],
            y_train=self.y_train[:train_samples],
            x_test=self.x_test[:test_samples],
            y_test=self.y_test[:test_samples],
            num_classes=self.num_classes,
        )


def _class_prototypes(
    num_classes: int,
    image_shape: Tuple[int, int, int],
    rng: np.random.Generator,
    coarse: int = 4,
) -> np.ndarray:
    """Smooth per-class prototype images.

    Each prototype is a random coarse grid upsampled to the target resolution,
    which yields spatially-correlated structure that convolutions can exploit
    (unlike i.i.d. noise)."""
    channels, height, width = image_shape
    coarse = max(2, min(coarse, height, width))
    grids = rng.normal(0.0, 1.0, size=(num_classes, channels, coarse, coarse))
    reps_h = int(np.ceil(height / coarse))
    reps_w = int(np.ceil(width / coarse))
    upsampled = np.repeat(np.repeat(grids, reps_h, axis=2), reps_w, axis=3)
    return upsampled[:, :, :height, :width]


def _render_samples(
    prototypes: np.ndarray,
    labels: np.ndarray,
    noise_std: float,
    jitter: int,
    brightness_std: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Render noisy, jittered, brightness-perturbed samples of the prototypes."""
    images = prototypes[labels].copy()
    n = images.shape[0]
    if jitter > 0:
        shifts_h = rng.integers(-jitter, jitter + 1, size=n)
        shifts_w = rng.integers(-jitter, jitter + 1, size=n)
        for i in range(n):
            if shifts_h[i] or shifts_w[i]:
                images[i] = np.roll(images[i], (int(shifts_h[i]), int(shifts_w[i])), axis=(1, 2))
    if brightness_std > 0:
        images += rng.normal(0.0, brightness_std, size=(n, 1, 1, 1))
    if noise_std > 0:
        images += rng.normal(0.0, noise_std, size=images.shape)
    return images


def synthetic_image_classification(
    name: str,
    num_classes: int = 10,
    image_shape: Tuple[int, int, int] = (3, 16, 16),
    train_samples: int = 2048,
    test_samples: int = 512,
    noise_std: float = 0.9,
    jitter: int = 2,
    brightness_std: float = 0.2,
    seed: SeedLike = 0,
) -> Dataset:
    """Generate a synthetic multi-class image classification data set.

    ``noise_std`` controls intra-class variation: larger values make the task
    harder (higher single-network error, more head-room for ensembles).
    """
    if num_classes < 2:
        raise ValueError("num_classes must be at least 2")
    if train_samples < num_classes or test_samples < 1:
        raise ValueError("need at least one training sample per class and one test sample")
    rng = as_rng(seed)
    prototypes = _class_prototypes(num_classes, image_shape, rng)

    def _labels(count: int) -> np.ndarray:
        # Balanced labels: every class appears floor/ceil(count / num_classes) times.
        labels = np.arange(count) % num_classes
        rng.shuffle(labels)
        return labels

    y_train = _labels(train_samples)
    y_test = _labels(test_samples)
    x_train = _render_samples(prototypes, y_train, noise_std, jitter, brightness_std, rng)
    x_test = _render_samples(prototypes, y_test, noise_std, jitter, brightness_std, rng)

    # Normalise with training statistics (as one would with real CIFAR/SVHN).
    mean = x_train.mean()
    std = x_train.std() + 1e-8
    x_train = (x_train - mean) / std
    x_test = (x_test - mean) / std
    return Dataset(
        name=name,
        x_train=x_train,
        y_train=y_train.astype(np.int64),
        x_test=x_test,
        y_test=y_test.astype(np.int64),
        num_classes=num_classes,
    )


def cifar10_like(
    train_samples: int = 2048,
    test_samples: int = 512,
    image_shape: Tuple[int, int, int] = (3, 16, 16),
    seed: SeedLike = 0,
) -> Dataset:
    """A CIFAR-10 stand-in: 10 classes, substantial intra-class variation."""
    return synthetic_image_classification(
        "cifar10-like",
        num_classes=10,
        image_shape=image_shape,
        train_samples=train_samples,
        test_samples=test_samples,
        noise_std=0.9,
        jitter=2,
        brightness_std=0.2,
        seed=seed,
    )


def cifar100_like(
    train_samples: int = 2048,
    test_samples: int = 512,
    image_shape: Tuple[int, int, int] = (3, 16, 16),
    num_classes: int = 100,
    seed: SeedLike = 1,
) -> Dataset:
    """A CIFAR-100 stand-in: many classes, high intra-class variation.

    ``num_classes`` defaults to 100 like the real data set; benchmarks running
    with very few samples may reduce it (keeping it well above 10) so that
    every class still has several training examples.
    """
    return synthetic_image_classification(
        "cifar100-like",
        num_classes=num_classes,
        image_shape=image_shape,
        train_samples=train_samples,
        test_samples=test_samples,
        noise_std=1.0,
        jitter=2,
        brightness_std=0.2,
        seed=seed,
    )


def svhn_like(
    train_samples: int = 3072,
    test_samples: int = 768,
    image_shape: Tuple[int, int, int] = (3, 16, 16),
    seed: SeedLike = 2,
) -> Dataset:
    """An SVHN stand-in: 10 classes with *low* intra-class variation, so a
    single base learner already reaches low error (the paper's explanation for
    the small ensemble gains on SVHN)."""
    return synthetic_image_classification(
        "svhn-like",
        num_classes=10,
        image_shape=image_shape,
        train_samples=train_samples,
        test_samples=test_samples,
        noise_std=0.35,
        jitter=1,
        brightness_std=0.1,
        seed=seed,
    )


def synthetic_tabular_classification(
    name: str = "tabular",
    num_classes: int = 10,
    num_features: int = 64,
    train_samples: int = 2048,
    test_samples: int = 512,
    class_separation: float = 2.0,
    noise_std: float = 1.0,
    seed: SeedLike = 0,
) -> Dataset:
    """Gaussian-blob classification for fully-connected networks (used by the
    quickstart example and the MLP unit tests)."""
    if num_features < 1:
        raise ValueError("num_features must be positive")
    rng = as_rng(seed)
    centers = rng.normal(0.0, class_separation, size=(num_classes, num_features))

    def _split(count: int):
        labels = np.arange(count) % num_classes
        rng.shuffle(labels)
        x = centers[labels] + rng.normal(0.0, noise_std, size=(count, num_features))
        return x, labels.astype(np.int64)

    x_train, y_train = _split(train_samples)
    x_test, y_test = _split(test_samples)
    mean = x_train.mean(axis=0)
    std = x_train.std(axis=0) + 1e-8
    return Dataset(
        name=name,
        x_train=(x_train - mean) / std,
        y_train=y_train,
        x_test=(x_test - mean) / std,
        y_test=y_test,
        num_classes=num_classes,
    )


_DATASETS = {
    "cifar10": cifar10_like,
    "cifar100": cifar100_like,
    "svhn": svhn_like,
    "tabular": synthetic_tabular_classification,
}


def load_dataset(name: str, **kwargs) -> Dataset:
    """Load a named data-set stand-in (``cifar10``, ``cifar100``, ``svhn``,
    ``tabular``)."""
    try:
        factory = _DATASETS[name.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown dataset {name!r}; known: {sorted(_DATASETS)}") from exc
    return factory(**kwargs)

"""Data substrate: synthetic CIFAR/SVHN stand-ins and sampling utilities."""

from repro.data.datasets import (
    Dataset,
    cifar10_like,
    cifar100_like,
    load_dataset,
    svhn_like,
    synthetic_image_classification,
    synthetic_tabular_classification,
)
from repro.data.sampling import (
    BaggedSample,
    bootstrap_sample,
    stratified_subset,
    train_validation_split,
)

__all__ = [
    "Dataset",
    "cifar10_like",
    "cifar100_like",
    "svhn_like",
    "load_dataset",
    "synthetic_image_classification",
    "synthetic_tabular_classification",
    "BaggedSample",
    "bootstrap_sample",
    "stratified_subset",
    "train_validation_split",
]

"""Sampling utilities: bootstrap aggregation (bagging), splits, subsets.

Bagging is central to the paper: hatched ensemble members are fine-tuned on
bagged samples of the training set (§2.2 "Training ensemble networks"), and
bagging-from-scratch is one of the two baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


@dataclass
class BaggedSample:
    """A bootstrap sample together with bookkeeping about its composition."""

    x: np.ndarray
    y: np.ndarray
    indices: np.ndarray
    unique_fraction: float

    @property
    def size(self) -> int:
        return int(self.x.shape[0])


def bootstrap_sample(
    x: np.ndarray,
    y: np.ndarray,
    seed: SeedLike = None,
    sample_size: int | None = None,
) -> BaggedSample:
    """Draw a bootstrap sample (sampling with replacement).

    By default the sample has the same size as the original data set, exactly
    as in Breiman's bagging and the paper's training procedure.  The returned
    ``unique_fraction`` (≈ 0.632 for large data sets) quantifies how many
    unique items the member actually sees — the reason bagging alone increases
    bias for data-hungry neural networks.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape[0] != y.shape[0]:
        raise ValueError("x and y must have the same number of samples")
    if x.shape[0] == 0:
        raise ValueError("cannot bootstrap an empty data set")
    n = x.shape[0]
    size = n if sample_size is None else int(sample_size)
    if size < 1:
        raise ValueError("sample_size must be positive")
    rng = as_rng(seed)
    indices = rng.integers(0, n, size=size)
    unique_fraction = float(np.unique(indices).size) / n
    return BaggedSample(x=x[indices], y=y[indices], indices=indices, unique_fraction=unique_fraction)


def train_validation_split(
    x: np.ndarray,
    y: np.ndarray,
    validation_fraction: float = 0.1,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into train/validation parts."""
    if not 0.0 < validation_fraction < 1.0:
        raise ValueError("validation_fraction must be in (0, 1)")
    x = np.asarray(x)
    y = np.asarray(y)
    n = x.shape[0]
    n_val = max(1, int(round(n * validation_fraction)))
    if n_val >= n:
        raise ValueError("validation split would consume the whole data set")
    rng = as_rng(seed)
    order = rng.permutation(n)
    val_idx, train_idx = order[:n_val], order[n_val:]
    return x[train_idx], y[train_idx], x[val_idx], y[val_idx]


def stratified_subset(
    x: np.ndarray,
    y: np.ndarray,
    samples_per_class: int,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Class-balanced subset with ``samples_per_class`` items per class."""
    if samples_per_class < 1:
        raise ValueError("samples_per_class must be positive")
    x = np.asarray(x)
    y = np.asarray(y)
    rng = as_rng(seed)
    chosen = []
    for label in np.unique(y):
        candidates = np.flatnonzero(y == label)
        if candidates.size < samples_per_class:
            raise ValueError(
                f"class {label} has only {candidates.size} samples, need {samples_per_class}"
            )
        chosen.append(rng.choice(candidates, size=samples_per_class, replace=False))
    indices = np.concatenate(chosen)
    rng.shuffle(indices)
    return x[indices], y[indices]

"""Declarative fault injection registry (``REPRO_FAULTS``), stdlib only.

Grammar
-------

``REPRO_FAULTS`` is a comma-separated list of fault specs::

    REPRO_FAULTS="train_crash:member=m2:attempt=0,serve_hang:after=2"

Each spec is ``<point>_<action>`` followed by ``:key=value`` qualifiers:

* ``point`` names the injection site: ``train`` (the training worker's
  member entrypoint), ``serve`` (the serving worker's request loop),
  ``serve_shm_write`` (the serving worker on the shm transport, *after*
  inference but *before* the result is written to its arena slot — the
  nastiest moment for a crash, since the dispatcher has regions reserved
  for a descriptor that will never arrive), ``fleet_consume`` (a fleet
  consumer after leasing a job, before inference — a crash strands the
  leased job until the broker's visibility timeout redelivers it), or
  ``fleet_ack`` (after inference, before the ack — a crash loses a
  *computed* result; at-least-once redelivery recomputes it elsewhere).
* ``action`` is what happens when the spec fires:

  - ``crash`` — the process SIGKILLs itself (indistinguishable from an OOM
    kill or a hardware fault: no cleanup, no exception, queues potentially
    poisoned mid-operation);
  - ``hang``  — the call sleeps for ``seconds`` (default 3600), simulating a
    wedged syscall or an infinite loop;
  - ``error`` — the call raises :class:`InjectedFault`, simulating an
    in-process failure that unwinds normally.

* Qualifiers filter *which* calls fire.  Two keys are interpreted by the
  matcher itself:

  - ``after=N`` — skip the first ``N`` matching calls (a per-process
    counter: spawn-started workers inherit the environment but start their
    own counters);
  - ``times=K`` — fire at most ``K`` times per process (default: every
    matching call).

  Every other qualifier must equal (string comparison) the same-named
  context field the injection point supplies — e.g. ``member=<name>`` and
  ``attempt=<n>`` at the training point, ``worker=<id>`` at the serving
  point, ``consumer=<id>``/``job=<id>``/``attempt=<n>`` at the fleet
  points.  ``attempt=0`` is how chaos tests arrange "fail once, then let
  the retry succeed": the retried task carries ``attempt=1`` (a redelivered
  fleet job its delivery count) and no longer matches.

Injection points call :func:`fire` with their point name and context; the
plan is parsed lazily from the environment and cached per process, keyed by
the raw variable value so tests that monkeypatch ``REPRO_FAULTS`` see their
change immediately.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.utils.logging import get_logger

logger = get_logger("faults")

ENV_VAR = "REPRO_FAULTS"
ACTIONS = ("crash", "hang", "error")

__all__ = [
    "ACTIONS",
    "ENV_VAR",
    "FaultError",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "fire",
    "parse_faults",
    "reset_plan",
]


class FaultError(ValueError):
    """A ``REPRO_FAULTS`` value that does not parse."""


class InjectedFault(RuntimeError):
    """The exception raised by ``error``-action faults."""


@dataclass
class FaultSpec:
    """One parsed fault: where it fires, what it does, and when."""

    point: str
    action: str
    qualifiers: Mapping[str, str]
    after: int = 0
    times: Optional[int] = None
    seconds: float = 3600.0
    # Per-process firing state (the plan owns exactly one spec instance).
    seen: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def matches(self, point: str, context: Mapping[str, object]) -> bool:
        if point != self.point:
            return False
        for key, expected in self.qualifiers.items():
            if key not in context or str(context[key]) != expected:
                return False
        return True

    def should_fire(self) -> bool:
        """Advance the per-process counters; True when this call fires."""
        self.seen += 1
        if self.seen <= self.after:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        self.fired += 1
        return True

    def describe(self) -> str:
        quals = "".join(f":{k}={v}" for k, v in sorted(self.qualifiers.items()))
        return f"{self.point}_{self.action}{quals}"


def parse_faults(value: str) -> List[FaultSpec]:
    """Parse a ``REPRO_FAULTS`` value into :class:`FaultSpec` records."""
    specs: List[FaultSpec] = []
    for raw in value.split(","):
        raw = raw.strip()
        if not raw:
            continue
        name, _, rest = raw.partition(":")
        point, sep, action = name.rpartition("_")
        if not sep or action not in ACTIONS or not point:
            raise FaultError(
                f"bad fault name {name!r}: expected <point>_<action> with action "
                f"in {'/'.join(ACTIONS)}"
            )
        qualifiers: Dict[str, str] = {}
        after = 0
        times: Optional[int] = None
        seconds = 3600.0
        for qual in filter(None, rest.split(":")):
            key, sep, val = qual.partition("=")
            if not sep or not key or not val:
                raise FaultError(f"bad qualifier {qual!r} in fault {raw!r} (need key=value)")
            if key == "after":
                after = int(val)
            elif key == "times":
                times = int(val)
            elif key == "seconds":
                seconds = float(val)
            else:
                qualifiers[key] = val
        specs.append(
            FaultSpec(
                point=point,
                action=action,
                qualifiers=qualifiers,
                after=after,
                times=times,
                seconds=seconds,
            )
        )
    return specs


# The cached plan, keyed by the raw env value that produced it so a changed
# environment (tests monkeypatching REPRO_FAULTS) invalidates it implicitly.
_plan_key: Optional[str] = None
_plan: List[FaultSpec] = []


def active_plan() -> List[FaultSpec]:
    """The fault specs for this process's current ``REPRO_FAULTS`` value."""
    global _plan_key, _plan
    value = os.environ.get(ENV_VAR, "")
    if value != _plan_key:
        _plan = parse_faults(value) if value else []
        _plan_key = value
        if _plan:
            logger.warning(
                "fault injection active: %s", ", ".join(s.describe() for s in _plan)
            )
    return _plan


def reset_plan() -> None:
    """Forget the cached plan and its counters (test helper)."""
    global _plan_key, _plan
    _plan_key = None
    _plan = []


def fire(point: str, **context: object) -> Optional[Tuple[str, FaultSpec]]:
    """Injection point: fire whichever configured fault matches this call.

    ``crash`` never returns (the process SIGKILLs itself); ``error`` raises
    :class:`InjectedFault`; ``hang`` sleeps the spec's ``seconds`` and then
    returns ``("hang", spec)`` so callers can log the survival.  Returns
    ``None`` when nothing matched — the common, near-free case.
    """
    for spec in active_plan():
        if not spec.matches(point, context):
            continue
        if not spec.should_fire():
            continue
        logger.warning("firing injected fault %s at %s %r", spec.describe(), point, context)
        if spec.action == "crash":
            os.kill(os.getpid(), signal.SIGKILL)
            time.sleep(60)  # pragma: no cover - the SIGKILL beats the sleep
        elif spec.action == "error":
            raise InjectedFault(
                f"injected fault {spec.describe()} at {point} (context {dict(context)})"
            )
        elif spec.action == "hang":
            # Sleep in small slices so an interrupted test tears down fast.
            deadline = time.monotonic() + spec.seconds
            while time.monotonic() < deadline:
                time.sleep(min(0.5, max(0.0, deadline - time.monotonic())))
            return ("hang", spec)
    return None

"""Fault injection for chaos testing the training and serving paths.

This package makes the library's resilience claims *testable*: instead of
hand-rolled monkeypatching, the chaos tests (and the CI ``chaos-smoke`` job)
describe faults declaratively through the ``REPRO_FAULTS`` environment
variable, and the worker entrypoints carry permanent, dependency-free
injection points that fire them.  With ``REPRO_FAULTS`` unset the injection
points are a dictionary lookup against an empty plan — effectively free.

See :mod:`repro.faults.injection` for the grammar and the injection-point
contract.
"""

from repro.faults.injection import (
    FaultError,
    FaultSpec,
    InjectedFault,
    active_plan,
    fire,
    parse_faults,
    reset_plan,
)

__all__ = [
    "FaultError",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "fire",
    "parse_faults",
    "reset_plan",
]

"""MotherNets: Rapid Deep Ensemble Learning — reproduction library.

This package reproduces the system described in *MotherNets: Rapid Deep
Ensemble Learning* (Wasay, Liao, Idreos; MLSys 2020): rapid training of
large ensembles of deep neural networks with diverse architectures by

1. constructing a MotherNet that captures the structural similarity of the
   ensemble (``repro.core.construct_mothernet``),
2. clustering ensembles with large size spreads (``repro.core.cluster_ensemble``),
3. training the MotherNet(s) once on the full data set,
4. hatching every member via function-preserving transformations
   (``repro.core.hatch``), and
5. fine-tuning the members on bagged samples
   (``repro.core.MotherNetsTrainer``).

Sub-packages
------------
``repro.nn``
    Pure-numpy neural-network substrate (layers, optimizers, training loop).
``repro.arch``
    Architecture specifications and the paper's architecture zoo.
``repro.core``
    The MotherNets algorithms, ensemble inference, baselines, cost model.
``repro.data``
    Synthetic CIFAR/SVHN stand-ins and bagging utilities.
``repro.evaluation``
    Ensemble metrics and benchmark reporting helpers.
``repro.api``
    The unified front door: declarative :class:`~repro.api.ExperimentSpec`
    experiments, ensemble artifacts, and the :class:`~repro.api.EnsemblePredictor`
    serving facade (also exposed as the ``python -m repro`` CLI).
``repro.parallel``
    Process-based parallel execution: multi-process ensemble-member training
    over shared-memory datasets (``TrainingConfig(workers=N)``) and the
    self-healing multi-worker :class:`~repro.parallel.PoolPredictor` serving
    pool behind ``python -m repro serve``.
``repro.obs``
    Observability: dependency-free metrics (Prometheus ``/metrics``
    exposition), structured JSON event logging, and process gauges,
    instrumented through the training and serving hot paths.
"""

__version__ = "1.6.0"

from repro import api, arch, core, data, evaluation, nn, obs, utils

__all__ = ["api", "arch", "core", "data", "evaluation", "nn", "obs", "utils", "__version__"]

"""MotherNets core: MotherNet construction, clustering, function-preserving
morphisms, hatching, ensemble inference, training pipelines, and the
training-cost model."""

from repro.core.mothernet import construct_mothernet
from repro.core.registry import (
    available_trainers,
    create_trainer,
    get_trainer,
    register_trainer,
)
from repro.core.clustering import (
    Cluster,
    cluster_ensemble,
    clustering_summary,
    minimum_cluster_count_bruteforce,
    satisfies_clustering_condition,
)
from repro.core.morphism import (
    deepen_conv_block,
    deepen_dense,
    deepen_residual_block,
    expand_conv_filter,
    transfer_matching_weights,
    widen_conv_layer,
    widen_dense_layer,
    widen_residual_block,
)
from repro.core.hatching import (
    HatchingError,
    HatchingPlan,
    HatchingStep,
    hatch,
    hatch_ensemble,
    plan_hatching,
    verify_function_preservation,
)
from repro.core.ensemble import (
    COMBINATION_METHODS,
    Ensemble,
    EnsembleMember,
    INFERENCE_METHODS,
    METHOD_ABBREVIATIONS,
    resolve_combination_method,
)
from repro.core.artifact_store import (
    ArtifactStore,
    ResolvedArtifact,
    resolve_artifact,
)
from repro.core.cost_model import AnalyticalCostModel, CostLedger, CostRecord, speedup
from repro.core.trainer import (
    EnsembleTrainer,
    EnsembleTrainingRun,
    MotherNetsTrainer,
    summarize_run,
)
from repro.core.baselines import BaggingTrainer, FullDataTrainer, SnapshotEnsembleTrainer

__all__ = [
    "construct_mothernet",
    "available_trainers",
    "create_trainer",
    "get_trainer",
    "register_trainer",
    "COMBINATION_METHODS",
    "Cluster",
    "cluster_ensemble",
    "clustering_summary",
    "minimum_cluster_count_bruteforce",
    "satisfies_clustering_condition",
    "deepen_conv_block",
    "deepen_dense",
    "deepen_residual_block",
    "expand_conv_filter",
    "transfer_matching_weights",
    "widen_conv_layer",
    "widen_dense_layer",
    "widen_residual_block",
    "HatchingError",
    "HatchingPlan",
    "HatchingStep",
    "hatch",
    "hatch_ensemble",
    "plan_hatching",
    "verify_function_preservation",
    "Ensemble",
    "EnsembleMember",
    "INFERENCE_METHODS",
    "METHOD_ABBREVIATIONS",
    "resolve_combination_method",
    "ArtifactStore",
    "ResolvedArtifact",
    "resolve_artifact",
    "AnalyticalCostModel",
    "CostLedger",
    "CostRecord",
    "speedup",
    "EnsembleTrainer",
    "EnsembleTrainingRun",
    "MotherNetsTrainer",
    "summarize_run",
    "BaggingTrainer",
    "FullDataTrainer",
    "SnapshotEnsembleTrainer",
]

"""String-keyed registry of ensemble-trainer classes.

The three approaches of the paper (and any future ones) are selected by name
instead of by import::

    from repro.core import get_trainer, create_trainer

    trainer_cls = get_trainer("mothernets")
    trainer = create_trainer("full-data", config=TrainingConfig(max_epochs=5))

Trainer classes self-register at import time with the
:func:`register_trainer` decorator; ``repro.core`` imports every built-in
trainer module, so importing the package is enough to populate the registry.
Names are normalised (case-folded, ``-`` treated as ``_``) so the CLI
spellings ``full-data`` and ``full_data`` resolve to the same class.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.trainer import EnsembleTrainer

_REGISTRY: Dict[str, Type["EnsembleTrainer"]] = {}


def _normalise(name: str) -> str:
    key = name.strip().lower().replace("-", "_")
    if not key:
        raise ValueError("trainer name must be non-empty")
    return key


def register_trainer(
    name: str, *aliases: str
) -> Callable[[Type["EnsembleTrainer"]], Type["EnsembleTrainer"]]:
    """Class decorator registering an :class:`EnsembleTrainer` under ``name``
    (plus optional ``aliases``)::

        @register_trainer("mothernets")
        class MotherNetsTrainer(EnsembleTrainer):
            ...
    """

    keys = [_normalise(name)] + [_normalise(alias) for alias in aliases]

    def decorator(cls: Type["EnsembleTrainer"]) -> Type["EnsembleTrainer"]:
        for key in keys:
            existing = _REGISTRY.get(key)
            if existing is not None and existing is not cls:
                raise ValueError(
                    f"trainer name {key!r} is already registered to {existing.__name__}"
                )
            _REGISTRY[key] = cls
        return cls

    return decorator


def get_trainer(name: str) -> Type["EnsembleTrainer"]:
    """The trainer class registered under ``name`` (raises ``KeyError`` with
    the known names when unknown)."""
    key = _normalise(name)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown trainer {name!r}; registered trainers: "
            + ", ".join(available_trainers())
        ) from None


def create_trainer(name: str, **kwargs) -> "EnsembleTrainer":
    """Instantiate the trainer registered under ``name`` with ``kwargs``
    (typically ``config=`` plus approach-specific options such as ``tau``)."""
    return get_trainer(name)(**kwargs)


def available_trainers() -> List[str]:
    """Sorted canonical names (including aliases) of all registered trainers."""
    return sorted(_REGISTRY)

"""Clustering of ensemble members (Algorithm 1, §2.3).

When the ensemble contains networks with a large size spread, a single
MotherNet would be limited by the smallest member and could share only an
insignificant amount of structure with the largest members.  The paper
therefore partitions the (size-sorted) ensemble into the minimum number of
clusters such that every member shares at least a fraction ``tau`` of its
parameters with its cluster's MotherNet, and trains one MotherNet per cluster.

Note on the condition.  The paper states the condition both in prose ("at
least a fraction τ of [a member's] parameters originate from its MotherNet")
and as a formula (``|C| - |M| < τ·|C|``).  The two uses of τ are complements
of each other (the formula's τ is ``1 - τ`` of the prose); we implement the
*prose* semantics — ``|M| ≥ τ·|C|`` — because it matches all the concrete
statements in the paper: τ = 1 gives one cluster per network, τ → 0 gives a
single cluster, and τ = 0.5 means "a majority of the parameters of every
ensemble network originates from its MotherNet" (§3) and yields the three
ResNet clusters of the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Sequence

from repro.arch.params import count_parameters, sort_by_size
from repro.arch.spec import ArchitectureSpec
from repro.core.mothernet import construct_mothernet
from repro.utils.logging import get_logger

logger = get_logger("core.clustering")


@dataclass
class Cluster:
    """One cluster of ensemble members together with its MotherNet."""

    cluster_id: int
    members: List[ArchitectureSpec]
    mothernet: ArchitectureSpec

    @property
    def size(self) -> int:
        return len(self.members)

    def min_shared_fraction(self) -> float:
        """The smallest fraction of member parameters covered by the
        MotherNet across the cluster's members."""
        mothernet_params = count_parameters(self.mothernet)
        return min(
            mothernet_params / count_parameters(member) for member in self.members
        )


def satisfies_clustering_condition(
    members: Sequence[ArchitectureSpec], tau: float
) -> bool:
    """True if the MotherNet of ``members`` covers at least a fraction ``tau``
    of the parameters of every member."""
    if not members:
        return True
    mothernet = construct_mothernet(members, name="candidate-mothernet")
    mothernet_params = count_parameters(mothernet)
    return all(
        mothernet_params >= tau * count_parameters(member) for member in members
    )


def _validate_tau(tau: float) -> None:
    if not 0.0 <= tau <= 1.0:
        raise ValueError(f"tau must be in [0, 1], got {tau}")


def cluster_ensemble(
    specs: Sequence[ArchitectureSpec], tau: float = 0.5
) -> List[Cluster]:
    """Greedy linearithmic clustering (Algorithm 1).

    Members are sorted by ascending parameter count; the algorithm grows a
    cluster by adding the next-larger member until the clustering condition
    would be violated, at which point a new cluster is started with the
    offending member.  Because the condition is monotone in the size gap
    between the smallest and the largest member of a cluster, only contiguous
    runs of the sorted order need to be considered (the observation that
    reduces the exponential search to ``n log n``).
    """
    _validate_tau(tau)
    specs = list(specs)
    if not specs:
        raise ValueError("cannot cluster an empty ensemble")
    ordered = sort_by_size(specs)

    clusters: List[Cluster] = []
    current: List[ArchitectureSpec] = []
    for spec in ordered:
        candidate = current + [spec]
        if current and not satisfies_clustering_condition(candidate, tau):
            clusters.append(_finalize_cluster(len(clusters), current))
            current = [spec]
        else:
            current = candidate
    if current:
        clusters.append(_finalize_cluster(len(clusters), current))
    logger.debug("clustered %d members into %d clusters (tau=%.2f)", len(specs), len(clusters), tau)
    return clusters


def _finalize_cluster(cluster_id: int, members: List[ArchitectureSpec]) -> Cluster:
    mothernet = construct_mothernet(members, name=f"mothernet-{cluster_id}")
    return Cluster(cluster_id=cluster_id, members=list(members), mothernet=mothernet)


def minimum_cluster_count_bruteforce(
    specs: Sequence[ArchitectureSpec], tau: float
) -> int:
    """Reference implementation: the minimum number of clusters over *all*
    contiguous partitions of the size-sorted ensemble.

    Exponential in the ensemble size; used only by tests to validate that the
    greedy Algorithm 1 produces a minimal partition.
    """
    _validate_tau(tau)
    ordered = sort_by_size(list(specs))
    n = len(ordered)
    if n == 0:
        raise ValueError("cannot cluster an empty ensemble")
    best = n
    # Choose cut points between consecutive elements (contiguous partitions).
    for k in range(n):
        if k + 1 > best:
            break
        for cuts in combinations(range(1, n), k):
            boundaries = [0, *cuts, n]
            parts = [ordered[a:b] for a, b in zip(boundaries, boundaries[1:])]
            if all(satisfies_clustering_condition(part, tau) for part in parts):
                best = min(best, len(parts))
                break
    return best


def clustering_summary(clusters: Sequence[Cluster]) -> List[dict]:
    """Human-readable summary used by reports and the τ-ablation bench."""
    summary = []
    for cluster in clusters:
        summary.append(
            {
                "cluster_id": cluster.cluster_id,
                "size": cluster.size,
                "members": [member.name for member in cluster.members],
                "mothernet_parameters": count_parameters(cluster.mothernet),
                "largest_member_parameters": max(
                    count_parameters(member) for member in cluster.members
                ),
                "min_shared_fraction": cluster.min_shared_fraction(),
            }
        )
    return summary

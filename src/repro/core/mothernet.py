"""MotherNet construction (§2.1 of the paper).

Given an ensemble of architecture specs, the MotherNet is the largest network
from which every member can be obtained through function-preserving
transformations (deepen, widen, grow filters).  Construction is purely
structural:

* **Fully-connected ensembles** — the MotherNet has as many hidden layers as
  the shallowest member; its i-th hidden layer copies the structure of the
  smallest i-th hidden layer across members.
* **Convolutional ensembles** — the MotherNet is built block-by-block: each
  block keeps as many layers as the member with the fewest layers in that
  block, and every layer position takes the minimum filter count and the
  minimum filter size observed at that position (Figure 4 of the paper).

The resulting spec is guaranteed to be hatchable into every member
(``repro.arch.validation.check_hatchable``); the tests assert this property on
both hand-written and randomly generated ensembles.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.arch.spec import (
    ArchitectureSpec,
    ConvBlockSpec,
    ConvLayerSpec,
    DenseLayerSpec,
)
from repro.arch.validation import check_same_task
from repro.utils.logging import get_logger

logger = get_logger("core.mothernet")


def _mothernet_dense_layers(specs: Sequence[ArchitectureSpec]) -> tuple:
    """Hidden fully-connected layers of the MotherNet: as many layers as the
    shallowest member, each as narrow as the narrowest layer at its position."""
    depths = [len(spec.dense_layers) for spec in specs]
    min_depth = min(depths)
    layers: List[DenseLayerSpec] = []
    for position in range(min_depth):
        min_units = min(spec.dense_layers[position].units for spec in specs)
        layers.append(DenseLayerSpec(units=min_units))
    return tuple(layers)


def _mothernet_conv_blocks(specs: Sequence[ArchitectureSpec]) -> tuple:
    """Convolutional blocks of the MotherNet, built block-by-block."""
    num_blocks = specs[0].num_blocks
    blocks: List[ConvBlockSpec] = []
    for b in range(num_blocks):
        member_blocks = [spec.conv_blocks[b] for spec in specs]
        residual = member_blocks[0].residual
        min_depth = min(block.depth for block in member_blocks)
        layers: List[ConvLayerSpec] = []
        for position in range(min_depth):
            min_filters = min(block.layers[position].filters for block in member_blocks)
            min_size = min(block.layers[position].filter_size for block in member_blocks)
            layers.append(ConvLayerSpec(filter_size=min_size, filters=min_filters))
        if residual:
            # Residual blocks are widened block-wide during hatching, so the
            # MotherNet keeps a single width for the whole block: the minimum
            # width observed anywhere in the block across members.
            block_width = min(
                layer.filters for block in member_blocks for layer in block.layers
            )
            layers = [
                ConvLayerSpec(filter_size=layer.filter_size, filters=block_width)
                for layer in layers
            ]
        blocks.append(ConvBlockSpec(tuple(layers), residual=residual))
    return tuple(blocks)


def construct_mothernet(
    specs: Sequence[ArchitectureSpec],
    name: str = "mothernet",
) -> ArchitectureSpec:
    """Construct the MotherNet spec for an ensemble of architecture specs.

    Raises
    ------
    IncompatibleArchitectureError
        If the members do not describe the same task / family (input shape,
        class count, conv-vs-dense, residual flag, block count).
    """
    specs = list(specs)
    check_same_task(specs)
    reference = specs[0]

    if reference.kind == "dense":
        mothernet = ArchitectureSpec(
            name=name,
            input_shape=reference.input_shape,
            num_classes=reference.num_classes,
            dense_layers=_mothernet_dense_layers(specs),
            use_batchnorm=reference.use_batchnorm,
            dropout_rate=min(spec.dropout_rate for spec in specs),
        )
    else:
        dense_layers = ()
        if all(spec.dense_layers for spec in specs):
            dense_layers = _mothernet_dense_layers(specs)
        mothernet = ArchitectureSpec(
            name=name,
            input_shape=reference.input_shape,
            num_classes=reference.num_classes,
            conv_blocks=_mothernet_conv_blocks(specs),
            dense_layers=dense_layers,
            use_batchnorm=reference.use_batchnorm,
            dropout_rate=min(spec.dropout_rate for spec in specs),
        )
    logger.debug("constructed %s for %d members", mothernet.name, len(specs))
    return mothernet

"""Generation-versioned artifact store with an atomic ``CURRENT`` pointer.

The bare artifact directories written by :func:`repro.api.artifacts.
save_ensemble_run` are immutable snapshots: every serving layer loads one at
construction and is frozen to it.  The :class:`ArtifactStore` stacks a
*lifecycle* on top without changing the snapshot format::

    store/
      CURRENT                       # "gen-0001\\n" — the promoted generation
      gen-0000/
        manifest.json               # an ordinary ensemble artifact, unchanged
        members/...
        lineage.json                # provenance: parent gen, member origins
      gen-0001/
        ...

Every generation directory is a complete, self-describing artifact (it loads
with :func:`~repro.api.artifacts.load_ensemble_run` exactly like a bare
directory), so the store adds bookkeeping, never a new weight format.  The
``CURRENT`` file names the promoted generation and is replaced through
:func:`repro.utils.atomic.atomic_write_text`: a crash mid-promotion leaves
either the old pointer or the new one — a stray ``CURRENT.tmp.<pid>`` beside
an intact ``CURRENT`` is the torn-write signature and resolves to the *old*
generation by construction.

Back-compat is total: :func:`resolve_artifact` maps a bare v1/v2 directory
(``manifest.json`` at the top level, no ``CURRENT``) to implicit generation
0, so every consumer that learned to call it — ``EnsemblePredictor``,
``PoolPredictor``, ``FleetFront``, the CLI — keeps accepting the directories
it always accepted, bitwise.

``lineage.json`` records where a generation came from: its parent
generation, per-member provenance (``hatched`` members came out of a trained
MotherNet — the paper's cheap-refresh economics — versus ``retrained`` /
``initial`` members), and the promotion verdict of the shadow-evaluation
gate (see :mod:`repro.api.retrain`).
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.events import log_event
from repro.obs.metrics import get_registry
from repro.utils.atomic import atomic_write_text, fsync_dir
from repro.utils.logging import get_logger

logger = get_logger("core.artifact_store")

_metrics = get_registry()
#: The generation currently *promoted* in the store this process touched
#: last; the serving pool sets the same gauge to the generation it serves
#: after a swap, so in either process the gauge answers "which generation".
ARTIFACT_GENERATION = _metrics.gauge(
    "repro_artifact_generation",
    "Artifact generation: promoted by retrain, served by a pool after swap.",
)

GEN_PREFIX = "gen-"
CURRENT_NAME = "CURRENT"
LINEAGE_NAME = "lineage.json"
LINEAGE_SCHEMA = "repro.artifact_lineage/v1"

#: Mirrors ``repro.api.artifacts.MANIFEST_NAME``.  The api layer imports
#: this module's package, so importing artifacts here at module level would
#: cycle; the name is a stable on-disk contract, duplicated knowingly.
_MANIFEST_NAME = "manifest.json"

_GEN_RE = re.compile(r"^gen-(\d{4,})$")

__all__ = [
    "ArtifactStore",
    "CURRENT_NAME",
    "GEN_PREFIX",
    "LINEAGE_NAME",
    "LINEAGE_SCHEMA",
    "ResolvedArtifact",
    "resolve_artifact",
]


def format_generation(generation: int) -> str:
    """Directory name for a generation number: ``7 -> "gen-0007"``."""
    if generation < 0:
        raise ValueError("generation must be non-negative")
    return f"{GEN_PREFIX}{int(generation):04d}"


def parse_generation(name: str) -> Optional[int]:
    """Inverse of :func:`format_generation`; ``None`` for non-generation names."""
    match = _GEN_RE.match(name)
    return int(match.group(1)) if match else None


@dataclass(frozen=True)
class ResolvedArtifact:
    """Where an artifact path actually points after store resolution.

    ``path`` is the concrete artifact directory (``manifest.json`` inside);
    ``generation`` is 0 for bare directories; ``store`` is ``None`` unless
    the path is (or sits inside) a store layout.
    """

    path: Path
    generation: int
    store: Optional["ArtifactStore"]


def resolve_artifact(
    path: Union[str, Path], generation: Optional[int] = None
) -> ResolvedArtifact:
    """Map ``path`` to the concrete artifact directory to load.

    Accepts, in order of detection:

    * a **store root** (``CURRENT`` present) — resolves the promoted
      generation, or the explicitly requested ``generation``;
    * a **generation directory** inside a store (``store/gen-0003``) —
      pinned to that generation;
    * a **bare artifact directory** (``manifest.json`` at the top level) —
      implicit generation 0, ``store=None``; requesting any other
      generation of a bare directory is an error.

    A directory holding ``gen-*`` children but no ``CURRENT`` pointer is a
    half-migrated store and is refused with a recovery hint rather than
    guessed at.
    """
    path = Path(path)
    current_file = path / CURRENT_NAME
    if current_file.is_file():
        store = ArtifactStore(path)
        resolved_generation = (
            store.current_generation() if generation is None else int(generation)
        )
        generation_dir = store.generation_path(resolved_generation)
        if not (generation_dir / _MANIFEST_NAME).is_file():
            raise FileNotFoundError(
                f"store {path} has no complete generation "
                f"{format_generation(resolved_generation)} (no {_MANIFEST_NAME})"
            )
        return ResolvedArtifact(generation_dir, resolved_generation, store)
    if (path / _MANIFEST_NAME).is_file():
        own_generation = parse_generation(path.name)
        if own_generation is not None and (path.parent / CURRENT_NAME).is_file():
            # A generation directory addressed directly: pinned.
            if generation is not None and int(generation) != own_generation:
                raise ValueError(
                    f"{path} is generation {own_generation}; ask the store root "
                    f"for generation {generation}"
                )
            return ResolvedArtifact(path, own_generation, ArtifactStore(path.parent))
        if generation not in (None, 0):
            raise ValueError(
                f"{path} is a bare artifact directory (implicit generation 0); "
                f"it has no generation {generation}"
            )
        return ResolvedArtifact(path, 0, None)
    if path.is_dir() and any(
        parse_generation(child.name) is not None for child in path.iterdir()
    ):
        raise FileNotFoundError(
            f"{path} holds generation directories but no {CURRENT_NAME} pointer "
            "(interrupted migration?); re-run ArtifactStore.open to finish it"
        )
    raise FileNotFoundError(
        f"{path} is not an ensemble artifact (no {_MANIFEST_NAME}) "
        f"nor an artifact store (no {CURRENT_NAME})"
    )


def _member_origins(manifest: Dict[str, Any], default: str) -> List[Dict[str, Any]]:
    """Per-member provenance rows for ``lineage.json`` from a manifest."""
    rows = []
    for meta in manifest.get("members", []):
        source = meta.get("source", "scratch")
        rows.append(
            {
                "name": meta.get("name"),
                "source": source,
                "origin": "hatched" if source == "hatched" else default,
            }
        )
    return rows


class ArtifactStore:
    """A directory of generation-versioned ensemble artifacts.

    Construct on an existing store root, or use :meth:`open` to also accept
    (and migrate, in place) a bare artifact directory.  All pointer updates
    go through the atomic-rename machinery, so concurrent readers — a
    serving pool resolving ``CURRENT`` mid-promotion — always see a complete
    generation.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # ------------------------------------------------------------- factories
    @classmethod
    def is_store(cls, path: Union[str, Path]) -> bool:
        return (Path(path) / CURRENT_NAME).is_file()

    @classmethod
    def open(cls, path: Union[str, Path]) -> "ArtifactStore":
        """Open a store root; a bare artifact directory is migrated in place
        (its contents become ``gen-0000`` and ``CURRENT`` commits the
        layout).  Also resumes a migration interrupted before its commit
        point."""
        path = Path(path)
        if cls.is_store(path):
            return cls(path)
        store = cls(path)
        if (path / _MANIFEST_NAME).is_file() or store._partial_migration():
            store._migrate_bare()
            return store
        raise FileNotFoundError(
            f"{path} is neither an artifact store nor a bare ensemble artifact"
        )

    def _partial_migration(self) -> bool:
        """True when a previous migration moved the manifest but crashed
        before writing ``CURRENT`` (the commit point)."""
        gen0 = self.root / format_generation(0)
        return (gen0 / _MANIFEST_NAME).is_file() and not self.is_store(self.root)

    def _migrate_bare(self) -> None:
        """Convert a bare artifact into generation 0 of this store.

        Pieces move with ``os.replace`` (same directory, atomic each), the
        manifest first so a crash at any instant leaves either a loadable
        bare artifact or a half-migrated store :func:`resolve_artifact`
        refuses with a resume hint — never a directory that loads wrong.
        ``CURRENT`` is written last and is the commit point; re-running
        ``open`` finishes an interrupted migration.
        """
        gen0 = self.root / format_generation(0)
        gen0.mkdir(parents=True, exist_ok=True)
        for name in (_MANIFEST_NAME, "members"):
            source = self.root / name
            if source.exists():
                os.replace(source, gen0 / name)
        fsync_dir(self.root)
        manifest = json.loads((gen0 / _MANIFEST_NAME).read_text(encoding="utf-8"))
        if not (gen0 / LINEAGE_NAME).is_file():
            self._write_lineage(
                0,
                {
                    "schema": LINEAGE_SCHEMA,
                    "generation": 0,
                    "parent_generation": None,
                    "created_unix": manifest.get("created_unix", time.time()),
                    "members": _member_origins(manifest, default="initial"),
                    "promotion": {"status": "promoted", "promoted_unix": time.time()},
                    "gate": None,
                },
            )
        atomic_write_text(self.root / CURRENT_NAME, format_generation(0) + "\n")
        log_event("artifact.store_migrated", store=str(self.root))
        logger.info("migrated bare artifact %s to store layout (gen-0000)", self.root)

    # ------------------------------------------------------------ generations
    def generation_path(self, generation: int) -> Path:
        return self.root / format_generation(generation)

    def generations(self) -> List[int]:
        """Complete generations (manifest present), ascending."""
        if not self.root.is_dir():
            return []
        found = []
        for child in self.root.iterdir():
            generation = parse_generation(child.name)
            if generation is not None and (child / _MANIFEST_NAME).is_file():
                found.append(generation)
        return sorted(found)

    def current_generation(self) -> int:
        """The promoted generation named by ``CURRENT``."""
        pointer = (self.root / CURRENT_NAME).read_text(encoding="utf-8").strip()
        generation = parse_generation(pointer)
        if generation is None:
            raise ValueError(
                f"corrupt {CURRENT_NAME} pointer in {self.root}: {pointer!r}"
            )
        return generation

    def current_path(self) -> Path:
        return self.generation_path(self.current_generation())

    # --------------------------------------------------------------- lineage
    def lineage(self, generation: int) -> Optional[Dict[str, Any]]:
        lineage_path = self.generation_path(generation) / LINEAGE_NAME
        if not lineage_path.is_file():
            return None
        return json.loads(lineage_path.read_text(encoding="utf-8"))

    def _write_lineage(self, generation: int, data: Dict[str, Any]) -> None:
        atomic_write_text(
            self.generation_path(generation) / LINEAGE_NAME,
            json.dumps(data, indent=2, sort_keys=True) + "\n",
        )

    def _update_promotion(self, generation: int, promotion: Dict[str, Any]) -> None:
        lineage = self.lineage(generation)
        if lineage is None:  # pragma: no cover - gen written without lineage
            lineage = {
                "schema": LINEAGE_SCHEMA,
                "generation": generation,
                "parent_generation": None,
                "members": [],
                "gate": None,
            }
        lineage["promotion"] = promotion
        self._write_lineage(generation, lineage)

    # ------------------------------------------------------------- lifecycle
    def add_generation(
        self,
        run,
        parent_generation: Optional[int] = None,
        gate: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Persist ``run`` as the next generation (written, *not* promoted).

        The generation directory is an ordinary ``save_ensemble_run``
        artifact plus a ``lineage.json`` recording the parent generation and
        per-member provenance (``hatched`` from the run's member sources,
        ``retrained`` otherwise).  ``CURRENT`` is untouched until
        :meth:`promote`.
        """
        from repro.api.artifacts import save_ensemble_run

        existing = self.generations()
        generation = (existing[-1] + 1) if existing else 0
        generation_dir = self.generation_path(generation)
        save_ensemble_run(run, generation_dir)
        members = [
            {
                "name": member.name,
                "source": member.source,
                "origin": "hatched" if member.source == "hatched" else "retrained",
            }
            for member in run.ensemble.members
        ]
        self._write_lineage(
            generation,
            {
                "schema": LINEAGE_SCHEMA,
                "generation": generation,
                "parent_generation": parent_generation,
                "created_unix": time.time(),
                "members": members,
                "promotion": {"status": "pending"},
                "gate": gate,
            },
        )
        log_event(
            "artifact.generation_written",
            store=str(self.root),
            generation=generation,
            parent_generation=parent_generation,
        )
        logger.info(
            "wrote generation %s to store %s (parent %s)",
            format_generation(generation),
            self.root,
            parent_generation,
        )
        return generation

    def promote(self, generation: int) -> None:
        """Point ``CURRENT`` at ``generation`` (atomic; the swap trigger)."""
        generation = int(generation)
        if not (self.generation_path(generation) / _MANIFEST_NAME).is_file():
            raise FileNotFoundError(
                f"cannot promote incomplete generation "
                f"{format_generation(generation)} in {self.root}"
            )
        atomic_write_text(
            self.root / CURRENT_NAME, format_generation(generation) + "\n"
        )
        self._update_promotion(
            generation, {"status": "promoted", "promoted_unix": time.time()}
        )
        ARTIFACT_GENERATION.set(generation)
        log_event("artifact.promoted", store=str(self.root), generation=generation)
        logger.info(
            "promoted %s in store %s", format_generation(generation), self.root
        )

    def reject(self, generation: int, reason: str) -> None:
        """Mark a written-but-unpromoted generation as rejected (kept on
        disk for forensics; ``CURRENT`` is untouched)."""
        self._update_promotion(
            int(generation),
            {"status": "rejected", "reason": reason, "rejected_unix": time.time()},
        )
        log_event(
            "artifact.rejected",
            store=str(self.root),
            generation=int(generation),
            reason=reason,
        )

    # ---------------------------------------------------------- introspection
    def describe(self) -> Dict[str, Any]:
        """JSON-friendly store summary (CLI ``inspect``)."""
        current = self.current_generation()
        rows = []
        for generation in self.generations():
            lineage = self.lineage(generation) or {}
            promotion = lineage.get("promotion") or {}
            rows.append(
                {
                    "generation": generation,
                    "current": generation == current,
                    "parent_generation": lineage.get("parent_generation"),
                    "promotion": promotion.get("status", "unknown"),
                    "created_unix": lineage.get("created_unix"),
                    "members": lineage.get("members", []),
                    "gate": lineage.get("gate"),
                }
            )
        return {
            "root": str(self.root),
            "current_generation": current,
            "generations": rows,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore(root={str(self.root)!r})"

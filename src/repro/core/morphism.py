"""Function-preserving network transformations (Figure 3 of the paper).

These are the transformations that hatching composes to expand a trained
MotherNet into each ensemble member while *exactly* preserving the function
it computes (in inference mode):

* :func:`deepen_conv_block` / :func:`deepen_dense` / :func:`deepen_residual_block`
  — insert identity layers / identity residual units (Figure 3a);
* :func:`widen_conv_layer` / :func:`widen_dense_layer` / :func:`widen_residual_block`
  — widen a layer by replicating units and splitting their outgoing weights
  (Figure 3b);
* :func:`expand_conv_filter` — grow a convolution's filter size by
  zero-padding its kernels (Figure 3c).

The paper adopts Network-Morphism-style transformations because they provide
a better starting point for continued training than Net2Net's pure
replication.  This implementation uses exact unit replication with
outgoing-weight splitting (which is function preserving *including* BatchNorm
statistics) and exposes a ``noise_std`` knob that perturbs the newly created
weights to break symmetry, which is the practical ingredient Network Morphism
adds for continued training; with ``noise_std=0`` every transformation is
exact and the test-suite verifies ``f_child(x) == f_parent(x)`` numerically.

Every function takes a :class:`~repro.nn.model.Model` and returns a *new*
model built from the transformed spec; the input model is never mutated.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.spec import ArchitectureSpec, ConvBlockSpec, ConvLayerSpec, DenseLayerSpec
from repro.nn.layers import BatchNorm, Conv2D, Dense, ResidualUnit
from repro.nn.layers.residual import identity_projection_kernel
from repro.nn.model import ConvUnit, DenseUnit, Model
from repro.utils.rng import SeedLike, as_rng


# ---------------------------------------------------------------------------
# Generic helpers
# ---------------------------------------------------------------------------


def transfer_matching_weights(source: Model, target: Model) -> List[str]:
    """Copy weights from ``source`` into ``target`` for every structurally
    identical layer (same name, same shapes).  Returns the names of target
    layers that could *not* be copied (they are the ones a morphism must
    fill in explicitly)."""
    source_layers = dict(source._named_stateful_layers())
    skipped: List[str] = []
    for name, layer in target._named_stateful_layers():
        src = source_layers.get(name)
        if src is None:
            skipped.append(name)
            continue
        src_weights = src.get_weights()
        dst_weights = layer.get_weights()
        if set(src_weights) != set(dst_weights) or any(
            np.shape(src_weights[k]) != np.shape(dst_weights[k]) for k in src_weights
        ):
            skipped.append(name)
            continue
        layer.set_weights(src_weights)
    return skipped


def _replication_mapping(
    old_size: int, new_size: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Choose which existing unit each new unit replicates.

    Returns ``(mapping, counts)`` where ``mapping[i]`` is the source unit of
    output unit ``i`` (the first ``old_size`` units map to themselves) and
    ``counts[j]`` is how many output units replicate source unit ``j`` —
    the divisor applied to the consumer's incoming weights so the function is
    preserved.
    """
    if new_size < old_size:
        raise ValueError(f"cannot widen from {old_size} to smaller size {new_size}")
    extra = rng.integers(0, old_size, size=new_size - old_size)
    mapping = np.concatenate([np.arange(old_size), extra]).astype(int)
    counts = np.bincount(mapping, minlength=old_size)
    return mapping, counts


def _widen_outgoing_dense(
    old_dense: Dense, new_dense: Dense, mapping: np.ndarray, counts: np.ndarray
) -> None:
    """Adjust a dense consumer whose *input* units were replicated."""
    old_w = old_dense.params["W"]
    scale = counts[mapping].astype(old_w.dtype)
    new_dense.params["W"] = old_w[mapping, :] / scale[:, None]
    new_dense.params["b"] = old_dense.params["b"].copy()


def _widen_outgoing_conv(
    old_conv: Conv2D, new_conv: Conv2D, mapping: np.ndarray, counts: np.ndarray
) -> None:
    """Adjust a convolutional consumer whose *input* channels were replicated."""
    old_w = old_conv.params["W"]
    scale = counts[mapping].astype(old_w.dtype)
    new_conv.params["W"] = old_w[:, mapping, :, :] / scale[None, :, None, None]
    if old_conv.use_bias:
        new_conv.params["b"] = old_conv.params["b"].copy()


def _widen_conv_outputs(
    old_conv: Conv2D,
    new_conv: Conv2D,
    mapping: np.ndarray,
    rng: np.random.Generator,
    noise_std: float,
) -> None:
    """Replicate the *output* channels of a convolution according to ``mapping``."""
    old_w = old_conv.params["W"]
    new_w = old_w[mapping, :, :, :].copy()
    if noise_std > 0:
        new_w[len(old_w) :] += rng.normal(0.0, noise_std, size=new_w[len(old_w) :].shape)
    new_conv.params["W"] = new_w
    if old_conv.use_bias:
        new_conv.params["b"] = old_conv.params["b"][mapping].copy()


def _widen_dense_outputs(
    old_dense: Dense,
    new_dense: Dense,
    mapping: np.ndarray,
    rng: np.random.Generator,
    noise_std: float,
) -> None:
    """Replicate the *output* units of a dense layer according to ``mapping``."""
    old_w = old_dense.params["W"]
    new_w = old_w[:, mapping].copy()
    if noise_std > 0:
        new_w[:, old_w.shape[1] :] += rng.normal(
            0.0, noise_std, size=new_w[:, old_w.shape[1] :].shape
        )
    new_dense.params["W"] = new_w
    new_dense.params["b"] = old_dense.params["b"][mapping].copy()


def _widen_batchnorm(old_bn: Optional[BatchNorm], new_bn: Optional[BatchNorm], mapping: np.ndarray) -> None:
    """Replicate BatchNorm parameters and running statistics per ``mapping``."""
    if old_bn is None or new_bn is None:
        return
    new_bn.params["gamma"] = old_bn.params["gamma"][mapping].copy()
    new_bn.params["beta"] = old_bn.params["beta"][mapping].copy()
    new_bn.state["running_mean"] = old_bn.state["running_mean"][mapping].copy()
    new_bn.state["running_var"] = old_bn.state["running_var"][mapping].copy()


def _pad_kernel(kernel: np.ndarray, new_size: int) -> np.ndarray:
    """Zero-pad a ``(out, in, k, k)`` kernel to spatial size ``new_size``."""
    old_size = kernel.shape[-1]
    if new_size < old_size:
        raise ValueError(f"cannot shrink a filter from {old_size} to {new_size}")
    if (new_size - old_size) % 2 != 0:
        raise ValueError("filter growth must keep the kernel centred (same parity)")
    pad = (new_size - old_size) // 2
    return np.pad(kernel, ((0, 0), (0, 0), (pad, pad), (pad, pad)))


def _identity_conv_kernel(channels: int, kernel_size: int, dtype=np.float64) -> np.ndarray:
    """A ``channels x channels`` convolution kernel that implements the identity."""
    kernel = np.zeros((channels, channels, kernel_size, kernel_size), dtype=dtype)
    center = kernel_size // 2
    for c in range(channels):
        kernel[c, c, center, center] = 1.0
    return kernel


# ---------------------------------------------------------------------------
# Spec surgery helpers
# ---------------------------------------------------------------------------


def _replace_conv_layer(
    spec: ArchitectureSpec, block_idx: int, layer_idx: int, new_layer: ConvLayerSpec
) -> ArchitectureSpec:
    blocks = list(spec.conv_blocks)
    layers = list(blocks[block_idx].layers)
    layers[layer_idx] = new_layer
    blocks[block_idx] = ConvBlockSpec(tuple(layers), residual=blocks[block_idx].residual)
    return dataclasses.replace(spec, conv_blocks=tuple(blocks))


def _append_conv_layers(
    spec: ArchitectureSpec, block_idx: int, new_layers: List[ConvLayerSpec]
) -> ArchitectureSpec:
    blocks = list(spec.conv_blocks)
    layers = list(blocks[block_idx].layers) + list(new_layers)
    blocks[block_idx] = ConvBlockSpec(tuple(layers), residual=blocks[block_idx].residual)
    return dataclasses.replace(spec, conv_blocks=tuple(blocks))


def _replace_dense_layer(
    spec: ArchitectureSpec, layer_idx: int, new_layer: DenseLayerSpec
) -> ArchitectureSpec:
    layers = list(spec.dense_layers)
    layers[layer_idx] = new_layer
    return dataclasses.replace(spec, dense_layers=tuple(layers))


def _append_dense_layers(spec: ArchitectureSpec, new_layers: List[DenseLayerSpec]) -> ArchitectureSpec:
    return dataclasses.replace(spec, dense_layers=tuple(list(spec.dense_layers) + list(new_layers)))


# ---------------------------------------------------------------------------
# Consumer lookup
# ---------------------------------------------------------------------------


def _channel_consumers(model: Model, block_idx: int, layer_idx: int) -> List[Tuple[str, object]]:
    """The layers that consume the output channels of conv unit
    ``(block_idx, layer_idx)``.  Returns ``(kind, layer_or_unit)`` pairs where
    kind is ``"conv"``, ``"res"``, ``"dense"``, or ``"classifier"``."""
    block = model.conv_blocks[block_idx]
    if layer_idx + 1 < len(block.units):
        unit = block.units[layer_idx + 1]
        return [("res", unit)] if isinstance(unit, ResidualUnit) else [("conv", unit)]
    for next_block in model.conv_blocks[block_idx + 1 :]:
        if next_block.units:
            unit = next_block.units[0]
            return [("res", unit)] if isinstance(unit, ResidualUnit) else [("conv", unit)]
    if model.dense_units:
        return [("dense", model.dense_units[0])]
    return [("classifier", model.classifier)]


def _apply_input_widening(
    kind: str, old_unit, new_unit, mapping: np.ndarray, counts: np.ndarray
) -> None:
    """Rescale the incoming weights of a consumer after its input channels /
    units were replicated."""
    if kind == "conv":
        _widen_outgoing_conv(old_unit.conv, new_unit.conv, mapping, counts)
    elif kind == "res":
        _widen_outgoing_conv(old_unit.conv1, new_unit.conv1, mapping, counts)
        _widen_outgoing_conv(old_unit.projection, new_unit.projection, mapping, counts)
        # The consumer residual unit is skipped as a whole by the structural
        # weight copy (its conv1/projection shapes changed), so the untouched
        # sub-layers must be copied over explicitly.
        new_unit.conv2.set_weights(old_unit.conv2.get_weights())
        if old_unit.bn1 is not None and new_unit.bn1 is not None:
            new_unit.bn1.set_weights(old_unit.bn1.get_weights())
        if old_unit.bn2 is not None and new_unit.bn2 is not None:
            new_unit.bn2.set_weights(old_unit.bn2.get_weights())
    elif kind == "dense":
        _widen_outgoing_dense(old_unit.dense, new_unit.dense, mapping, counts)
    elif kind == "classifier":
        _widen_outgoing_dense(old_unit, new_unit, mapping, counts)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown consumer kind {kind!r}")


def _consumer_names(model: Model, block_idx: int, layer_idx: int) -> List[str]:
    """Structured names of the consumer layers (so they can be excluded from
    the plain weight copy)."""
    names: List[str] = []
    block = model.conv_blocks[block_idx]
    if layer_idx + 1 < len(block.units):
        b, i = block_idx, layer_idx + 1
    else:
        b, i = None, None
        for nb in range(block_idx + 1, len(model.conv_blocks)):
            if model.conv_blocks[nb].units:
                b, i = nb, 0
                break
    if b is not None:
        unit = model.conv_blocks[b].units[i]
        if isinstance(unit, ResidualUnit):
            names.append(f"conv.{b}.{i}.res")
        else:
            names.append(f"conv.{b}.{i}.conv")
        return names
    if model.dense_units:
        names.append("dense.0.dense")
    else:
        names.append("classifier")
    return names


# ---------------------------------------------------------------------------
# Widening
# ---------------------------------------------------------------------------


def widen_conv_layer(
    model: Model,
    block_idx: int,
    layer_idx: int,
    new_filters: int,
    seed: SeedLike = 0,
    noise_std: float = 0.0,
) -> Model:
    """Widen one plain convolutional layer to ``new_filters`` output channels.

    New channels replicate randomly chosen existing channels (together with
    their BatchNorm parameters and statistics); the consumer's incoming
    weights are divided by the replication counts so the overall function is
    unchanged.
    """
    spec = model.spec
    block_spec = spec.conv_blocks[block_idx]
    if block_spec.residual:
        raise ValueError("use widen_residual_block for residual blocks")
    old_layer = block_spec.layers[layer_idx]
    if new_filters == old_layer.filters:
        return model.copy()
    rng = as_rng(seed)
    new_spec = _replace_conv_layer(
        spec, block_idx, layer_idx, dataclasses.replace(old_layer, filters=new_filters)
    )
    new_model = Model.from_spec(new_spec, seed=0, dtype=model.dtype)
    transfer_matching_weights(model, new_model)

    mapping, counts = _replication_mapping(old_layer.filters, new_filters, rng)
    old_unit: ConvUnit = model.conv_blocks[block_idx].units[layer_idx]
    new_unit: ConvUnit = new_model.conv_blocks[block_idx].units[layer_idx]
    _widen_conv_outputs(old_unit.conv, new_unit.conv, mapping, rng, noise_std)
    _widen_batchnorm(old_unit.bn, new_unit.bn, mapping)

    (old_kind, old_consumer), = _channel_consumers(model, block_idx, layer_idx)
    (new_kind, new_consumer), = _channel_consumers(new_model, block_idx, layer_idx)
    assert old_kind == new_kind
    _apply_input_widening(old_kind, old_consumer, new_consumer, mapping, counts)
    return new_model


def widen_dense_layer(
    model: Model,
    layer_idx: int,
    new_units: int,
    seed: SeedLike = 0,
    noise_std: float = 0.0,
) -> Model:
    """Widen one hidden dense layer to ``new_units`` units (Figure 3b for
    fully-connected networks)."""
    spec = model.spec
    old_layer = spec.dense_layers[layer_idx]
    if new_units == old_layer.units:
        return model.copy()
    rng = as_rng(seed)
    new_spec = _replace_dense_layer(spec, layer_idx, DenseLayerSpec(units=new_units))
    new_model = Model.from_spec(new_spec, seed=0, dtype=model.dtype)
    transfer_matching_weights(model, new_model)

    mapping, counts = _replication_mapping(old_layer.units, new_units, rng)
    old_unit = model.dense_units[layer_idx]
    new_unit = new_model.dense_units[layer_idx]
    _widen_dense_outputs(old_unit.dense, new_unit.dense, mapping, rng, noise_std)
    _widen_batchnorm(old_unit.bn, new_unit.bn, mapping)

    if layer_idx + 1 < len(model.dense_units):
        _widen_outgoing_dense(
            model.dense_units[layer_idx + 1].dense,
            new_model.dense_units[layer_idx + 1].dense,
            mapping,
            counts,
        )
    else:
        _widen_outgoing_dense(model.classifier, new_model.classifier, mapping, counts)
    return new_model


def widen_residual_block(
    model: Model,
    block_idx: int,
    new_filters: int,
    seed: SeedLike = 0,
    noise_std: float = 0.0,
) -> Model:
    """Widen every unit of a residual block to ``new_filters`` channels.

    Residual blocks are widened block-wide with a single channel-replication
    mapping so that the skip connections and the residual branches stay
    consistent (both branches of every unit replicate identically and the
    next consumer rescales once).
    """
    spec = model.spec
    block_spec = spec.conv_blocks[block_idx]
    if not block_spec.residual:
        raise ValueError("widen_residual_block requires a residual block")
    widths = {layer.filters for layer in block_spec.layers}
    if len(widths) != 1:
        raise ValueError("residual blocks must have a uniform width to be widened")
    old_filters = widths.pop()
    if new_filters == old_filters:
        return model.copy()
    rng = as_rng(seed)
    new_spec = spec
    for i, layer in enumerate(block_spec.layers):
        new_spec = _replace_conv_layer(
            new_spec, block_idx, i, dataclasses.replace(layer, filters=new_filters)
        )
    new_model = Model.from_spec(new_spec, seed=0, dtype=model.dtype)
    transfer_matching_weights(model, new_model)

    mapping, counts = _replication_mapping(old_filters, new_filters, rng)
    old_units = model.conv_blocks[block_idx].units
    new_units = new_model.conv_blocks[block_idx].units
    for i, (old_unit, new_unit) in enumerate(zip(old_units, new_units)):
        # conv1: replicate outputs; for units after the first, also rescale
        # inputs (their input is the previous unit's replicated output).
        old_conv1_w = old_unit.conv1.params["W"]
        new_w = old_conv1_w[mapping, :, :, :].copy()
        if i > 0:
            scale = counts[mapping].astype(new_w.dtype)
            new_w = new_w[:, mapping, :, :] / scale[None, :, None, None]
        if noise_std > 0:
            new_w[old_filters:] += rng.normal(0.0, noise_std, size=new_w[old_filters:].shape)
        new_unit.conv1.params["W"] = new_w
        new_unit.conv1.params["b"] = old_unit.conv1.params["b"][mapping].copy()
        _widen_batchnorm(old_unit.bn1, new_unit.bn1, mapping)

        # conv2: outputs and inputs both live in the widened space.
        old_conv2_w = old_unit.conv2.params["W"]
        scale = counts[mapping].astype(old_conv2_w.dtype)
        new_conv2_w = old_conv2_w[mapping, :, :, :][:, mapping, :, :] / scale[None, :, None, None]
        new_unit.conv2.params["W"] = new_conv2_w
        new_unit.conv2.params["b"] = old_unit.conv2.params["b"][mapping].copy()
        _widen_batchnorm(old_unit.bn2, new_unit.bn2, mapping)

        # projection: replicate outputs; rescale inputs for units after the first.
        old_proj_w = old_unit.projection.params["W"]
        new_proj_w = old_proj_w[mapping, :, :, :].copy()
        if i > 0:
            new_proj_w = new_proj_w[:, mapping, :, :] / scale[None, :, None, None]
        new_unit.projection.params["W"] = new_proj_w

    last_idx = len(old_units) - 1
    (old_kind, old_consumer), = _channel_consumers(model, block_idx, last_idx)
    (new_kind, new_consumer), = _channel_consumers(new_model, block_idx, last_idx)
    assert old_kind == new_kind
    _apply_input_widening(old_kind, old_consumer, new_consumer, mapping, counts)
    return new_model


# ---------------------------------------------------------------------------
# Deepening
# ---------------------------------------------------------------------------


def deepen_conv_block(
    model: Model,
    block_idx: int,
    extra_layers: int,
    filter_size: Optional[int] = None,
) -> Model:
    """Append ``extra_layers`` identity convolutional layers to a plain block
    (Figure 3a).  The new layers keep the channel count of the block's last
    layer; their kernels are identity kernels and their BatchNorm layers are
    configured as exact identities, so the network function is unchanged
    (ReLU is idempotent on the non-negative activations that reach the new
    layers)."""
    if extra_layers < 1:
        return model.copy()
    spec = model.spec
    block_spec = spec.conv_blocks[block_idx]
    if block_spec.residual:
        return deepen_residual_block(model, block_idx, extra_layers, filter_size)
    last_layer = block_spec.layers[-1]
    size = filter_size if filter_size is not None else last_layer.filter_size
    new_layers = [ConvLayerSpec(filter_size=size, filters=last_layer.filters)] * extra_layers
    new_spec = _append_conv_layers(spec, block_idx, new_layers)
    new_model = Model.from_spec(new_spec, seed=0, dtype=model.dtype)
    transfer_matching_weights(model, new_model)

    depth = len(block_spec.layers)
    for offset in range(extra_layers):
        unit: ConvUnit = new_model.conv_blocks[block_idx].units[depth + offset]
        unit.conv.params["W"] = _identity_conv_kernel(
            last_layer.filters, size, dtype=unit.conv.params["W"].dtype
        )
        if unit.conv.use_bias:
            unit.conv.params["b"] = np.zeros_like(unit.conv.params["b"])
        if unit.bn is not None:
            unit.bn.set_identity()
    return new_model


def deepen_residual_block(
    model: Model,
    block_idx: int,
    extra_units: int,
    filter_size: Optional[int] = None,
) -> Model:
    """Append ``extra_units`` identity residual units to a residual block.

    The appended units use a zero-initialised second convolution (so their
    residual branch contributes nothing) and an identity projection shortcut,
    making them exact identities at hatch time."""
    if extra_units < 1:
        return model.copy()
    spec = model.spec
    block_spec = spec.conv_blocks[block_idx]
    if not block_spec.residual:
        raise ValueError("deepen_residual_block requires a residual block")
    last_layer = block_spec.layers[-1]
    size = filter_size if filter_size is not None else last_layer.filter_size
    new_layers = [ConvLayerSpec(filter_size=size, filters=last_layer.filters)] * extra_units
    new_spec = _append_conv_layers(spec, block_idx, new_layers)
    new_model = Model.from_spec(new_spec, seed=0, dtype=model.dtype)
    transfer_matching_weights(model, new_model)

    depth = len(block_spec.layers)
    for offset in range(extra_units):
        unit: ResidualUnit = new_model.conv_blocks[block_idx].units[depth + offset]
        unit.set_identity()
    return new_model


def deepen_dense(model: Model, extra_layers: int) -> Model:
    """Append ``extra_layers`` identity hidden dense layers before the
    classifier.  The new layers are square identity matrices (width equal to
    the classifier's current input width) with identity BatchNorm."""
    if extra_layers < 1:
        return model.copy()
    spec = model.spec
    if spec.dense_layers:
        width = spec.dense_layers[-1].units
    elif spec.kind == "conv":
        width = spec.conv_blocks[-1].layers[-1].filters
    else:  # pragma: no cover - unreachable (dense specs need >= 1 hidden layer)
        width = spec.input_shape[0]
    new_spec = _append_dense_layers(spec, [DenseLayerSpec(units=width)] * extra_layers)
    new_model = Model.from_spec(new_spec, seed=0, dtype=model.dtype)
    transfer_matching_weights(model, new_model)

    start = len(spec.dense_layers)
    for offset in range(extra_layers):
        unit: DenseUnit = new_model.dense_units[start + offset]
        unit.dense.params["W"] = np.eye(width, dtype=unit.dense.params["W"].dtype)
        unit.dense.params["b"] = np.zeros_like(unit.dense.params["b"])
        if unit.bn is not None:
            unit.bn.set_identity()
    return new_model


# ---------------------------------------------------------------------------
# Filter growth
# ---------------------------------------------------------------------------


def expand_conv_filter(
    model: Model, block_idx: int, layer_idx: int, new_filter_size: int
) -> Model:
    """Grow the filter size of a convolutional layer (or of both convolutions
    of a residual unit) by zero-padding its kernels (Figure 3c).  With 'same'
    padding the padded kernel computes exactly the same function."""
    spec = model.spec
    block_spec = spec.conv_blocks[block_idx]
    old_layer = block_spec.layers[layer_idx]
    if new_filter_size == old_layer.filter_size:
        return model.copy()
    new_spec = _replace_conv_layer(
        spec,
        block_idx,
        layer_idx,
        dataclasses.replace(old_layer, filter_size=new_filter_size),
    )
    new_model = Model.from_spec(new_spec, seed=0, dtype=model.dtype)
    transfer_matching_weights(model, new_model)

    old_unit = model.conv_blocks[block_idx].units[layer_idx]
    new_unit = new_model.conv_blocks[block_idx].units[layer_idx]
    if block_spec.residual:
        for conv_name in ("conv1", "conv2"):
            old_conv = getattr(old_unit, conv_name)
            new_conv = getattr(new_unit, conv_name)
            new_conv.params["W"] = _pad_kernel(old_conv.params["W"], new_filter_size)
            new_conv.params["b"] = old_conv.params["b"].copy()
        for bn_name in ("bn1", "bn2"):
            old_bn = getattr(old_unit, bn_name)
            new_bn = getattr(new_unit, bn_name)
            if old_bn is not None and new_bn is not None:
                new_bn.set_weights(old_bn.get_weights())
        new_unit.projection.set_weights(old_unit.projection.get_weights())
    else:
        new_unit.conv.params["W"] = _pad_kernel(old_unit.conv.params["W"], new_filter_size)
        if old_unit.conv.use_bias:
            new_unit.conv.params["b"] = old_unit.conv.params["b"].copy()
        if old_unit.bn is not None and new_unit.bn is not None:
            new_unit.bn.set_weights(old_unit.bn.get_weights())
    return new_model

"""Baseline ensemble-training approaches.

The paper compares MotherNets against the two prevalent ways of training an
ensemble of distinct architectures (§1, §3 "Baselines"):

* **Full-data (FD)** — every member is trained from scratch on the entire
  training set with random initialisation;
* **Bagging (Bag.)** — every member is trained from scratch on its own
  bootstrap sample of the training set.

A Snapshot-Ensemble-style trainer (Huang et al., discussed in Related Work)
is also provided as an extension: it trains a *single* architecture with a
cyclic learning rate and collects one snapshot per cycle, which illustrates
the monolithic-architecture restriction that MotherNets removes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.arch.serialization import spec_to_json
from repro.arch.spec import ArchitectureSpec
from repro.core.cost_model import CostLedger
from repro.core.ensemble import Ensemble, EnsembleMember
from repro.core.registry import register_trainer
from repro.core.trainer import EnsembleTrainer, EnsembleTrainingRun, record_training_cost
from repro.data.datasets import Dataset
from repro.data.sampling import bootstrap_sample
from repro.nn.dtypes import resolve_dtype
from repro.nn.model import Model
from repro.nn.optimizers import CosineSchedule
from repro.nn.serialization import unpack_model_state
from repro.nn.training import TrainingConfig, TrainingResult
from repro.utils.logging import get_logger
from repro.utils.rng import RngManager

logger = get_logger("core.baselines")


class _ScratchTrainer(EnsembleTrainer):
    """Shared implementation for the two from-scratch baselines.

    Members are mutually independent, so with ``config.workers > 1`` they
    train concurrently on the :mod:`repro.parallel` process pool: workers
    receive ``(spec, seeds)`` tasks, read the training set through shared
    memory, and draw their own bootstrap samples with the same derived seeds
    the serial loop uses — bitwise-identical members under matching BLAS
    thread counts.  ``workers=1`` (default) is the unchanged serial path.
    """

    use_bagging: bool = False

    def train(
        self, specs: Sequence[ArchitectureSpec], dataset: Dataset, seed: int = 0
    ) -> EnsembleTrainingRun:
        specs = list(specs)
        self._validate(specs, dataset)
        rngs = RngManager(seed)
        ledger = CostLedger(approach=self.approach)
        members: List[EnsembleMember] = []
        member_results: Dict[str, TrainingResult] = {}

        # Per-member records, in spec order; members journaled by an
        # interrupted checkpointed run come back flagged "restored" (reused
        # bitwise, booked into the ledger, but not re-counted as trained).
        entries: List[Optional[Dict[str, object]]] = [None] * len(specs)
        for index in range(len(specs)):
            restored = self._restored_member(index)
            if restored is not None:
                entries[index] = {
                    "model": restored.model,
                    "result": restored.result,
                    "seconds": restored.seconds,
                    "compute_phases": restored.compute_phases,
                    "samples": restored.samples_per_epoch,
                    "parameters": restored.parameters,
                    "restored": True,
                }

        workers = self._member_workers(self.config, len(specs))
        if workers > 1:
            phase_start = time.perf_counter()
            from repro.parallel.worker import MemberTask

            # Resolve the compute dtype in the parent: workers are fresh
            # interpreters and would otherwise fall back to the global
            # default even when this run opted into another dtype.
            dtype = str(resolve_dtype(None))
            tasks: List[MemberTask] = []
            task_indices: List[int] = []
            for index, spec in enumerate(specs):
                if entries[index] is not None:
                    continue
                tasks.append(
                    MemberTask(
                        name=spec.name,
                        spec_json=spec_to_json(spec),
                        config=self.config,
                        train_seed=rngs.seed("shuffle", index),
                        dtype=dtype,
                        init_seed=rngs.seed("init", index),
                        bag_seed=rngs.seed("bag", index) if self.use_bagging else None,
                        collect_phase_timings=self.collect_phase_timings,
                    )
                )
                task_indices.append(index)
            unpacked: Dict[int, Model] = {}

            def on_member(task_index: int, outcome) -> None:
                # Streaming journal hook: persist each member as its worker
                # delivers it (a parent crash loses only in-flight fits).
                index = task_indices[task_index]
                model = unpack_model_state(outcome.state)
                unpacked[task_index] = model
                self._journal_member(
                    index,
                    name=specs[index].name,
                    model=model,
                    result=outcome.result,
                    seconds=outcome.seconds,
                    parameters=outcome.parameters,
                    samples=outcome.samples_per_epoch,
                    compute_phases=outcome.compute_phases,
                )

            outcomes = []
            if tasks:
                outcomes, _ = self._run_parallel(
                    tasks,
                    dataset.x_train,
                    dataset.y_train,
                    min(workers, len(tasks)),
                    config=self.config,
                    on_outcome=on_member,
                )
            for task_index, (index, outcome) in enumerate(zip(task_indices, outcomes)):
                model = unpacked.get(task_index)
                if model is None:  # pragma: no cover - callback always ran
                    model = unpack_model_state(outcome.state)
                entries[index] = {
                    "model": model,
                    "result": outcome.result,
                    "seconds": outcome.seconds,
                    "compute_phases": outcome.compute_phases,
                    "samples": outcome.samples_per_epoch,
                    "parameters": outcome.parameters,
                }
            ledger.record_phase_makespan("scratch", time.perf_counter() - phase_start)
        else:
            for index, spec in enumerate(specs):
                if entries[index] is not None:
                    continue
                model = Model.from_spec(spec, seed=rngs.seed("init", index))
                if self.use_bagging:
                    bag = bootstrap_sample(
                        dataset.x_train, dataset.y_train, seed=rngs.seed("bag", index)
                    )
                    x, y, samples = bag.x, bag.y, bag.size
                else:
                    x, y, samples = dataset.x_train, dataset.y_train, dataset.train_size
                result, seconds, compute_phases = self._fit(
                    model, x, y, self.config, seed=rngs.seed("shuffle", index)
                )
                self._journal_member(
                    index,
                    name=spec.name,
                    model=model,
                    result=result,
                    seconds=seconds,
                    parameters=model.parameter_count(),
                    samples=samples,
                    compute_phases=compute_phases,
                )
                entries[index] = {
                    "model": model,
                    "result": result,
                    "seconds": seconds,
                    "compute_phases": compute_phases,
                    "samples": samples,
                    "parameters": model.parameter_count(),
                }
                logger.info("trained %s from scratch in %.2fs", spec.name, seconds)

        for spec, entry in zip(specs, entries):
            member_results[spec.name] = entry["result"]
            ledger.add(
                network=spec.name,
                phase="scratch",
                epochs=entry["result"].epochs_run,
                wall_clock_seconds=entry["seconds"],
                parameters=entry["parameters"],
                samples_per_epoch=entry["samples"],
                compute_phases=entry["compute_phases"],
            )
            if not entry.get("restored"):
                record_training_cost(self.approach, "scratch", entry["seconds"])
            members.append(
                EnsembleMember(
                    name=spec.name,
                    model=entry["model"],
                    training_result=entry["result"],
                    source="scratch",
                    training_seconds=entry["seconds"],
                )
            )

        ensemble = Ensemble(members, num_classes=dataset.num_classes)
        return EnsembleTrainingRun(
            approach=self.approach,
            ensemble=ensemble,
            ledger=ledger,
            config=self.config,
            member_results=member_results,
        )


@register_trainer("full_data")
class FullDataTrainer(_ScratchTrainer):
    """Train every ensemble member from scratch on the full training set."""

    approach = "full_data"
    use_bagging = False


@register_trainer("bagging")
class BaggingTrainer(_ScratchTrainer):
    """Train every ensemble member from scratch on its own bootstrap sample."""

    approach = "bagging"
    use_bagging = True


@register_trainer("snapshot")
class SnapshotEnsembleTrainer(EnsembleTrainer):
    """Snapshot Ensembles (Huang et al. 2017), the fast-ensembling related
    work the paper contrasts against: a *single* architecture is trained with
    a cyclic (cosine) learning rate and a snapshot of the weights is taken at
    the end of every cycle.

    All snapshots share the same, monolithic architecture — this trainer is
    provided to demonstrate that restriction next to MotherNets' structurally
    diverse ensembles.

    Unlike the other approaches, snapshot cycles form a strict sequential
    chain (every cycle continues from the previous cycle's weights), so
    ``config.workers > 1`` cannot help and is deliberately ignored (with a
    log note) rather than rejected — configs stay portable across approaches.
    """

    approach = "snapshot"

    def __init__(
        self,
        config: Optional[TrainingConfig] = None,
        num_snapshots: int = 5,
        epochs_per_cycle: Optional[int] = None,
        collect_phase_timings: bool = True,
    ):
        super().__init__(config, collect_phase_timings=collect_phase_timings)
        if num_snapshots < 1:
            raise ValueError("num_snapshots must be at least 1")
        self.num_snapshots = int(num_snapshots)
        self.epochs_per_cycle = epochs_per_cycle

    def train(
        self, specs: Sequence[ArchitectureSpec], dataset: Dataset, seed: int = 0
    ) -> EnsembleTrainingRun:
        specs = list(specs)
        if len({spec.describe() for spec in specs}) != 1:
            raise ValueError(
                "SnapshotEnsembleTrainer requires a monolithic architecture; "
                "pass the same spec repeated (this is exactly the restriction "
                "MotherNets lifts)"
            )
        self._validate(specs, dataset)
        spec = specs[0]
        rngs = RngManager(seed)
        ledger = CostLedger(approach=self.approach)
        if getattr(self.config, "workers", 1) > 1:
            logger.info(
                "snapshot ensembles train one network sequentially; workers=%d ignored",
                self.config.workers,
            )

        cycle_epochs = self.epochs_per_cycle or max(1, self.config.max_epochs)
        cycle_config = TrainingConfig(
            max_epochs=cycle_epochs,
            min_epochs=cycle_epochs,
            batch_size=self.config.batch_size,
            learning_rate=self.config.learning_rate,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
            convergence_patience=cycle_epochs,
            convergence_tolerance=0.0,
            shuffle=self.config.shuffle,
            schedule=CosineSchedule(
                self.config.learning_rate,
                total_epochs=cycle_epochs,
                cycle_length=cycle_epochs,
                min_lr=0.01 * self.config.learning_rate,
            ),
            loss=self.config.loss,
        )

        model = Model.from_spec(spec, seed=rngs.seed("init"))
        members: List[EnsembleMember] = []
        member_results: Dict[str, TrainingResult] = {}

        # Checkpoint/resume: snapshots form a sequential chain, so the
        # journal always holds a contiguous prefix of cycles.  Restore it,
        # then continue the chain from the last snapshot's weights (a
        # snapshot is a copy of the live network at cycle end, and model
        # serialisation round-trips bitwise).
        start_cycle = 0
        while start_cycle < self.num_snapshots:
            restored = self._restored_member(start_cycle)
            if restored is None:
                break
            member_results[restored.name] = restored.result
            ledger.add(
                network=restored.name,
                phase="member",
                epochs=restored.result.epochs_run if restored.result else 0,
                wall_clock_seconds=restored.seconds,
                parameters=restored.parameters,
                samples_per_epoch=restored.samples_per_epoch,
                compute_phases=restored.compute_phases,
            )
            members.append(
                EnsembleMember(
                    name=restored.name,
                    model=restored.model,
                    training_result=restored.result,
                    source="snapshot",
                    training_seconds=restored.seconds,
                )
            )
            model = restored.model.copy()
            start_cycle += 1

        for cycle in range(start_cycle, self.num_snapshots):
            result, seconds, compute_phases = self._fit(
                model,
                dataset.x_train,
                dataset.y_train,
                cycle_config,
                seed=rngs.seed("shuffle", cycle),
            )
            snapshot = model.copy()
            name = f"{spec.name}-snapshot-{cycle}"
            self._journal_member(
                cycle,
                name=name,
                model=snapshot,
                result=result,
                seconds=seconds,
                parameters=snapshot.parameter_count(),
                samples=dataset.train_size,
                compute_phases=compute_phases,
            )
            member_results[name] = result
            ledger.add(
                network=name,
                phase="member",
                epochs=result.epochs_run,
                wall_clock_seconds=seconds,
                parameters=snapshot.parameter_count(),
                samples_per_epoch=dataset.train_size,
                compute_phases=compute_phases,
            )
            record_training_cost(self.approach, "member", seconds)
            members.append(
                EnsembleMember(
                    name=name,
                    model=snapshot,
                    training_result=result,
                    source="snapshot",
                    training_seconds=seconds,
                )
            )

        ensemble = Ensemble(members, num_classes=dataset.num_classes)
        return EnsembleTrainingRun(
            approach=self.approach,
            ensemble=ensemble,
            ledger=ledger,
            config=self.config,
            member_results=member_results,
        )

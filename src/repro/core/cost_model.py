"""Training-cost accounting and extrapolation.

The paper's headline results are training-time curves (Figures 5b, 6b, 7b,
8b, 9b): wall-clock training time as a function of ensemble size for
full-data training, bagging, and MotherNets.  This module provides

* :class:`CostLedger` — the record of what was actually trained (phase,
  epochs, wall-clock seconds, parameters, samples), filled in by the three
  ensemble trainers; and
* :class:`AnalyticalCostModel` — a simple work-proportional model
  (``epochs x samples x parameters``) that converts the measured ledger into
  the cumulative training-time-vs-ensemble-size series of the figures and
  extrapolates them to paper scale, where the absolute numbers are hours on a
  P40 GPU rather than seconds on the numpy substrate.  Ratios between
  approaches — the quantity the paper emphasises — are preserved by
  construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.arch.params import count_parameters
from repro.arch.spec import ArchitectureSpec


@dataclass
class CostRecord:
    """The training cost of one network (a MotherNet or an ensemble member)."""

    network: str
    phase: str  # "mothernet" | "member" | "scratch"
    approach: str  # "mothernets" | "full_data" | "bagging" | ...
    epochs: int
    wall_clock_seconds: float
    parameters: int
    samples_per_epoch: int
    # Optional compute-phase breakdown of the wall clock (e.g. "conv.im2col",
    # "conv.gemm") reported by the execution engine via repro.utils.timing;
    # empty when phase timing was not enabled for the run.
    compute_phases: Dict[str, float] = field(default_factory=dict)

    @property
    def work_units(self) -> float:
        """Abstract training work: parameters x samples x epochs."""
        return float(self.parameters) * float(self.samples_per_epoch) * float(self.epochs)


@dataclass
class CostLedger:
    """Accumulates :class:`CostRecord` entries for one ensemble training run.

    Per-record ``wall_clock_seconds`` always measures each network's own
    training time (total compute), regardless of how many worker processes
    trained networks concurrently.  When a phase *was* executed in parallel,
    the trainer additionally records the phase's **makespan** — the
    critical-path wall clock from the first submission to the last result —
    via :meth:`record_phase_makespan`; :attr:`makespan_seconds` then reports
    how long the run actually took, next to :attr:`total_seconds`'s "how much
    compute it burned".
    """

    approach: str
    records: List[CostRecord] = field(default_factory=list)
    # phase -> measured critical-path seconds, for phases run in parallel.
    phase_makespans: Dict[str, float] = field(default_factory=dict)

    def add(
        self,
        network: str,
        phase: str,
        epochs: int,
        wall_clock_seconds: float,
        parameters: int,
        samples_per_epoch: int,
        compute_phases: Optional[Dict[str, float]] = None,
    ) -> CostRecord:
        record = CostRecord(
            network=network,
            phase=phase,
            approach=self.approach,
            epochs=int(epochs),
            wall_clock_seconds=float(wall_clock_seconds),
            parameters=int(parameters),
            samples_per_epoch=int(samples_per_epoch),
            compute_phases=dict(compute_phases) if compute_phases else {},
        )
        self.records.append(record)
        return record

    def record_phase_makespan(self, phase: str, seconds: float) -> None:
        """Record the critical-path wall clock of a phase run in parallel."""
        if seconds < 0:
            raise ValueError("makespan seconds must be non-negative")
        self.phase_makespans[phase] = float(seconds)

    # ------------------------------------------------------------ summaries
    @property
    def total_seconds(self) -> float:
        return float(sum(record.wall_clock_seconds for record in self.records))

    @property
    def makespan_seconds(self) -> float:
        """Critical-path wall clock of the whole run: phases with a recorded
        parallel makespan contribute their measured window, serial phases the
        sum of their records.  Equals :attr:`total_seconds` for fully serial
        runs."""
        by_phase = self.seconds_by_phase()
        total = 0.0
        for phase, seconds in by_phase.items():
            total += self.phase_makespans.get(phase, seconds)
        # Phases that recorded a makespan but (pathologically) no records.
        for phase, seconds in self.phase_makespans.items():
            if phase not in by_phase:
                total += seconds
        return total

    @property
    def total_epochs(self) -> int:
        return int(sum(record.epochs for record in self.records))

    @property
    def total_work_units(self) -> float:
        return float(sum(record.work_units for record in self.records))

    def seconds_by_phase(self) -> Dict[str, float]:
        by_phase: Dict[str, float] = {}
        for record in self.records:
            by_phase[record.phase] = by_phase.get(record.phase, 0.0) + record.wall_clock_seconds
        return by_phase

    def seconds_by_compute_phase(self) -> Dict[str, float]:
        """Aggregate compute-phase breakdown (``conv.im2col`` / ``conv.gemm``
        / ...) across all records — distinguishes data movement from BLAS
        compute when the run was trained with phase timing enabled."""
        by_phase: Dict[str, float] = {}
        for record in self.records:
            for key, value in record.compute_phases.items():
                by_phase[key] = by_phase.get(key, 0.0) + value
        return by_phase

    def seconds_by_network(self) -> Dict[str, float]:
        by_network: Dict[str, float] = {}
        for record in self.records:
            by_network[record.network] = (
                by_network.get(record.network, 0.0) + record.wall_clock_seconds
            )
        return by_network

    def cumulative_member_seconds(self) -> List[float]:
        """Cumulative wall-clock training time after each *member* is added,
        counting shared (MotherNet) training once up front — the series the
        training-time figures plot."""
        shared = sum(r.wall_clock_seconds for r in self.records if r.phase == "mothernet")
        series: List[float] = []
        running = shared
        for record in self.records:
            if record.phase == "mothernet":
                continue
            running += record.wall_clock_seconds
            series.append(running)
        return series


class AnalyticalCostModel:
    """Work-proportional training-cost model used for paper-scale projection.

    The model assumes the time to train a network for one epoch is
    proportional to ``parameters x samples`` with a hardware-dependent
    constant ``seconds_per_unit``.  Calibrating the constant against any
    measured run converts abstract work units to projected wall-clock time on
    that hardware.
    """

    def __init__(self, seconds_per_unit: float = 1e-9):
        if seconds_per_unit <= 0:
            raise ValueError("seconds_per_unit must be positive")
        self.seconds_per_unit = float(seconds_per_unit)

    @classmethod
    def calibrate(cls, ledger: CostLedger) -> "AnalyticalCostModel":
        """Fit ``seconds_per_unit`` so the model reproduces the ledger total."""
        work = ledger.total_work_units
        if work <= 0:
            raise ValueError("cannot calibrate against an empty ledger")
        return cls(seconds_per_unit=ledger.total_seconds / work)

    def training_seconds(self, spec: ArchitectureSpec, epochs: int, samples: int) -> float:
        """Projected time to train ``spec`` for ``epochs`` epochs on ``samples``
        training items."""
        if epochs < 0 or samples < 0:
            raise ValueError("epochs and samples must be non-negative")
        return count_parameters(spec) * float(samples) * float(epochs) * self.seconds_per_unit

    def ensemble_training_seconds(
        self,
        member_specs: Sequence[ArchitectureSpec],
        epochs_per_member: int,
        samples: int,
        mothernet_specs: Sequence[ArchitectureSpec] = (),
        mothernet_epochs: int = 0,
    ) -> float:
        """Projected total time for an ensemble training run (shared MotherNet
        training plus per-member training)."""
        total = sum(
            self.training_seconds(spec, mothernet_epochs, samples) for spec in mothernet_specs
        )
        total += sum(
            self.training_seconds(spec, epochs_per_member, samples) for spec in member_specs
        )
        return total

    def cumulative_series(
        self,
        member_specs: Sequence[ArchitectureSpec],
        epochs_per_member: int,
        samples: int,
        mothernet_specs: Sequence[ArchitectureSpec] = (),
        mothernet_epochs: int = 0,
    ) -> List[float]:
        """Projected cumulative training time after 1, 2, ... members — the
        x-axis sweep of the training-time figures."""
        shared = sum(
            self.training_seconds(spec, mothernet_epochs, samples) for spec in mothernet_specs
        )
        series: List[float] = []
        running = shared
        for spec in member_specs:
            running += self.training_seconds(spec, epochs_per_member, samples)
            series.append(running)
        return series


def speedup(baseline_seconds: float, seconds: float) -> float:
    """Convenience helper: how many times faster than the baseline."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return baseline_seconds / seconds

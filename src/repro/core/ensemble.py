"""Ensemble container and the four inference methods used in the paper's
evaluation: Ensemble Averaging (EA), Voting, Super Learner (SL), and Oracle.

* **EA** averages the members' predicted class probabilities.
* **Voting** takes the majority over the members' hard predictions (ties are
  broken by average probability).
* **Super Learner** learns a convex combination of the members' probability
  outputs on held-out data (van der Laan et al.); here the combination
  weights are optimised by gradient descent on a softmax parameterisation,
  which keeps them non-negative and summing to one.
* **Oracle** picks, for every test item, the prediction of the member that is
  correct if any member is correct — the "collection of specialists" measure
  reported in Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.layers.activations import softmax
from repro.nn.metrics import error_rate
from repro.nn.model import Model
from repro.nn.training import TrainingResult
from repro.utils.rng import SeedLike, as_rng

INFERENCE_METHODS = ("average", "vote", "super_learner", "oracle")
# Methods that combine member probabilities into a single prediction (the
# oracle is evaluation-only: it peeks at labels and cannot serve predictions).
COMBINATION_METHODS = ("average", "vote", "super_learner")
# Paper abbreviations used in figures/tables.
METHOD_ABBREVIATIONS = {
    "average": "EA",
    "vote": "Vote",
    "super_learner": "SL",
    "oracle": "O",
}


def resolve_combination_method(
    method: Optional[str],
    *,
    has_super_learner: bool,
    default: Optional[str] = None,
    subject: str = "artifact",
) -> str:
    """Validate a serving-time combination method in one place.

    Shared by every layer that accepts a per-call or configured method —
    :class:`~repro.api.predictor.EnsemblePredictor`, the multi-process
    :class:`~repro.parallel.serving.PoolPredictor` (constructor and
    dispatch path), and the queue-mode :class:`~repro.fleet.front.
    FleetFront` — so the validation rules and error wording cannot drift
    between the single-process reference and the serving tiers.

    ``method=None`` falls back to ``default``; an unknown method raises
    ``ValueError`` naming the valid choices, and ``super_learner`` without
    fitted weights raises ``RuntimeError`` (the ``subject`` names what is
    missing them in the message).
    """
    resolved = default if method is None else method
    if resolved not in COMBINATION_METHODS:
        raise ValueError(
            f"unknown combination method {resolved!r}; valid choices: "
            + ", ".join(repr(m) for m in COMBINATION_METHODS)
        )
    if resolved == "super_learner" and not has_super_learner:
        raise RuntimeError(
            f"this {subject} has no fitted super-learner weights; pick "
            "method='average'/'vote'"
        )
    return resolved


@dataclass
class EnsembleMember:
    """One trained network of an ensemble plus its training bookkeeping."""

    name: str
    model: Model
    training_result: Optional[TrainingResult] = None
    source: str = "scratch"  # "scratch" | "hatched" | "mothernet"
    cluster_id: Optional[int] = None
    training_seconds: float = 0.0

    @property
    def parameter_count(self) -> int:
        return self.model.parameter_count()


class Ensemble:
    """A collection of trained members with the paper's inference methods."""

    def __init__(self, members: Sequence[EnsembleMember], num_classes: int):
        if not members:
            raise ValueError("an ensemble needs at least one member")
        if num_classes < 2:
            raise ValueError("num_classes must be at least 2")
        self.members: List[EnsembleMember] = list(members)
        self.num_classes = int(num_classes)
        self._super_learner_weights: Optional[np.ndarray] = None

    # ------------------------------------------------------------- plumbing
    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def add_member(self, member: EnsembleMember) -> None:
        self.members.append(member)
        # Super-learner weights are invalidated when membership changes.
        self._super_learner_weights = None

    def subset(self, count: int) -> "Ensemble":
        """The ensemble formed by the first ``count`` members (used to report
        error-rate-vs-ensemble-size curves)."""
        if not 1 <= count <= len(self.members):
            raise ValueError(f"count must be in [1, {len(self.members)}]")
        return Ensemble(self.members[:count], self.num_classes)

    def predict_proba_all(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Per-member class probabilities, shape ``(members, samples, classes)``,
        computed in a *single* pass over the input.

        Instead of M independent sweeps (each re-slicing and re-casting the
        data), every input batch is prepared once — one cast per distinct
        member compute dtype — and evaluated by all members while it is hot in
        cache.  The stacked ``(M, N, K)`` tensor is what every downstream
        inference method (EA / Vote / SL / Oracle) consumes.

        Numerically identical to the per-member loop: each member sees exactly
        the same batch boundaries and inference-mode forward pass.  Members
        whose models do not expose ``forward`` (e.g. test stubs) fall back to
        their ``predict_proba``.
        """
        x = np.asarray(x)
        n = int(x.shape[0])
        # Stack in the members' compute dtype (mixed ensembles and fallback
        # stubs promote to float64) — exactly the dtype np.stack over the
        # per-member results would produce, at half the memory for uniform
        # float32 ensembles.
        out_dtype = np.result_type(
            *(getattr(member.model, "dtype", None) or np.float64 for member in self.members)
        )
        out = np.empty((len(self.members), n, self.num_classes), dtype=out_dtype)
        fast_members = [
            (idx, member) for idx, member in enumerate(self.members)
            if hasattr(member.model, "forward")
        ]
        for idx, member in enumerate(self.members):
            if not hasattr(member.model, "forward"):
                out[idx] = member.model.predict_proba(x, batch_size=batch_size)
        for start in range(0, n, batch_size):
            stop = min(start + batch_size, n)
            xb = x[start:stop]
            cast_cache: Dict[object, np.ndarray] = {}
            for idx, member in fast_members:
                dtype = getattr(member.model, "dtype", None)
                if dtype is None or xb.dtype == dtype:
                    xb_cast = xb
                else:
                    xb_cast = cast_cache.get(dtype)
                    if xb_cast is None:
                        xb_cast = np.asarray(xb, dtype=dtype)
                        cast_cache[dtype] = xb_cast
                logits = member.model.forward(xb_cast, training=False)
                out[idx, start:stop] = softmax(logits, axis=-1)
        return out

    def member_probabilities(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Per-member class probabilities, shape ``(members, samples, classes)``.

        Alias of :meth:`predict_proba_all` (kept for the original API name).
        """
        return self.predict_proba_all(x, batch_size=batch_size)

    # ---------------------------------------------------------- predictions
    def predict_proba(
        self, x: np.ndarray, method: str = "average", batch_size: int = 256
    ) -> np.ndarray:
        """Ensemble class probabilities under the requested inference method.

        ``method`` is validated eagerly — an unknown method raises
        ``ValueError`` listing the valid choices *before* any member inference
        runs.
        """
        if method not in COMBINATION_METHODS:
            raise ValueError(
                f"unknown inference method {method!r}; valid choices: "
                + ", ".join(repr(m) for m in COMBINATION_METHODS)
            )
        if method == "super_learner" and self._super_learner_weights is None:
            raise RuntimeError(
                "fit_super_learner must be called before super_learner inference"
            )
        probs = self.member_probabilities(x, batch_size=batch_size)
        if method == "average":
            return probs.mean(axis=0)
        if method == "vote":
            return self._vote_proba(probs)
        # Both weight-setting paths guarantee one weight per member, summing
        # to one (membership changes reset the weights to None).
        return np.tensordot(self._super_learner_weights, probs, axes=(0, 0))

    def predict(self, x: np.ndarray, method: str = "average", batch_size: int = 256) -> np.ndarray:
        return self.predict_proba(x, method=method, batch_size=batch_size).argmax(axis=1)

    def _vote_proba(self, probs: np.ndarray) -> np.ndarray:
        votes = probs.argmax(axis=2)  # (members, samples)
        counts = np.zeros((votes.shape[1], self.num_classes), dtype=np.float64)
        for member_votes in votes:
            counts[np.arange(votes.shape[1]), member_votes] += 1.0
        # Break ties with the mean probability so the result is deterministic.
        return counts + 1e-6 * probs.mean(axis=0)

    # --------------------------------------------------------- super learner
    def fit_super_learner(
        self,
        x_val: np.ndarray,
        y_val: np.ndarray,
        iterations: int = 300,
        learning_rate: float = 0.5,
        seed: SeedLike = 0,
        batch_size: int = 256,
    ) -> np.ndarray:
        """Learn the convex combination weights of the Super Learner on a
        held-out split; returns the weights (one per member)."""
        probs = self.member_probabilities(x_val, batch_size=batch_size)
        y_val = np.asarray(y_val).astype(int)
        onehot = np.zeros((y_val.shape[0], self.num_classes))
        onehot[np.arange(y_val.shape[0]), y_val] = 1.0

        rng = as_rng(seed)
        logits = rng.normal(0.0, 0.01, size=len(self.members))
        for _ in range(int(iterations)):
            weights = softmax(logits[None, :], axis=1)[0]
            mixture = np.tensordot(weights, probs, axes=(0, 0))
            mixture = np.clip(mixture, 1e-12, None)
            # Gradient of NLL w.r.t. the member weights, chained through softmax.
            grad_weights = -np.einsum("nc,mnc->m", onehot / mixture, probs) / y_val.shape[0]
            grad_logits = weights * (grad_weights - np.dot(weights, grad_weights))
            logits -= learning_rate * grad_logits
        self._super_learner_weights = softmax(logits[None, :], axis=1)[0]
        return self._super_learner_weights

    @property
    def super_learner_weights(self) -> Optional[np.ndarray]:
        return None if self._super_learner_weights is None else self._super_learner_weights.copy()

    def set_super_learner_weights(self, weights: Sequence[float]) -> None:
        """Install previously fitted Super Learner weights (e.g. restored from
        a saved ensemble artifact) instead of re-fitting them."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (len(self.members),):
            raise ValueError(
                f"expected {len(self.members)} super-learner weights, got {weights.shape}"
            )
        if np.any(weights < 0) or not np.isclose(weights.sum(), 1.0):
            raise ValueError("super-learner weights must be non-negative and sum to 1")
        self._super_learner_weights = weights

    # -------------------------------------------------------------- metrics
    def error_rate(
        self, x: np.ndarray, y: np.ndarray, method: str = "average", batch_size: int = 256
    ) -> float:
        """Test error rate in percent under an inference method (including
        ``"oracle"``)."""
        if method == "oracle":
            return self.oracle_error_rate(x, y, batch_size=batch_size)
        predictions = self.predict(x, method=method, batch_size=batch_size)
        return error_rate(predictions, y)

    def oracle_error_rate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
        """Error rate of an oracle that, per test item, selects the most
        accurate member's prediction (Figure 10)."""
        probs = self.member_probabilities(x, batch_size=batch_size)
        predictions = probs.argmax(axis=2)  # (members, samples)
        y = np.asarray(y).astype(int)
        any_correct = (predictions == y[None, :]).any(axis=0)
        return 100.0 * (1.0 - float(any_correct.mean()))

    def evaluate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        methods: Sequence[str] = ("average", "vote", "super_learner", "oracle"),
        batch_size: int = 256,
    ) -> Dict[str, float]:
        """Error rate under every requested inference method."""
        results: Dict[str, float] = {}
        for method in methods:
            if method == "super_learner" and self._super_learner_weights is None:
                continue
            results[method] = self.error_rate(x, y, method=method, batch_size=batch_size)
        return results

    def member_error_rates(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> Dict[str, float]:
        """Individual test error of every member (quality-consistency check)."""
        return {
            member.name: error_rate(member.model.predict(x, batch_size=batch_size), y)
            for member in self.members
        }

    def disagreement(self, x: np.ndarray, batch_size: int = 256) -> float:
        """Mean pairwise disagreement between member predictions — the
        structural-diversity measure discussed alongside the oracle results."""
        if len(self.members) < 2:
            return 0.0
        predictions = self.predict_proba_all(x, batch_size=batch_size).argmax(axis=2)
        total = 0.0
        pairs = 0
        for i in range(len(self.members)):
            for j in range(i + 1, len(self.members)):
                total += float(np.mean(predictions[i] != predictions[j]))
                pairs += 1
        return total / pairs

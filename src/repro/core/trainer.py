"""Ensemble training pipelines.

This module defines the shared pipeline scaffolding (:class:`EnsembleTrainer`,
:class:`EnsembleTrainingRun`) and the paper's contribution,
:class:`MotherNetsTrainer`, which trains an ensemble in the two phases of
§2.2:

1. cluster the member architectures (Algorithm 1) and train one MotherNet per
   cluster from scratch on the full data set;
2. hatch every member from its cluster's MotherNet via function-preserving
   transformations and fine-tune it on its own bagged sample.

The baselines (full-data and bagging, §3) live in ``repro.core.baselines``
and share the same scaffolding so that training cost is accounted identically
across approaches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.arch.params import count_parameters
from repro.arch.serialization import spec_to_json
from repro.arch.spec import ArchitectureSpec
from repro.arch.validation import check_same_task
from repro.core.clustering import Cluster, cluster_ensemble
from repro.core.cost_model import CostLedger
from repro.core.ensemble import Ensemble, EnsembleMember
from repro.core.hatching import hatch
from repro.core.registry import register_trainer
from repro.data.datasets import Dataset
from repro.data.sampling import bootstrap_sample
from repro.nn.model import Model
from repro.nn.serialization import unpack_model_state
from repro.nn.training import Trainer, TrainingConfig, TrainingResult
from repro.obs.metrics import get_registry
from repro.utils.logging import get_logger
from repro.utils.rng import RngManager
from repro.utils.timing import capture_phase_timings

logger = get_logger("core.trainer")

# Per-member / per-phase training telemetry (repro.obs), shared by every
# ensemble trainer: networks finished and wall-clock seconds burned, keyed by
# approach and pipeline phase ("mothernet" | "member" | "scratch").
_metrics = get_registry()
_NETWORKS_TRAINED = _metrics.counter(
    "repro_ensemble_networks_trained_total",
    "Networks trained by the ensemble trainers.",
    ("approach", "phase"),
)
_TRAINING_SECONDS = _metrics.counter(
    "repro_ensemble_training_seconds_total",
    "Wall-clock seconds spent training ensemble networks.",
    ("approach", "phase"),
)


def record_training_cost(approach: str, phase: str, seconds: float) -> None:
    """Count one finished network against the per-phase training metrics.

    Called by every trainer right where it books the network into its
    :class:`~repro.core.cost_model.CostLedger`, so metrics and ledger agree.
    """
    if _metrics.enabled:
        _NETWORKS_TRAINED.labels(approach, phase).inc()
        _TRAINING_SECONDS.labels(approach, phase).inc(float(seconds))


@dataclass
class EnsembleTrainingRun:
    """The outcome of training an ensemble with one approach."""

    approach: str
    ensemble: Ensemble
    ledger: CostLedger
    config: TrainingConfig
    clusters: Optional[List[Cluster]] = None
    mothernet_models: Dict[int, Model] = field(default_factory=dict)
    mothernet_results: Dict[int, TrainingResult] = field(default_factory=dict)
    member_results: Dict[str, TrainingResult] = field(default_factory=dict)

    @property
    def total_training_seconds(self) -> float:
        return self.ledger.total_seconds

    @property
    def makespan_seconds(self) -> float:
        """Critical-path wall clock (equals total for fully serial runs)."""
        return self.ledger.makespan_seconds

    @property
    def member_names(self) -> List[str]:
        return [member.name for member in self.ensemble.members]

    def training_time_breakdown(self) -> Dict[str, float]:
        """Per-network wall-clock seconds (the stacked bars of Figure 5b)."""
        return self.ledger.seconds_by_network()

    def cumulative_training_seconds(self) -> List[float]:
        """Cumulative training time after each member (Figures 6b-9b)."""
        return self.ledger.cumulative_member_seconds()


class EnsembleTrainer:
    """Base class for the three ensemble-training approaches.

    ``collect_phase_timings`` (default on) captures the execution engine's
    per-phase compute breakdown (``conv.im2col`` / ``conv.gemm`` / ...) for
    every fitted network and stores it on the corresponding
    :class:`~repro.core.cost_model.CostRecord`, so ledgers can separate data
    movement from BLAS compute.  The instrumentation cost is a few
    ``perf_counter`` calls per conv call (well under a percent); pass
    ``False`` for fully uninstrumented timing runs.
    """

    approach: str = "base"

    def __init__(
        self, config: Optional[TrainingConfig] = None, collect_phase_timings: bool = True
    ):
        self.config = config or TrainingConfig()
        self.collect_phase_timings = bool(collect_phase_timings)
        # Optional RunCheckpoint journal (repro.core.checkpoint), attached by
        # run_experiment when the caller wants crash-safe incremental
        # checkpointing; None leaves training exactly as before.
        self.checkpoint = None

    # ------------------------------------------------------------ interface
    def train(
        self, specs: Sequence[ArchitectureSpec], dataset: Dataset, seed: int = 0
    ) -> EnsembleTrainingRun:
        raise NotImplementedError

    # -------------------------------------------------------------- helpers
    def _validate(self, specs: Sequence[ArchitectureSpec], dataset: Dataset) -> None:
        specs = list(specs)
        check_same_task(specs)
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("ensemble member names must be unique")
        if specs[0].input_shape != dataset.input_shape:
            raise ValueError(
                f"architecture input shape {specs[0].input_shape} does not match "
                f"dataset input shape {dataset.input_shape}"
            )
        if specs[0].num_classes != dataset.num_classes:
            raise ValueError(
                f"architecture has {specs[0].num_classes} classes, dataset has "
                f"{dataset.num_classes}"
            )

    def _fit(
        self,
        model: Model,
        x,
        y,
        config: TrainingConfig,
        seed: int,
    ) -> tuple:
        """Train a model; returns ``(result, wall_clock_seconds, phases)``
        where ``phases`` is the compute-phase breakdown of the fit (empty when
        ``collect_phase_timings`` is off)."""
        start = time.perf_counter()
        if self.collect_phase_timings:
            with capture_phase_timings() as phases:
                result = Trainer(config).fit(model, x, y, seed=seed)
        else:
            phases = {}
            result = Trainer(config).fit(model, x, y, seed=seed)
        return result, time.perf_counter() - start, phases

    def _member_workers(self, config: TrainingConfig, num_tasks: int) -> int:
        """How many worker processes a member-training phase should use."""
        workers = max(1, int(getattr(config, "workers", 1)))
        return min(workers, num_tasks)

    def _run_parallel(
        self, tasks, x, y, workers: int, config: Optional[TrainingConfig] = None, on_outcome=None
    ):
        """Fan the member tasks out over the process pool (see
        :mod:`repro.parallel`); returns ``(outcomes, makespan_seconds)``.

        ``config`` (default ``self.config``) supplies the fault-tolerance
        knobs — per-task deadline and retry budget; ``on_outcome(task_index,
        outcome)`` streams results back as they finish (the checkpoint
        journal hook).
        """
        from repro.parallel.executor import train_members

        config = config if config is not None else self.config
        return train_members(
            tasks,
            x,
            y,
            workers=workers,
            task_timeout=float(getattr(config, "task_timeout", 900.0)),
            max_task_retries=int(getattr(config, "max_task_retries", 2)),
            on_outcome=on_outcome,
        )

    # ---------------------------------------------------------- checkpointing
    def _restored_member(self, index: int):
        """The journaled member at ``index``, or None (also when not
        checkpointing).  Books the restore against the resume telemetry."""
        if self.checkpoint is None:
            return None
        net = self.checkpoint.member(index)
        if net is not None:
            self.checkpoint.mark_restored("member", net.name)
        return net

    def _journal_member(
        self,
        index: int,
        *,
        name: str,
        model: Model,
        result: TrainingResult,
        seconds: float,
        parameters: int,
        samples: int,
        compute_phases: Dict[str, float],
        cluster_id: Optional[int] = None,
        aliased_mothernet: bool = False,
    ) -> None:
        """Journal one finished member when a checkpoint is attached."""
        if self.checkpoint is None:
            return
        from repro.core.checkpoint import CheckpointedNetwork

        self.checkpoint.record_member(
            index,
            CheckpointedNetwork(
                name=name,
                model=model,
                result=result,
                seconds=seconds,
                parameters=parameters,
                samples_per_epoch=samples,
                compute_phases=dict(compute_phases),
                cluster_id=cluster_id,
                aliased_mothernet=aliased_mothernet,
            ),
        )


@register_trainer("mothernets")
class MotherNetsTrainer(EnsembleTrainer):
    """The paper's approach: cluster -> train MotherNets -> hatch -> bag-train.

    Parameters
    ----------
    config:
        Training configuration for the MotherNet phase (full data set).
    tau:
        Clustering parameter; every member must share at least this fraction
        of its parameters with its cluster's MotherNet (paper default 0.5).
    member_config:
        Training configuration for the fine-tuning of hatched members; when
        omitted, the MotherNet configuration is reused (the shared
        convergence criterion then terminates the warm-started members after
        only a few epochs, which is where the training-time savings come
        from).
    member_epoch_fraction:
        Optional hard cap on the member epoch budget, as a fraction of the
        MotherNet budget.  ``1.0`` (default) leaves the budget unchanged.
    noise_std:
        Standard deviation of the symmetry-breaking noise added to replicated
        weights during hatching (0 keeps hatching exactly function
        preserving).

    Parallelism
    -----------
    With ``config.workers > 1`` and more than one cluster, the phase-1
    MotherNet fits fan out over the process pool (they are mutually
    independent — one MotherNet per cluster); the resulting models are
    bitwise identical to the serial loop's under matching BLAS thread
    counts, so every downstream hatch sees the same weights.
    With ``member_config.workers > 1`` the phase-2 fine-tunes fan out over a
    process pool (:mod:`repro.parallel`) and produce members bitwise
    identical to the serial path under matching BLAS thread counts.  Members
    whose hatching plan is empty (they equal their cluster's MotherNet) are
    a sequential dependency — the serial loop fine-tunes the MotherNet model
    in place, and later members of the cluster hatch from the fine-tuned
    weights — so those members train in the parent at their serial position
    while every strict-superset member runs on the pool.
    """

    approach = "mothernets"

    def __init__(
        self,
        config: Optional[TrainingConfig] = None,
        tau: float = 0.5,
        member_config: Optional[TrainingConfig] = None,
        member_epoch_fraction: float = 1.0,
        noise_std: float = 0.0,
        collect_phase_timings: bool = True,
    ):
        super().__init__(config, collect_phase_timings=collect_phase_timings)
        if not 0.0 <= tau <= 1.0:
            raise ValueError("tau must be in [0, 1]")
        if member_epoch_fraction <= 0 or member_epoch_fraction > 1:
            raise ValueError("member_epoch_fraction must be in (0, 1]")
        self.tau = float(tau)
        self.noise_std = float(noise_std)
        base_member_config = member_config or self.config
        if member_epoch_fraction < 1.0:
            base_member_config = base_member_config.scaled(member_epoch_fraction)
        self.member_config = base_member_config

    def train(
        self, specs: Sequence[ArchitectureSpec], dataset: Dataset, seed: int = 0
    ) -> EnsembleTrainingRun:
        specs = list(specs)
        self._validate(specs, dataset)
        rngs = RngManager(seed)
        ledger = CostLedger(approach=self.approach)

        # Phase 0: cluster the ensemble and construct one MotherNet per cluster.
        clusters = cluster_ensemble(specs, tau=self.tau)
        cluster_of: Dict[str, Cluster] = {
            member.name: cluster for cluster in clusters for member in cluster.members
        }

        # Phase 1: train every MotherNet from scratch on the full data set.
        # MotherNets of different clusters are mutually independent, so with
        # workers > 1 and several clusters they fan out over the same process
        # pool phase 2 uses; each worker rebuilds its MotherNet from the same
        # derived seeds the serial loop uses, making the parallel phase
        # bitwise identical to the serial one (matching BLAS thread counts).
        mothernet_models: Dict[int, Model] = {}
        mothernet_results: Dict[int, TrainingResult] = {}

        # Checkpoint/resume: MotherNets already journaled by an interrupted
        # run are restored bitwise instead of retrained (their ledger records
        # come from the journal, so the final cost accounting stays complete).
        pending_clusters: List[Cluster] = []
        for cluster in clusters:
            net = (
                self.checkpoint.mothernet(cluster.cluster_id)
                if self.checkpoint is not None
                else None
            )
            if net is None:
                pending_clusters.append(cluster)
                continue
            self.checkpoint.mark_restored("mothernet", net.name)
            mothernet_models[cluster.cluster_id] = net.model
            mothernet_results[cluster.cluster_id] = net.result
            ledger.add(
                network=cluster.mothernet.name,
                phase="mothernet",
                epochs=net.result.epochs_run if net.result is not None else 0,
                wall_clock_seconds=net.seconds,
                parameters=net.parameters,
                samples_per_epoch=net.samples_per_epoch,
                compute_phases=net.compute_phases,
            )

        def journal_mothernet(cluster, model, result, seconds, parameters, samples, phases):
            if self.checkpoint is None:
                return
            from repro.core.checkpoint import CheckpointedNetwork

            self.checkpoint.record_mothernet(
                cluster.cluster_id,
                CheckpointedNetwork(
                    name=cluster.mothernet.name,
                    model=model,
                    result=result,
                    seconds=seconds,
                    parameters=parameters,
                    samples_per_epoch=samples,
                    compute_phases=dict(phases),
                    cluster_id=cluster.cluster_id,
                ),
            )

        mothernet_workers = self._member_workers(self.config, len(pending_clusters))
        if mothernet_workers > 1:
            phase_start = time.perf_counter()
            from repro.nn.dtypes import resolve_dtype
            from repro.parallel.worker import MemberTask

            # Resolve the compute dtype in the parent: workers are fresh
            # interpreters and would otherwise fall back to the global default
            # even when this run opted into another dtype.
            dtype = str(resolve_dtype(None))
            tasks = [
                MemberTask(
                    name=cluster.mothernet.name,
                    spec_json=spec_to_json(cluster.mothernet),
                    config=self.config,
                    train_seed=rngs.seed("mothernet-shuffle", cluster.cluster_id),
                    dtype=dtype,
                    init_seed=rngs.seed("mothernet", cluster.cluster_id),
                    collect_phase_timings=self.collect_phase_timings,
                )
                for cluster in pending_clusters
            ]
            # Stream every finished MotherNet into the journal as it lands,
            # so a parent crash mid-phase loses only the in-flight fits.
            unpacked: Dict[int, Model] = {}

            def on_mothernet(task_index: int, outcome) -> None:
                model = unpack_model_state(outcome.state)
                unpacked[task_index] = model
                journal_mothernet(
                    pending_clusters[task_index],
                    model,
                    outcome.result,
                    outcome.seconds,
                    outcome.parameters,
                    outcome.samples_per_epoch,
                    outcome.compute_phases,
                )

            outcomes, _ = self._run_parallel(
                tasks,
                dataset.x_train,
                dataset.y_train,
                mothernet_workers,
                config=self.config,
                on_outcome=on_mothernet,
            )
            for task_index, (cluster, outcome) in enumerate(zip(pending_clusters, outcomes)):
                model = unpacked.get(task_index)
                if model is None:  # pragma: no cover - callback always ran
                    model = unpack_model_state(outcome.state)
                mothernet_models[cluster.cluster_id] = model
                mothernet_results[cluster.cluster_id] = outcome.result
                ledger.add(
                    network=cluster.mothernet.name,
                    phase="mothernet",
                    epochs=outcome.result.epochs_run,
                    wall_clock_seconds=outcome.seconds,
                    parameters=outcome.parameters,
                    samples_per_epoch=outcome.samples_per_epoch,
                    compute_phases=outcome.compute_phases,
                )
                record_training_cost(self.approach, "mothernet", outcome.seconds)
            ledger.record_phase_makespan("mothernet", time.perf_counter() - phase_start)
        else:
            for cluster in pending_clusters:
                model = Model.from_spec(
                    cluster.mothernet, seed=rngs.seed("mothernet", cluster.cluster_id)
                )
                result, seconds, compute_phases = self._fit(
                    model,
                    dataset.x_train,
                    dataset.y_train,
                    self.config,
                    seed=rngs.seed("mothernet-shuffle", cluster.cluster_id),
                )
                mothernet_models[cluster.cluster_id] = model
                mothernet_results[cluster.cluster_id] = result
                journal_mothernet(
                    cluster,
                    model,
                    result,
                    seconds,
                    model.parameter_count(),
                    dataset.train_size,
                    compute_phases,
                )
                ledger.add(
                    network=cluster.mothernet.name,
                    phase="mothernet",
                    epochs=result.epochs_run,
                    wall_clock_seconds=seconds,
                    parameters=model.parameter_count(),
                    samples_per_epoch=dataset.train_size,
                    compute_phases=compute_phases,
                )
                record_training_cost(self.approach, "mothernet", seconds)
                logger.info(
                    "trained %s (%d members) in %.2fs / %d epochs",
                    cluster.mothernet.name,
                    cluster.size,
                    seconds,
                    result.epochs_run,
                )

        # Phase 2: hatch every member and fine-tune it on a bagged sample.
        # Hatched members are mutually independent, so with workers > 1 the
        # fine-tunes fan out over the process pool: hatching stays in the
        # parent (it needs the MotherNet models), each worker receives the
        # hatched weight snapshot plus the member's derived seeds, and draws
        # its bootstrap sample from the shared-memory training set exactly as
        # the serial loop draws it here.
        members: List[EnsembleMember] = []
        member_results: Dict[str, TrainingResult] = {}
        workers = self._member_workers(self.member_config, len(specs))
        if workers > 1:
            phase_start = time.perf_counter()
            from repro.parallel.worker import MemberTask

            # Walk the members in serial order.  A member whose hatching plan
            # is *empty* aliases its cluster's MotherNet: the serial loop
            # fine-tunes the MotherNet model in place, and every later member
            # of that cluster hatches from the fine-tuned weights.  That is a
            # genuine sequential dependency, so such members train here in
            # the parent at their exact serial position; all strict-superset
            # members are independent (they train a private hatched copy) and
            # fan out to the worker pool.  The merged result is bitwise
            # identical to the serial path.
            entries: List[Optional[Dict[str, object]]] = [None] * len(specs)
            tasks: List[MemberTask] = []
            task_indices: List[int] = []
            task_hatch_seconds: Dict[int, float] = {}
            for index, spec in enumerate(specs):
                cluster = cluster_of[spec.name]
                restored = self._restored_member(index)
                if restored is not None:
                    # Journaled by an interrupted run: reuse bitwise.  A
                    # restored *aliased* member IS its cluster's fine-tuned
                    # MotherNet — install its weights before any later member
                    # of the cluster hatches (exactly what the in-place
                    # fine-tune would have left behind).
                    entries[index] = {
                        "model": restored.model,
                        "result": restored.result,
                        "seconds": restored.seconds,
                        "compute_phases": restored.compute_phases,
                        "samples": restored.samples_per_epoch,
                        "parameters": restored.parameters,
                        "restored": True,
                    }
                    if restored.aliased_mothernet:
                        mothernet_models[cluster.cluster_id] = restored.model
                    continue
                parent = mothernet_models[cluster.cluster_id]
                hatch_start = time.perf_counter()
                hatched = hatch(
                    parent, spec, seed=rngs.seed("hatch", index), noise_std=self.noise_std
                )
                hatch_seconds = time.perf_counter() - hatch_start
                bag_seed = rngs.seed("bag", index)
                train_seed = rngs.seed("member-shuffle", index)
                if hatched is parent:
                    bag = bootstrap_sample(dataset.x_train, dataset.y_train, seed=bag_seed)
                    result, seconds, compute_phases = self._fit(
                        hatched, bag.x, bag.y, self.member_config, seed=train_seed
                    )
                    entries[index] = {
                        "model": hatched,
                        "result": result,
                        "seconds": seconds + hatch_seconds,
                        "compute_phases": compute_phases,
                        "samples": bag.size,
                        "parameters": hatched.parameter_count(),
                    }
                    self._journal_member(
                        index,
                        name=spec.name,
                        model=hatched,
                        result=result,
                        seconds=seconds + hatch_seconds,
                        parameters=hatched.parameter_count(),
                        samples=bag.size,
                        compute_phases=compute_phases,
                        cluster_id=cluster.cluster_id,
                        aliased_mothernet=True,
                    )
                else:
                    tasks.append(
                        MemberTask(
                            name=spec.name,
                            spec_json=spec_to_json(hatched.spec),
                            config=self.member_config,
                            train_seed=train_seed,
                            dtype=str(hatched.dtype),
                            init_weights=hatched.get_weights(),
                            bag_seed=bag_seed,
                            collect_phase_timings=self.collect_phase_timings,
                        )
                    )
                    task_indices.append(index)
                    task_hatch_seconds[index] = hatch_seconds
            outcomes = []
            unpacked_members: Dict[int, Model] = {}

            def on_member(task_index: int, outcome) -> None:
                # Streaming journal hook: persist each member the moment its
                # worker delivers it, so a parent crash mid-phase loses only
                # the in-flight fits.
                index = task_indices[task_index]
                model = unpack_model_state(outcome.state)
                unpacked_members[task_index] = model
                self._journal_member(
                    index,
                    name=specs[index].name,
                    model=model,
                    result=outcome.result,
                    seconds=outcome.seconds + task_hatch_seconds[index],
                    parameters=outcome.parameters,
                    samples=outcome.samples_per_epoch,
                    compute_phases=outcome.compute_phases,
                    cluster_id=cluster_of[specs[index].name].cluster_id,
                )

            if tasks:
                outcomes, _ = self._run_parallel(
                    tasks,
                    dataset.x_train,
                    dataset.y_train,
                    min(workers, len(tasks)),
                    config=self.member_config,
                    on_outcome=on_member,
                )
            for task_index, (index, outcome) in enumerate(zip(task_indices, outcomes)):
                model = unpacked_members.get(task_index)
                if model is None:  # pragma: no cover - callback always ran
                    model = unpack_model_state(outcome.state)
                entries[index] = {
                    "model": model,
                    "result": outcome.result,
                    "seconds": outcome.seconds + task_hatch_seconds[index],
                    "compute_phases": outcome.compute_phases,
                    "samples": outcome.samples_per_epoch,
                    "parameters": outcome.parameters,
                }
            for index, (spec, entry) in enumerate(zip(specs, entries)):
                cluster = cluster_of[spec.name]
                member_results[spec.name] = entry["result"]
                ledger.add(
                    network=spec.name,
                    phase="member",
                    epochs=entry["result"].epochs_run,
                    wall_clock_seconds=entry["seconds"],
                    parameters=entry["parameters"],
                    samples_per_epoch=entry["samples"],
                    compute_phases=entry["compute_phases"],
                )
                if not entry.get("restored"):
                    record_training_cost(self.approach, "member", entry["seconds"])
                members.append(
                    EnsembleMember(
                        name=spec.name,
                        model=entry["model"],
                        training_result=entry["result"],
                        source="hatched",
                        cluster_id=cluster.cluster_id,
                        training_seconds=entry["seconds"],
                    )
                )
            ledger.record_phase_makespan("member", time.perf_counter() - phase_start)
        else:
            for index, spec in enumerate(specs):
                cluster = cluster_of[spec.name]
                restored = self._restored_member(index)
                if restored is not None:
                    if restored.aliased_mothernet:
                        # See the parallel branch: the restored model is the
                        # cluster's fine-tuned MotherNet; later members hatch
                        # from it.
                        mothernet_models[cluster.cluster_id] = restored.model
                    member_results[spec.name] = restored.result
                    ledger.add(
                        network=spec.name,
                        phase="member",
                        epochs=restored.result.epochs_run if restored.result else 0,
                        wall_clock_seconds=restored.seconds,
                        parameters=restored.parameters,
                        samples_per_epoch=restored.samples_per_epoch,
                        compute_phases=restored.compute_phases,
                    )
                    members.append(
                        EnsembleMember(
                            name=spec.name,
                            model=restored.model,
                            training_result=restored.result,
                            source="hatched",
                            cluster_id=cluster.cluster_id,
                            training_seconds=restored.seconds,
                        )
                    )
                    continue
                parent = mothernet_models[cluster.cluster_id]
                hatch_start = time.perf_counter()
                model = hatch(
                    parent, spec, seed=rngs.seed("hatch", index), noise_std=self.noise_std
                )
                hatch_seconds = time.perf_counter() - hatch_start
                aliased = model is parent
                bag = bootstrap_sample(
                    dataset.x_train, dataset.y_train, seed=rngs.seed("bag", index)
                )
                result, seconds, compute_phases = self._fit(
                    model, bag.x, bag.y, self.member_config, seed=rngs.seed("member-shuffle", index)
                )
                self._journal_member(
                    index,
                    name=spec.name,
                    model=model,
                    result=result,
                    seconds=seconds + hatch_seconds,
                    parameters=model.parameter_count(),
                    samples=bag.size,
                    compute_phases=compute_phases,
                    cluster_id=cluster.cluster_id,
                    aliased_mothernet=aliased,
                )
                member_results[spec.name] = result
                ledger.add(
                    network=spec.name,
                    phase="member",
                    epochs=result.epochs_run,
                    wall_clock_seconds=seconds + hatch_seconds,
                    parameters=model.parameter_count(),
                    samples_per_epoch=bag.size,
                    compute_phases=compute_phases,
                )
                record_training_cost(self.approach, "member", seconds + hatch_seconds)
                members.append(
                    EnsembleMember(
                        name=spec.name,
                        model=model,
                        training_result=result,
                        source="hatched",
                        cluster_id=cluster.cluster_id,
                        training_seconds=seconds + hatch_seconds,
                    )
                )

        ensemble = Ensemble(members, num_classes=dataset.num_classes)
        return EnsembleTrainingRun(
            approach=self.approach,
            ensemble=ensemble,
            ledger=ledger,
            config=self.config,
            clusters=clusters,
            mothernet_models=mothernet_models,
            mothernet_results=mothernet_results,
            member_results=member_results,
        )


def summarize_run(run: EnsembleTrainingRun) -> Dict[str, object]:
    """A compact, JSON-friendly summary of a training run (used by reports
    and the benchmark harness)."""
    summary: Dict[str, object] = {
        "approach": run.approach,
        "num_members": len(run.ensemble),
        "total_training_seconds": run.total_training_seconds,
        "total_epochs": run.ledger.total_epochs,
        "seconds_by_phase": run.ledger.seconds_by_phase(),
    }
    if run.ledger.phase_makespans:
        summary["makespan_seconds"] = run.ledger.makespan_seconds
        summary["phase_makespans"] = dict(run.ledger.phase_makespans)
    compute_phases = run.ledger.seconds_by_compute_phase()
    if compute_phases:
        summary["seconds_by_compute_phase"] = compute_phases
    if run.clusters is not None:
        summary["num_clusters"] = len(run.clusters)
        summary["cluster_sizes"] = [cluster.size for cluster in run.clusters]
        summary["mothernet_parameters"] = {
            cluster.cluster_id: count_parameters(cluster.mothernet) for cluster in run.clusters
        }
    return summary

"""Hatching: expanding a trained MotherNet into an ensemble member (§2.2).

Hatching plans and applies the sequence of function-preserving
transformations (``repro.core.morphism``) that turns the MotherNet's
architecture into a target member architecture, transferring the learnt
function exactly.  The process is "instantaneous" in the paper's terms: it is
a single structural pass over the MotherNet with no training involved.

The plan is explicit (a list of :class:`HatchingStep`), both so that the
transformation sequence can be inspected/reported and so that tests can
verify each intermediate model still computes the MotherNet's function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.arch.params import count_parameters
from repro.arch.spec import ArchitectureSpec
from repro.arch.validation import check_hatchable
from repro.core import morphism
from repro.nn.model import Model
from repro.utils.logging import get_logger
from repro.utils.rng import RngManager, SeedLike

logger = get_logger("core.hatching")


class HatchingError(ValueError):
    """Raised when a target architecture cannot be reached from the MotherNet
    by function-preserving transformations."""


@dataclass(frozen=True)
class HatchingStep:
    """One function-preserving transformation in a hatching plan."""

    op: str  # deepen_conv | deepen_res | widen_conv | widen_res_block | expand_filter
    #          deepen_dense | widen_dense
    block: Optional[int] = None
    position: Optional[int] = None
    value: Optional[int] = None

    def describe(self) -> str:
        parts = [self.op]
        if self.block is not None:
            parts.append(f"block={self.block}")
        if self.position is not None:
            parts.append(f"position={self.position}")
        if self.value is not None:
            parts.append(f"value={self.value}")
        return " ".join(parts)


@dataclass
class HatchingPlan:
    """The full transformation sequence from a parent spec to a target spec."""

    parent: ArchitectureSpec
    target: ArchitectureSpec
    steps: List[HatchingStep] = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def new_parameter_count(self) -> int:
        """Parameters of the target that do not originate from the parent."""
        return max(0, count_parameters(self.target) - count_parameters(self.parent))

    def describe(self) -> str:
        lines = [f"hatch {self.parent.name} -> {self.target.name} ({self.num_steps} steps)"]
        lines.extend(f"  {step.describe()}" for step in self.steps)
        return "\n".join(lines)


def _plan_conv_block(
    plan: HatchingPlan, block_idx: int, parent_block, target_block
) -> None:
    parent_depth = parent_block.depth
    target_depth = target_block.depth
    if target_block.residual:
        target_widths = {layer.filters for layer in target_block.layers}
        if len(target_widths) != 1:
            raise HatchingError(
                f"block {block_idx}: residual blocks must have a uniform width to be hatched"
            )
        target_width = target_widths.pop()
        parent_width = parent_block.layers[-1].filters
        if target_width < parent_width:
            raise HatchingError(
                f"block {block_idx}: target residual width {target_width} is narrower than "
                f"the MotherNet width {parent_width}"
            )
        if target_width > parent_width:
            plan.steps.append(
                HatchingStep(op="widen_res_block", block=block_idx, value=target_width)
            )
        for offset in range(target_depth - parent_depth):
            position = parent_depth + offset
            plan.steps.append(
                HatchingStep(
                    op="deepen_res",
                    block=block_idx,
                    position=position,
                    value=target_block.layers[position].filter_size,
                )
            )
        for position in range(parent_depth):
            target_size = target_block.layers[position].filter_size
            if target_size > parent_block.layers[position].filter_size:
                plan.steps.append(
                    HatchingStep(
                        op="expand_filter", block=block_idx, position=position, value=target_size
                    )
                )
        return

    # Plain (VGG-style) block: deepen, then widen per position, then grow filters.
    parent_tail_filters = parent_block.layers[-1].filters
    for offset in range(target_depth - parent_depth):
        position = parent_depth + offset
        if target_block.layers[position].filters < parent_tail_filters:
            raise HatchingError(
                f"block {block_idx} position {position}: appended layer is narrower "
                f"({target_block.layers[position].filters}) than the MotherNet's last layer "
                f"({parent_tail_filters}); no function-preserving deepening exists"
            )
        plan.steps.append(
            HatchingStep(
                op="deepen_conv",
                block=block_idx,
                position=position,
                value=target_block.layers[position].filter_size,
            )
        )
    for position in range(target_depth):
        current_filters = (
            parent_block.layers[position].filters if position < parent_depth else parent_tail_filters
        )
        target_filters = target_block.layers[position].filters
        if target_filters > current_filters:
            plan.steps.append(
                HatchingStep(
                    op="widen_conv", block=block_idx, position=position, value=target_filters
                )
            )
    for position in range(parent_depth):
        target_size = target_block.layers[position].filter_size
        if target_size > parent_block.layers[position].filter_size:
            plan.steps.append(
                HatchingStep(
                    op="expand_filter", block=block_idx, position=position, value=target_size
                )
            )


def _plan_dense_layers(plan: HatchingPlan, parent: ArchitectureSpec, target: ArchitectureSpec) -> None:
    parent_depth = len(parent.dense_layers)
    target_depth = len(target.dense_layers)
    if parent_depth:
        tail_width = parent.dense_layers[-1].units
    elif parent.kind == "conv":
        tail_width = parent.conv_blocks[-1].layers[-1].filters
    else:  # pragma: no cover - dense specs always have hidden layers
        tail_width = parent.input_shape[0]
    for offset in range(target_depth - parent_depth):
        position = parent_depth + offset
        if target.dense_layers[position].units < tail_width:
            raise HatchingError(
                f"hidden layer {position}: appended layer is narrower "
                f"({target.dense_layers[position].units}) than the MotherNet's final width "
                f"({tail_width}); no function-preserving deepening exists"
            )
        plan.steps.append(HatchingStep(op="deepen_dense", position=position))
    for position in range(target_depth):
        current_units = (
            parent.dense_layers[position].units if position < parent_depth else tail_width
        )
        target_units = target.dense_layers[position].units
        if target_units > current_units:
            plan.steps.append(
                HatchingStep(op="widen_dense", position=position, value=target_units)
            )


def plan_hatching(parent: ArchitectureSpec, target: ArchitectureSpec) -> HatchingPlan:
    """Compute the transformation sequence turning ``parent`` into ``target``.

    Raises :class:`HatchingError` (or
    :class:`~repro.arch.validation.IncompatibleArchitectureError`) when no
    function-preserving sequence exists.
    """
    check_hatchable(parent, target)
    plan = HatchingPlan(parent=parent, target=target)
    for block_idx, (parent_block, target_block) in enumerate(
        zip(parent.conv_blocks, target.conv_blocks)
    ):
        _plan_conv_block(plan, block_idx, parent_block, target_block)
    _plan_dense_layers(plan, parent, target)
    return plan


def apply_step(
    model: Model, step: HatchingStep, seed: SeedLike = 0, noise_std: float = 0.0
) -> Model:
    """Apply a single hatching step to ``model`` and return the new model."""
    if step.op == "deepen_conv":
        return morphism.deepen_conv_block(model, step.block, 1, filter_size=step.value)
    if step.op == "deepen_res":
        return morphism.deepen_residual_block(model, step.block, 1, filter_size=step.value)
    if step.op == "widen_conv":
        return morphism.widen_conv_layer(
            model, step.block, step.position, step.value, seed=seed, noise_std=noise_std
        )
    if step.op == "widen_res_block":
        return morphism.widen_residual_block(
            model, step.block, step.value, seed=seed, noise_std=noise_std
        )
    if step.op == "expand_filter":
        return morphism.expand_conv_filter(model, step.block, step.position, step.value)
    if step.op == "deepen_dense":
        return morphism.deepen_dense(model, 1)
    if step.op == "widen_dense":
        return morphism.widen_dense_layer(
            model, step.position, step.value, seed=seed, noise_std=noise_std
        )
    raise ValueError(f"unknown hatching step {step.op!r}")


def hatch(
    parent_model: Model,
    target_spec: ArchitectureSpec,
    seed: SeedLike = 0,
    noise_std: float = 0.0,
) -> Model:
    """Hatch ``target_spec`` from a trained ``parent_model``.

    The returned model has the target architecture and computes exactly the
    same function as the parent (in inference mode) when ``noise_std`` is 0.
    """
    plan = plan_hatching(parent_model.spec, target_spec)
    rngs = RngManager(seed if isinstance(seed, int) else 0)
    model = parent_model
    for index, step in enumerate(plan.steps):
        model = apply_step(model, step, seed=rngs.seed("hatch", index), noise_std=noise_std)
    # The hatched model must match the requested structure exactly.
    final = model.spec
    if (final.conv_blocks, final.dense_layers) != (target_spec.conv_blocks, target_spec.dense_layers):
        raise HatchingError(
            f"hatching produced {final.describe()} instead of {target_spec.describe()}"
        )
    model.spec = target_spec
    logger.debug("hatched %s from %s in %d steps", target_spec.name, parent_model.spec.name, plan.num_steps)
    return model


def verify_function_preservation(
    parent: Model,
    child: Model,
    num_samples: int = 8,
    atol: float = 1e-8,
    seed: SeedLike = 0,
    inputs: Optional[np.ndarray] = None,
) -> float:
    """Maximum absolute deviation between parent and child logits on random
    inputs (inference mode).  Raises ``AssertionError`` if above ``atol``."""
    rng = np.random.default_rng(seed if isinstance(seed, int) else None)
    if inputs is None:
        inputs = rng.normal(size=(num_samples, *parent.spec.input_shape))
    parent_logits = parent.predict_logits(inputs)
    child_logits = child.predict_logits(inputs)
    deviation = float(np.max(np.abs(parent_logits - child_logits)))
    if deviation > atol:
        raise AssertionError(
            f"function not preserved: max deviation {deviation:.3e} exceeds tolerance {atol:.1e}"
        )
    return deviation


def hatch_ensemble(
    parent_model: Model,
    target_specs: Sequence[ArchitectureSpec],
    seed: SeedLike = 0,
    noise_std: float = 0.0,
) -> List[Model]:
    """Hatch every target spec from the same trained MotherNet."""
    rngs = RngManager(seed if isinstance(seed, int) else 0)
    return [
        hatch(parent_model, spec, seed=rngs.seed("member", i), noise_std=noise_std)
        for i, spec in enumerate(target_specs)
    ]

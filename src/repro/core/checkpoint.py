"""Incremental training checkpoints: journal finished networks, resume runs.

Training an ensemble is a sequence of independent (or mostly independent)
network fits, so a crash at member 7 of 8 should not throw away members 1-6.
:class:`RunCheckpoint` gives every ensemble trainer a durable journal:

* as each network finishes training, the trainer records it — weights first
  (atomic ``.npz``), then a small ``.json`` *done marker* (atomic as well),
  so the marker's existence guarantees a complete, loadable snapshot;
* on resume (``repro train --resume``), the trainer asks the journal which
  networks are already done, restores them bitwise (model serialisation
  round-trips exactly), and trains only the remainder — every seed is derived
  statelessly from the experiment seed, so the completed run is identical to
  an uninterrupted one;
* a ``kill -9`` of the training process at any instant loses at most the
  networks that were in flight.

Layout (inside the run/artifact directory)::

    checkpoint/
      checkpoint.json               # schema + experiment fingerprint (first)
      mothernets/
        c0000-<name>.npz            # full model snapshot
        c0000-<name>.json           # done marker (written after the .npz)
      members/
        000-<name>.npz
        000-<name>.json

The fingerprint (normally the experiment-spec dictionary) is compared on
resume so a journal can never silently leak into a *different* experiment.
The journal is self-contained and deleted (:meth:`discard`) once the final
artifact manifest is safely on disk.

MotherNets subtlety: a member whose hatching plan is empty *aliases* its
cluster's MotherNet — the serial loop fine-tunes the MotherNet model in
place, and later members of the cluster hatch from the fine-tuned weights.
Such members are journaled with ``aliased_mothernet=True``; on resume the
trainer installs their restored weights as the cluster's MotherNet before
hatching anything after them, preserving the bitwise guarantee.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro.nn.model import Model
from repro.nn.serialization import load_model, save_model
from repro.nn.training import TrainingResult
from repro.obs.events import log_event
from repro.obs.metrics import get_registry
from repro.utils.atomic import atomic_write_text
from repro.utils.logging import get_logger

logger = get_logger("core.checkpoint")

CHECKPOINT_SCHEMA = "repro.checkpoint/v1"
CHECKPOINT_DIR_NAME = "checkpoint"
_STATE_NAME = "checkpoint.json"
_MEMBER_DIR = "members"
_MOTHERNET_DIR = "mothernets"

_metrics = get_registry()
_RESUME_RESTORED = _metrics.gauge(
    "repro_training_resume_restored_networks",
    "Networks restored from the checkpoint journal (not retrained) in the "
    "latest resumed run.",
)

__all__ = ["CheckpointedNetwork", "RunCheckpoint", "CHECKPOINT_DIR_NAME"]


@dataclass
class CheckpointedNetwork:
    """One journaled network: the trained model plus its cost-ledger facts."""

    name: str
    model: Model
    result: Optional[TrainingResult]
    seconds: float
    parameters: int
    samples_per_epoch: int
    compute_phases: Dict[str, float] = field(default_factory=dict)
    cluster_id: Optional[int] = None
    # True for a MotherNets member whose hatching plan was empty: its model
    # IS the cluster's fine-tuned MotherNet (see module docstring).
    aliased_mothernet: bool = False

    def _meta(self, index: int) -> Dict[str, object]:
        return {
            "schema": CHECKPOINT_SCHEMA,
            "index": index,
            "name": self.name,
            "seconds": self.seconds,
            "parameters": self.parameters,
            "samples_per_epoch": self.samples_per_epoch,
            "compute_phases": dict(self.compute_phases),
            "cluster_id": self.cluster_id,
            "aliased_mothernet": self.aliased_mothernet,
            "result": None if self.result is None else self.result.to_dict(),
        }

    @classmethod
    def _from_meta(cls, meta: Dict[str, object], model: Model) -> "CheckpointedNetwork":
        result = meta.get("result")
        return cls(
            name=str(meta["name"]),
            model=model,
            result=None if result is None else TrainingResult.from_dict(result),
            seconds=float(meta.get("seconds", 0.0)),
            parameters=int(meta.get("parameters", 0)),
            samples_per_epoch=int(meta.get("samples_per_epoch", 0)),
            compute_phases=dict(meta.get("compute_phases") or {}),
            cluster_id=meta.get("cluster_id"),
            aliased_mothernet=bool(meta.get("aliased_mothernet", False)),
        )


def _safe_filename(name: str) -> str:
    import re

    return re.sub(r"[^A-Za-z0-9._-]", "_", name)


class RunCheckpoint:
    """The journal of one training run (see module docstring).

    Use :meth:`open` — it creates a fresh journal, or validates and loads an
    existing one when ``resume`` is true.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.members: Dict[int, CheckpointedNetwork] = {}
        self.mothernets: Dict[int, CheckpointedNetwork] = {}
        self.restored = 0  # networks handed back to a trainer this run

    # ----------------------------------------------------------------- open
    @classmethod
    def open(
        cls,
        run_dir: Union[str, Path],
        fingerprint: Dict[str, object],
        resume: bool = False,
    ) -> "RunCheckpoint":
        """Open the journal under ``run_dir`` (at ``run_dir/checkpoint``).

        Fresh runs create the directory and write the fingerprint first; an
        existing journal is refused unless ``resume`` is true (you either
        continue an interrupted run deliberately or clean up the directory),
        and a resumed journal must carry the *same* fingerprint — resuming a
        different experiment into it would mix incompatible members.
        """
        checkpoint = cls(Path(run_dir) / CHECKPOINT_DIR_NAME)
        state_path = checkpoint.root / _STATE_NAME
        if state_path.is_file():
            if not resume:
                raise FileExistsError(
                    f"a checkpoint journal from an interrupted run exists at "
                    f"{checkpoint.root}; pass --resume to continue it, or delete "
                    "the directory to start over"
                )
            state = json.loads(state_path.read_text(encoding="utf-8"))
            if state.get("schema") != CHECKPOINT_SCHEMA:
                raise ValueError(
                    f"unsupported checkpoint schema {state.get('schema')!r} at "
                    f"{checkpoint.root} (expected {CHECKPOINT_SCHEMA!r})"
                )
            if state.get("fingerprint") != fingerprint:
                raise ValueError(
                    f"the checkpoint at {checkpoint.root} belongs to a different "
                    "experiment (spec fingerprint mismatch); refusing to resume"
                )
            checkpoint._load()
            logger.info(
                "resuming from %s: %d member(s) and %d mothernet(s) already done",
                checkpoint.root,
                len(checkpoint.members),
                len(checkpoint.mothernets),
            )
            log_event(
                "train.checkpoint_resumed",
                path=str(checkpoint.root),
                members_done=len(checkpoint.members),
                mothernets_done=len(checkpoint.mothernets),
            )
        else:
            if resume:
                logger.warning(
                    "--resume given but no checkpoint journal at %s; starting fresh",
                    checkpoint.root,
                )
            (checkpoint.root / _MEMBER_DIR).mkdir(parents=True, exist_ok=True)
            (checkpoint.root / _MOTHERNET_DIR).mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                state_path,
                json.dumps(
                    {"schema": CHECKPOINT_SCHEMA, "fingerprint": fingerprint},
                    indent=2,
                    sort_keys=True,
                )
                + "\n",
            )
        if _metrics.enabled:
            _RESUME_RESTORED.set(0)
        return checkpoint

    def _load(self) -> None:
        for directory, into in (
            (self.root / _MEMBER_DIR, self.members),
            (self.root / _MOTHERNET_DIR, self.mothernets),
        ):
            if not directory.is_dir():
                continue
            for marker in sorted(directory.glob("*.json")):
                weights = marker.with_suffix(".npz")
                try:
                    meta = json.loads(marker.read_text(encoding="utf-8"))
                    network = CheckpointedNetwork._from_meta(meta, load_model(weights))
                except (OSError, ValueError, KeyError) as exc:
                    # The done marker is written after the weights, so this is
                    # a journal someone tampered with (or a torn filesystem);
                    # treat the network as not-done and retrain it.
                    logger.warning(
                        "ignoring unreadable checkpoint entry %s (%s)", marker, exc
                    )
                    continue
                into[int(meta["index"])] = network

    # -------------------------------------------------------------- journal
    def _record(self, directory: Path, stem: str, index: int, net: CheckpointedNetwork) -> None:
        # Weights first, marker last: the marker's existence is the commit
        # point (both writes are individually atomic).
        save_model(net.model, directory / f"{stem}.npz")
        atomic_write_text(
            directory / f"{stem}.json",
            json.dumps(net._meta(index), indent=2, sort_keys=True) + "\n",
        )

    def record_member(self, index: int, net: CheckpointedNetwork) -> None:
        """Journal member ``index`` as done (atomic; safe against kill -9)."""
        self._record(
            self.root / _MEMBER_DIR, f"{index:03d}-{_safe_filename(net.name)}", index, net
        )
        self.members[index] = net
        log_event("train.member_journaled", member=net.name, index=index)

    def record_mothernet(self, cluster_id: int, net: CheckpointedNetwork) -> None:
        """Journal the MotherNet of ``cluster_id`` as done."""
        self._record(
            self.root / _MOTHERNET_DIR,
            f"c{cluster_id:04d}-{_safe_filename(net.name)}",
            cluster_id,
            net,
        )
        self.mothernets[cluster_id] = net
        log_event("train.mothernet_journaled", mothernet=net.name, cluster=cluster_id)

    # -------------------------------------------------------------- restore
    def member(self, index: int) -> Optional[CheckpointedNetwork]:
        return self.members.get(index)

    def mothernet(self, cluster_id: int) -> Optional[CheckpointedNetwork]:
        return self.mothernets.get(cluster_id)

    def mark_restored(self, kind: str, name: str) -> None:
        """Book one journaled network a trainer reused instead of retraining."""
        self.restored += 1
        if _metrics.enabled:
            _RESUME_RESTORED.set(self.restored)
        logger.info("restored %s %r from checkpoint (not retrained)", kind, name)
        log_event("train.network_restored", kind=kind, name=name)

    # -------------------------------------------------------------- cleanup
    def discard(self) -> None:
        """Delete the journal (call once the final artifact is safely saved)."""
        shutil.rmtree(self.root, ignore_errors=True)

"""Figure 1 — the conceptual accuracy-vs-training-cost positioning.

The paper's opening figure places the three approaches on an
accuracy / training-cost plane: sub-sampling (bagging) is cheap but less
accurate, full-data training is accurate but expensive, and MotherNets sits
near full-data accuracy at a fraction of the cost.  This bench regenerates
that scatter from the measured small-ensemble runs.
"""

from __future__ import annotations

from conftest import small_ensemble_scenario, write_report

from repro.evaluation import format_table


def test_bench_fig1_tradeoff(benchmark):
    scenario = benchmark.pedantic(small_ensemble_scenario, rounds=1, iterations=1)

    rows = []
    for approach in ("bagging", "full_data", "mothernets"):
        error = scenario["evaluations"][approach]["EA"]
        rows.append([approach, scenario["totals"][approach], 100.0 - error])
    report = format_table(
        ["approach", "training cost (s)", "ensemble accuracy (%)"],
        rows,
        title="Figure 1: accuracy vs training cost (measured, scaled substrate)",
    )
    write_report("fig1_tradeoff", report)

    totals = scenario["totals"]
    accuracy = {name: 100.0 - scenario["evaluations"][name]["EA"] for name in totals}
    # MotherNets' defining property in Figure 1: cheaper than full-data
    # training while staying close to its accuracy.
    assert totals["mothernets"] < totals["full_data"]
    assert accuracy["mothernets"] >= accuracy["bagging"] - 15.0
    assert accuracy["mothernets"] >= accuracy["full_data"] - 15.0

"""Figure 10 — oracle error rate of all large ensembles.

For every large-ensemble configuration (VGG on CIFAR-10-like, CIFAR-100-like
and SVHN-like; ResNet on CIFAR-10-like), the oracle error rate — the error if
an oracle picked the most accurate member per test item — is reported as a
function of the ensemble size.

Paper expectations: the oracle error keeps improving as networks are added,
indicating that MotherNets keeps introducing members that are both well
trained and diverse (they make different mistakes).
"""

from __future__ import annotations

from conftest import large_vgg_scenario, resnet_scenario, write_report

from repro.evaluation import expectation_note, format_series, member_quality_summary


def _collect_oracle_curves():
    return {
        "VGG/cifar10-like": large_vgg_scenario("cifar10"),
        "VGG/cifar100-like": large_vgg_scenario("cifar100"),
        "VGG/svhn-like": large_vgg_scenario("svhn"),
        "ResNet/cifar10-like": resnet_scenario(),
    }


def test_bench_fig10_oracle(benchmark, paper_expectations):
    scenarios = benchmark.pedantic(_collect_oracle_curves, rounds=1, iterations=1)

    common = min(len(scenario["oracle_curve"]) for scenario in scenarios.values())
    sizes = scenarios["VGG/cifar10-like"]["sizes"][:common]
    series = {name: scenario["oracle_curve"][:common] for name, scenario in scenarios.items()}
    report = [
        "Figure 10: oracle error rate (%) vs ensemble size\n"
        + format_series(series, sizes, x_label="networks"),
    ]
    # Member-quality consistency (the claim the oracle figure supports).
    quality_rows = []
    for name, scenario in scenarios.items():
        run = scenario["runs"]["mothernets"]
        dataset = scenario["dataset"]
        summary = member_quality_summary(run.ensemble, dataset.x_test, dataset.y_test)
        quality_rows.append(
            f"{name}: member error mean {summary['mean']:.2f}% "
            f"(best {summary['best']:.2f}%, worst {summary['worst']:.2f}%)"
        )
    report.append("\n".join(quality_rows))
    report.append(expectation_note(paper_expectations["fig10"]))
    write_report("fig10_oracle", "\n".join(report))

    for name, curve in series.items():
        # Monotone non-increasing: adding members never hurts the oracle.
        assert all(b <= a + 1e-9 for a, b in zip(curve, curve[1:])), name
        # The full ensemble's oracle is at least as good as a single member's error.
        assert curve[-1] <= curve[0] + 1e-9, name
        assert 0.0 <= curve[-1] <= 100.0

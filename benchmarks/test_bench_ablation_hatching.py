"""Ablation — the value of hatching (warm starting from the MotherNet).

DESIGN.md calls out hatching as the design choice that makes the member phase
cheap: a hatched member starts from the MotherNet's learnt function, so the
shared convergence criterion stops it after a handful of epochs, whereas the
same architecture trained from scratch needs the full budget.  This bench
trains the same member architecture (i) hatched from a trained MotherNet and
(ii) from random initialisation, on the same bagged sample, and compares
starting error, epochs to convergence, and final error.
"""

from __future__ import annotations

from conftest import _dataset, training_config, write_report

from repro.arch import small_vgg_ensemble
from repro.core import construct_mothernet, hatch
from repro.data import bootstrap_sample
from repro.evaluation import format_table
from repro.nn import Model, Trainer, evaluate
from repro.nn.training import TrainingConfig


def _run_ablation():
    dataset = _dataset("cifar10")
    members = small_vgg_ensemble(
        num_classes=dataset.num_classes, input_shape=dataset.input_shape, width_scale=0.05
    )
    mothernet_spec = construct_mothernet(members)
    target_spec = members[1]  # V16

    config = training_config()
    mothernet = Model.from_spec(mothernet_spec, seed=0)
    mothernet_result = Trainer(config).fit(mothernet, dataset.x_train, dataset.y_train, seed=0)

    bag = bootstrap_sample(dataset.x_train, dataset.y_train, seed=1)
    member_config = TrainingConfig(
        max_epochs=config.max_epochs,
        batch_size=config.batch_size,
        learning_rate=config.learning_rate,
        momentum=config.momentum,
        convergence_patience=config.convergence_patience,
        convergence_tolerance=config.convergence_tolerance,
    )

    rows = []
    outcomes = {}
    for label, model in (
        ("hatched from MotherNet", hatch(mothernet, target_spec, seed=2)),
        ("random initialisation", Model.from_spec(target_spec, seed=3)),
    ):
        start_error = evaluate(model, dataset.x_test, dataset.y_test)["error_rate"]
        result = Trainer(member_config).fit(model, bag.x, bag.y, seed=4)
        final_error = evaluate(model, dataset.x_test, dataset.y_test)["error_rate"]
        rows.append([label, start_error, result.epochs_run, result.wall_clock_seconds, final_error])
        outcomes[label] = {
            "start_error": start_error,
            "epochs": result.epochs_run,
            "seconds": result.wall_clock_seconds,
            "final_error": final_error,
        }
    return mothernet_result, rows, outcomes


def test_bench_ablation_hatching(benchmark):
    mothernet_result, rows, outcomes = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)

    report = [
        f"MotherNet trained for {mothernet_result.epochs_run} epochs "
        f"({mothernet_result.wall_clock_seconds:.1f}s) before hatching.",
        format_table(
            ["member initialisation", "error before training (%)", "epochs", "seconds", "final error (%)"],
            rows,
            title="Ablation: hatched warm start vs training the same member from scratch",
        ),
        "[paper] hatched networks converge significantly faster (~4-5x) than training from scratch",
    ]
    write_report("ablation_hatching", "\n".join(report))

    hatched = outcomes["hatched from MotherNet"]
    scratch = outcomes["random initialisation"]
    # The hatched member starts from the MotherNet's function, so its
    # pre-training error is far below the random-initialisation member's.
    assert hatched["start_error"] < scratch["start_error"] - 10.0
    # And it does not end up worse after the same (or less) training.
    assert hatched["final_error"] <= scratch["final_error"] + 10.0
    assert hatched["epochs"] <= scratch["epochs"]

"""Table 1 — the VGGNet variants of the small ensemble.

Regenerates Table 1: the block structure of V13, V16, V16A, V16B and V19 in
the paper's ``<filter_size>:<filter_number>`` notation, together with the
parameter counts (at full scale) and the MotherNet the ensemble induces.
"""

from __future__ import annotations

from conftest import write_report

from repro.arch import count_parameters, small_vgg_ensemble, vgg
from repro.core import construct_mothernet, plan_hatching
from repro.evaluation import format_table


def _build_table1():
    members = small_vgg_ensemble()  # full-scale Table-1 structures
    mothernet = construct_mothernet(members, name="MotherNet")
    rows = []
    for spec in [*members, mothernet]:
        row = [spec.name]
        row.extend(
            " ".join(layer.notation() for layer in block.layers) for block in spec.conv_blocks
        )
        row.append(f"{count_parameters(spec):,d}")
        rows.append(row)
    plans = {member.name: plan_hatching(mothernet, member) for member in members}
    return members, mothernet, rows, plans


def test_bench_table1_architectures(benchmark):
    members, mothernet, rows, plans = benchmark.pedantic(_build_table1, rounds=1, iterations=1)

    headers = ["V", "subnet 1", "subnet 2", "subnet 3", "subnet 4", "subnet 5", "parameters"]
    report = [format_table(headers, rows, title="Table 1: VGGNet variants in the small ensemble")]
    report.append("")
    report.append(
        format_table(
            ["member", "hatching steps", "new parameters"],
            [
                [name, plan.num_steps, f"{plan.new_parameter_count():,d}"]
                for name, plan in plans.items()
            ],
            title="MotherNet -> member hatching plans",
        )
    )
    write_report("table1_architectures", "\n".join(report))

    # Structural assertions against the published table.
    by_name = {member.name: member for member in members}
    assert [block.depth for block in by_name["V13"].conv_blocks] == [2, 2, 2, 2, 2]
    assert [block.depth for block in by_name["V16"].conv_blocks] == [2, 2, 3, 3, 3]
    assert [block.depth for block in by_name["V19"].conv_blocks] == [2, 2, 4, 4, 4]
    assert by_name["V16"].conv_blocks[2].layers[2].notation() == "1:256"
    assert by_name["V16A"].conv_blocks[0].layers[0].notation() == "3:128"
    assert by_name["V16B"].conv_blocks[4].layers[2].notation() == "3:512"
    # The MotherNet is no larger than the smallest member and every member is
    # reachable from it by function-preserving transformations.
    assert count_parameters(mothernet) <= min(count_parameters(m) for m in members)
    assert all(plan.num_steps > 0 for name, plan in plans.items() if name != "V13")
    # Parameter ordering of the published architectures.
    assert count_parameters(vgg("V16A")) < count_parameters(vgg("V13")) < count_parameters(vgg("V19"))

"""Shared scenario builders for the benchmark harness.

Every benchmark module regenerates one of the paper's tables or figures.  The
expensive part — actually training the ensembles on the numpy substrate — is
centralised here and cached per pytest session so that, for example, the
Figure-10 bench (oracle curves of all large ensembles) reuses the ensembles
trained for Figures 6-9 instead of retraining them.

Scale knobs
-----------
The default configuration trains heavily scaled-down versions of the paper's
workloads (8-16 pixel images, a few hundred training samples, a handful of
ensemble members) so that ``pytest benchmarks/ --benchmark-only`` completes in
minutes on a laptop CPU.  Set ``REPRO_BENCH_SCALE=medium`` for a larger run.
Absolute numbers therefore differ from the paper's GPU hours; the reported
*shape* (who wins, by roughly what factor, how curves evolve with ensemble
size) is the reproduction target, and each bench prints the paper's
qualitative expectation next to the measured rows.  Projections to paper scale
use the analytical cost model calibrated on the measured runs.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path
from typing import Dict, List

import numpy as np
import pytest

from repro.arch import (
    count_parameters,
    resnet_variant_family,
    small_vgg_ensemble,
    v16_variant_family,
    vgg,
)
from repro.core import (
    AnalyticalCostModel,
    BaggingTrainer,
    FullDataTrainer,
    MotherNetsTrainer,
    cluster_ensemble,
)
from repro.data import cifar10_like, cifar100_like, svhn_like, train_validation_split
from repro.evaluation import (
    evaluate_ensemble,
    fit_super_learner_curve,
    incremental_error_curve,
    oracle_curve,
)
from repro.nn import TrainingConfig, default_dtype

RESULTS_DIR = Path(__file__).parent / "results"

_SCALES = {
    # image_size, train, test, width_scale, members(large), epochs, member_fraction
    "small": dict(
        image=8, train=512, test=256, width=0.05, members=5, epochs=12,
        member_fraction=0.4, cifar100_classes=16, resnet_members=5,
    ),
    "medium": dict(
        image=16, train=2048, test=768, width=0.1, members=10, epochs=14,
        member_fraction=0.3, cifar100_classes=40, resnet_members=10,
    ),
}

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
PARAMS = _SCALES.get(SCALE, _SCALES["small"])

# Paper-scale constants used for cost-model projection.
PAPER_TRAIN_SAMPLES = 50_000
PAPER_FULL_EPOCHS = 100
PAPER_MEMBER_EPOCHS = 20


def write_report(name: str, text: str) -> None:
    """Persist a bench report under ``benchmarks/results`` and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[report written to {path}]")


def training_config() -> TrainingConfig:
    """The shared training configuration (paper §3: SGD, mini-batches,
    batch normalisation, one convergence criterion for all networks)."""
    return TrainingConfig(
        max_epochs=PARAMS["epochs"],
        batch_size=128,
        learning_rate=0.05,
        momentum=0.9,
        convergence_patience=2,
        convergence_tolerance=3e-3,
    )


def _dataset(name: str):
    image = PARAMS["image"]
    shape = (3, image, image)
    if name == "cifar10":
        return cifar10_like(PARAMS["train"], PARAMS["test"], image_shape=shape, seed=1)
    if name == "cifar100":
        # The many-class task needs a little more signal per class than the
        # 10-class stand-ins for the ensemble effect to rise above noise at
        # miniature scale: slightly larger images and 1.5x the samples.
        many_class_shape = (3, max(PARAMS["image"], 12), max(PARAMS["image"], 12))
        return cifar100_like(
            int(PARAMS["train"] * 1.5), PARAMS["test"], image_shape=many_class_shape,
            num_classes=PARAMS["cifar100_classes"], seed=2,
        )
    if name == "svhn":
        return svhn_like(int(PARAMS["train"] * 1.5), PARAMS["test"], image_shape=shape, seed=3)
    raise ValueError(name)


# ---------------------------------------------------------------------------
# Scenario: small ensemble (Figure 5 / Figure 1)
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def small_ensemble_scenario() -> Dict:
    """The five Table-1 VGG variants on cifar10-like data, trained with all
    three approaches."""
    dataset = _dataset("cifar10")
    members = small_vgg_ensemble(
        num_classes=dataset.num_classes,
        input_shape=dataset.input_shape,
        width_scale=PARAMS["width"],
    )
    x_train, y_train, x_val, y_val = train_validation_split(
        dataset.x_train, dataset.y_train, validation_fraction=0.15, seed=0
    )
    config = training_config()
    trainers = {
        "mothernets": MotherNetsTrainer(
            config, tau=0.5, member_epoch_fraction=PARAMS["member_fraction"]
        ),
        "full_data": FullDataTrainer(config),
        "bagging": BaggingTrainer(config),
    }
    runs = {}
    evaluations = {}
    for name, trainer in trainers.items():
        run = trainer.train(members, dataset, seed=0)
        run.ensemble.fit_super_learner(x_val, y_val)
        runs[name] = run
        evaluations[name] = evaluate_ensemble(run.ensemble, dataset.x_test, dataset.y_test)
    return {
        "dataset": dataset,
        "members": members,
        "runs": runs,
        "evaluations": evaluations,
        "totals": {name: run.total_training_seconds for name, run in runs.items()},
    }


# ---------------------------------------------------------------------------
# Scenario: large VGG ensembles (Figures 6, 7, 8, 10)
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def large_vgg_scenario(dataset_name: str) -> Dict:
    """A growing ensemble of V16 variants trained with MotherNets, plus the
    measured per-member cost of the two baselines and a cost-model projection
    of all three approaches to the paper's ensemble sizes."""
    dataset = _dataset(dataset_name)
    members = v16_variant_family(
        PARAMS["members"],
        num_classes=dataset.num_classes,
        input_shape=dataset.input_shape,
        width_scale=PARAMS["width"],
        seed=4,
    )
    x_train, y_train, x_val, y_val = train_validation_split(
        dataset.x_train, dataset.y_train, validation_fraction=0.15, seed=0
    )
    config = training_config()

    mothernets_run = MotherNetsTrainer(
        config, tau=0.5, member_epoch_fraction=PARAMS["member_fraction"]
    ).train(members, dataset, seed=0)
    full_data_run = FullDataTrainer(config).train(members, dataset, seed=0)
    bagging_run = BaggingTrainer(config).train(members, dataset, seed=0)

    sizes = list(range(1, len(members) + 1))
    error_curves = incremental_error_curve(
        mothernets_run.ensemble, dataset.x_test, dataset.y_test, sizes, methods=("average", "vote")
    )
    error_curves["super_learner"] = fit_super_learner_curve(
        mothernets_run.ensemble, x_val, y_val, dataset.x_test, dataset.y_test, sizes
    )
    oracle = oracle_curve(mothernets_run.ensemble, dataset.x_test, dataset.y_test, sizes)

    time_curves = {
        "mothernets": mothernets_run.cumulative_training_seconds(),
        "full_data": full_data_run.cumulative_training_seconds(),
        "bagging": bagging_run.cumulative_training_seconds(),
    }

    # Project the three approaches to the paper's ensemble sizes (up to 100
    # members on CIFAR, 50 on SVHN) with the cost model calibrated on the
    # measured full-data run.
    cost = AnalyticalCostModel.calibrate(full_data_run.ledger)
    paper_members = 50 if dataset_name == "svhn" else 100
    projected_specs = v16_variant_family(paper_members, num_classes=10, seed=4)
    projected_mothernet = vgg("V16")
    projection = {
        "sizes": [1, *range(10, paper_members + 1, 10)],
        "full_data": [],
        "bagging": [],
        "mothernets": [],
    }
    for size in projection["sizes"]:
        subset = projected_specs[:size]
        projection["full_data"].append(
            cost.ensemble_training_seconds(subset, PAPER_FULL_EPOCHS, PAPER_TRAIN_SAMPLES) / 3600
        )
        projection["bagging"].append(
            cost.ensemble_training_seconds(subset, PAPER_FULL_EPOCHS, PAPER_TRAIN_SAMPLES) / 3600
        )
        projection["mothernets"].append(
            cost.ensemble_training_seconds(
                subset, PAPER_MEMBER_EPOCHS, PAPER_TRAIN_SAMPLES,
                mothernet_specs=[projected_mothernet], mothernet_epochs=PAPER_FULL_EPOCHS,
            ) / 3600
        )
    return {
        "dataset": dataset,
        "members": members,
        "sizes": sizes,
        "error_curves": error_curves,
        "oracle_curve": oracle,
        "time_curves": time_curves,
        "totals": {
            "mothernets": mothernets_run.total_training_seconds,
            "full_data": full_data_run.total_training_seconds,
            "bagging": bagging_run.total_training_seconds,
        },
        "projection": projection,
        "runs": {
            "mothernets": mothernets_run,
            "full_data": full_data_run,
            "bagging": bagging_run,
        },
    }


# ---------------------------------------------------------------------------
# Scenario: ResNet ensemble with clustering (Figures 9, 10)
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def resnet_scenario() -> Dict:
    """A clustered ResNet ensemble: full-scale clustering structure plus a
    scaled-down end-to-end training run of the smaller depths."""
    # Clustering structure at paper scale (structural only, fast).
    full_family = resnet_variant_family(width_scale=1.0)
    full_clusters = cluster_ensemble(full_family, tau=0.5)

    # Scaled-down training run.  This scenario's error-curve expectations sit
    # close to their thresholds and were calibrated on the float64 reference
    # path, so keep its training trajectory pinned to float64.
    dataset = _dataset("cifar10")
    members = resnet_variant_family(
        num_classes=dataset.num_classes,
        input_shape=dataset.input_shape,
        width_scale=PARAMS["width"],
        depths=(18, 34),
    )[: PARAMS["resnet_members"]]
    config = training_config()
    with default_dtype("float64"):
        mothernets_run = MotherNetsTrainer(
            config, tau=0.5, member_epoch_fraction=PARAMS["member_fraction"]
        ).train(members, dataset, seed=0)
        full_data_run = FullDataTrainer(config).train(members, dataset, seed=0)

    sizes = list(range(1, len(members) + 1))
    error_curves = incremental_error_curve(
        mothernets_run.ensemble, dataset.x_test, dataset.y_test, sizes, methods=("average", "vote")
    )
    oracle = oracle_curve(mothernets_run.ensemble, dataset.x_test, dataset.y_test, sizes)

    cost = AnalyticalCostModel.calibrate(full_data_run.ledger)
    paper_family = resnet_variant_family(width_scale=1.0)
    projection_sizes = [1, 5, 10, 15, 20, 25]
    projection = {"sizes": projection_sizes, "full_data": [], "mothernets": []}
    paper_clusters = cluster_ensemble(paper_family, tau=0.5)
    for size in projection_sizes:
        subset = paper_family[:size]
        projection["full_data"].append(
            cost.ensemble_training_seconds(subset, PAPER_FULL_EPOCHS, PAPER_TRAIN_SAMPLES) / 3600
        )
        active_clusters = [
            c.mothernet for c in paper_clusters if any(m.name in {s.name for s in subset} for m in c.members)
        ]
        projection["mothernets"].append(
            cost.ensemble_training_seconds(
                subset, PAPER_MEMBER_EPOCHS, PAPER_TRAIN_SAMPLES,
                mothernet_specs=active_clusters, mothernet_epochs=PAPER_FULL_EPOCHS,
            ) / 3600
        )
    return {
        "dataset": dataset,
        "members": members,
        "full_family": full_family,
        "full_clusters": full_clusters,
        "sizes": sizes,
        "error_curves": error_curves,
        "oracle_curve": oracle,
        "totals": {
            "mothernets": mothernets_run.total_training_seconds,
            "full_data": full_data_run.total_training_seconds,
        },
        "time_curves": {
            "mothernets": mothernets_run.cumulative_training_seconds(),
            "full_data": full_data_run.cumulative_training_seconds(),
        },
        "projection": projection,
        "runs": {"mothernets": mothernets_run, "full_data": full_data_run},
    }


@pytest.fixture(scope="session")
def paper_expectations() -> Dict[str, List[str]]:
    """The paper's qualitative expectations, printed next to measured rows."""
    return {
        "fig5": [
            "MotherNets error ~ full-data error (within a percent), ~5% lower than bagging",
            "MotherNets 2.5x faster than full-data and 1.8x faster than bagging",
        ],
        "fig6": [
            "error rate decreases with ensemble size (~2% on CIFAR-10)",
            "training time grows much more slowly for MotherNets; up to 6x faster at 100 nets",
        ],
        "fig7": [
            "more labels benefit more: ~5% improvement on CIFAR-100",
            "up to 6x faster at 100 networks",
        ],
        "fig8": [
            "small error improvement on SVHN (base learner already <5% error)",
            "up to 7x faster than full-data at 50 networks",
        ],
        "fig9": [
            "tau=0.5 clusters the 25 ResNets into a few groups (paper: 3)",
            "error improves ~3% with ensemble size; up to 3.6x faster training",
        ],
        "fig10": [
            "oracle error keeps improving as networks are added (consistently good, diverse members)",
        ],
    }

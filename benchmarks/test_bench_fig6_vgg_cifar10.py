"""Figure 6 — large VGG ensemble on CIFAR-10(-like).

(a) Test error rate (EA / Vote / SL) of the MotherNets-trained ensemble as the
    number of networks grows.
(b) Total training time versus ensemble size for full-data, bagging, and
    MotherNets, plus the calibrated cost-model projection to the paper's
    100-network ensemble.

Paper expectations: the error rate drops by about two percentage points as the
ensemble grows on CIFAR-10, and MotherNets trains the 100-network ensemble up
to 6x faster than either baseline, with the gap growing linearly in the
ensemble size.
"""

from __future__ import annotations

from conftest import large_vgg_scenario, write_report

from repro.evaluation import expectation_note, format_series, format_table


def _report_large_vgg(name: str, title: str, scenario, expectations) -> str:
    sizes = scenario["sizes"]
    report = [
        format_series(
            {
                "EA": scenario["error_curves"]["average"],
                "Vote": scenario["error_curves"]["vote"],
                "SL": scenario["error_curves"]["super_learner"],
            },
            sizes,
            x_label="networks",
        )
    ]
    report[0] = f"{title} (a): error rate (%) vs ensemble size\n" + report[0]
    report.append("")
    report.append(
        f"{title} (b): cumulative training time (s) vs ensemble size\n"
        + format_series(scenario["time_curves"], sizes, x_label="networks")
    )
    projection = scenario["projection"]
    report.append("")
    report.append(
        f"{title} (b, projected to paper scale via the calibrated cost model, hours)\n"
        + format_series(
            {k: v for k, v in projection.items() if k != "sizes"},
            projection["sizes"],
            x_label="networks",
        )
    )
    final_speedup = projection["full_data"][-1] / projection["mothernets"][-1]
    report.append(f"\nprojected speedup at {projection['sizes'][-1]} networks: {final_speedup:.1f}x")
    report.append(expectation_note(expectations))
    return "\n".join(report)


def _assert_large_vgg_shape(scenario):
    sizes = scenario["sizes"]
    error_curve = scenario["error_curves"]["average"]
    # Ensembling helps: the full ensemble is no worse than a single network.
    assert error_curve[-1] <= error_curve[0] + 1.0
    # Measured training time: MotherNets grows more slowly than both baselines.
    mothernets_curve = scenario["time_curves"]["mothernets"]
    full_data_curve = scenario["time_curves"]["full_data"]
    assert mothernets_curve[-1] < full_data_curve[-1]
    marginal_mothernets = mothernets_curve[-1] - mothernets_curve[0]
    marginal_full_data = full_data_curve[-1] - full_data_curve[0]
    assert marginal_mothernets < marginal_full_data
    # Projection to paper scale: the headline speedup factor.
    projection = scenario["projection"]
    speedup = projection["full_data"][-1] / projection["mothernets"][-1]
    assert speedup > 3.0
    assert len(sizes) == len(error_curve) == len(mothernets_curve)


def test_bench_fig6_vgg_cifar10(benchmark, paper_expectations):
    scenario = benchmark.pedantic(lambda: large_vgg_scenario("cifar10"), rounds=1, iterations=1)
    report = _report_large_vgg(
        "fig6", "Figure 6 (VGGNet, CIFAR-10-like)", scenario, paper_expectations["fig6"]
    )
    write_report("fig6_vgg_cifar10", report)
    _assert_large_vgg_shape(scenario)

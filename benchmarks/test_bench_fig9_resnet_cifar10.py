"""Figure 9 — ResNet ensemble with clustering (CIFAR-10-like).

The ensemble mixes ResNets from 18 to 152 layers (plus four widened variants
of each), which have a large size spread; the clustering algorithm with
tau=0.5 splits them into a few clusters and a separate MotherNet is trained
per cluster.  The bench reports

* the clustering structure obtained on the *full-scale* 25-network family,
* error-rate-vs-ensemble-size and training-time curves of a scaled-down
  end-to-end training run, and
* the cost-model projection of training time to the paper's 25-network scale.

Paper expectations: three clusters ({18,34}, {50,101}, {152}), error improves
by about three percentage points as networks are added, and MotherNets is up
to 3.6x faster than the baselines.
"""

from __future__ import annotations

from conftest import resnet_scenario, write_report

from repro.arch import count_parameters
from repro.core import clustering_summary
from repro.evaluation import expectation_note, format_series, format_table


def test_bench_fig9_resnet_cifar10(benchmark, paper_expectations):
    scenario = benchmark.pedantic(resnet_scenario, rounds=1, iterations=1)

    cluster_rows = [
        [
            entry["cluster_id"],
            entry["size"],
            ", ".join(entry["members"][:3]) + (" ..." if entry["size"] > 3 else ""),
            f"{entry['mothernet_parameters']:,d}",
            entry["min_shared_fraction"],
        ]
        for entry in clustering_summary(scenario["full_clusters"])
    ]
    report = [
        format_table(
            ["cluster", "members", "examples", "MotherNet params", "min shared fraction"],
            cluster_rows,
            title="Clustering of the full-scale 25-network ResNet family (tau = 0.5)",
        ),
        "",
        "Figure 9a: error rate (%) vs ensemble size (scaled training run)\n"
        + format_series(
            {"EA": scenario["error_curves"]["average"], "Vote": scenario["error_curves"]["vote"]},
            scenario["sizes"],
            x_label="networks",
        ),
        "",
        "Figure 9b: cumulative training time (s) vs ensemble size (measured)\n"
        + format_series(scenario["time_curves"], scenario["sizes"], x_label="networks"),
        "",
        "Figure 9b projected to the paper's 25-network ensemble (hours)\n"
        + format_series(
            {k: v for k, v in scenario["projection"].items() if k != "sizes"},
            scenario["projection"]["sizes"],
            x_label="networks",
        ),
    ]
    projected_speedup = (
        scenario["projection"]["full_data"][-1] / scenario["projection"]["mothernets"][-1]
    )
    report.append(f"\nprojected speedup at 25 networks: {projected_speedup:.1f}x")
    report.append(expectation_note(paper_expectations["fig9"]))
    write_report("fig9_resnet_cifar10", "\n".join(report))

    # --- clustering structure -------------------------------------------------
    clusters = scenario["full_clusters"]
    assert 2 <= len(clusters) <= 10
    for cluster in clusters:
        assert cluster.min_shared_fraction() >= 0.5
    # The smallest and largest family members never share a cluster: the size
    # spread is exactly why clustering exists.
    by_size = sorted(scenario["full_family"], key=count_parameters)
    smallest, largest = by_size[0].name, by_size[-1].name
    for cluster in clusters:
        names = {member.name for member in cluster.members}
        assert not ({smallest, largest} <= names)

    # --- training-run shape ---------------------------------------------------
    error_curve = scenario["error_curves"]["average"]
    assert error_curve[-1] <= error_curve[0] + 1.0
    assert scenario["time_curves"]["mothernets"][-1] < scenario["time_curves"]["full_data"][-1]
    assert projected_speedup > 1.5
    # Oracle error never increases with more members.
    oracle = scenario["oracle_curve"]
    assert all(b <= a + 1e-9 for a, b in zip(oracle, oracle[1:]))

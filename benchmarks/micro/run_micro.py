"""Micro-benchmarks for the execution engine.

Measures the hot paths the figure benchmarks are built on — conv
forward/backward, dense, a full VGG training step, and batched ensemble
inference — comparing the *fast* engine (float32, BLAS GEMM, workspace
reuse, batched ensemble pass) against the *reference* seed path (float64,
``np.einsum``, per-member inference loop).  The two parallel-engine
benchmarks (``ensemble_train_parallel``, ``pool_predict``) instead compare
the multi-process path (``workers=4``) against the single-process one and
record the machine's usable ``cpu_count`` next to the ratio — parallel
speedup is physically bounded by the core count, so the number is only
meaningful together with it.  ``metrics_overhead`` measures the
observability tax: the same VGG fit with the ``repro.obs`` registry disabled
versus enabled (must stay under 2%).  Results are written as
machine-readable JSON so the performance trajectory can be tracked PR over
PR.

Usage::

    PYTHONPATH=src python benchmarks/micro/run_micro.py \
        [--benchmarks all|conv_forward,vgg_step,...] [--repeats 5] \
        [--output benchmarks/micro/BENCH_micro.json]

Each benchmark reports the median over ``--repeats`` timed runs (after one
untimed warm-up, which also pre-populates the workspace arenas — steady-state
behaviour is what training loops see).
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import statistics
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

from repro.arch import small_vgg_ensemble, vgg
from repro.core import Ensemble, EnsembleMember
from repro.nn import Model, SoftmaxCrossEntropy
from repro.nn.layers import Conv2D, Dense, ResidualUnit
from repro.nn.optimizers import SGD
from repro.utils.parallel import cpu_count

SCHEMA = "repro.bench.micro/v1"
DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_micro.json"


# ---------------------------------------------------------------------------
# Harness plumbing
# ---------------------------------------------------------------------------

def _median_seconds(fn: Callable[[], None], repeats: int) -> float:
    fn()  # warm-up: JIT-free but fills caches and workspace arenas
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(statistics.median(samples))


def set_conv_engine(model: Model, engine: str) -> None:
    """Switch every convolution of a model to the given execution engine."""
    for layer in model._sequence():
        if isinstance(layer, Conv2D):
            layer.engine = engine
        elif isinstance(layer, ResidualUnit):
            for sub in layer.sublayers():
                if isinstance(sub, Conv2D):
                    sub.engine = engine


def _reference_model(spec, seed: int = 0) -> Model:
    model = Model.from_spec(spec, seed=seed, dtype="float64")
    set_conv_engine(model, "einsum")
    return model


def _fast_model(spec, seed: int = 0) -> Model:
    return Model.from_spec(spec, seed=seed, dtype="float32")


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------

def bench_conv_forward(repeats: int) -> Dict:
    """Inference-mode forward of a mid-network convolution."""
    params = {"batch": 64, "in_channels": 32, "out_channels": 64, "kernel": 3, "hw": 16}
    rng = np.random.default_rng(0)
    x64 = rng.normal(size=(params["batch"], params["in_channels"], params["hw"], params["hw"]))
    x32 = x64.astype(np.float32)
    ref = Conv2D(32, 64, 3, seed=1, dtype="float64", engine="einsum")
    fast = Conv2D(32, 64, 3, seed=1, dtype="float32", engine="gemm")
    return {
        "params": params,
        "reference_seconds": _median_seconds(lambda: ref.forward(x64, training=False), repeats),
        "fast_seconds": _median_seconds(lambda: fast.forward(x32, training=False), repeats),
    }


def bench_conv_backward(repeats: int) -> Dict:
    """Training-mode forward + backward of the same convolution."""
    params = {"batch": 64, "in_channels": 32, "out_channels": 64, "kernel": 3, "hw": 16}
    rng = np.random.default_rng(0)
    x64 = rng.normal(size=(params["batch"], params["in_channels"], params["hw"], params["hw"]))
    x32 = x64.astype(np.float32)
    g64 = rng.normal(size=(params["batch"], params["out_channels"], params["hw"], params["hw"]))
    g32 = g64.astype(np.float32)
    ref = Conv2D(32, 64, 3, seed=1, dtype="float64", engine="einsum")
    fast = Conv2D(32, 64, 3, seed=1, dtype="float32", engine="gemm")

    def run_ref():
        ref.forward(x64, training=True)
        ref.backward(g64)

    def run_fast():
        fast.forward(x32, training=True)
        fast.backward(g32)

    return {
        "params": params,
        "reference_seconds": _median_seconds(run_ref, repeats),
        "fast_seconds": _median_seconds(run_fast, repeats),
    }


def bench_dense(repeats: int) -> Dict:
    """Training-mode forward + backward of a wide dense layer."""
    params = {"batch": 256, "in_features": 512, "out_features": 512}
    rng = np.random.default_rng(0)
    x64 = rng.normal(size=(params["batch"], params["in_features"]))
    x32 = x64.astype(np.float32)
    g64 = rng.normal(size=(params["batch"], params["out_features"]))
    g32 = g64.astype(np.float32)
    ref = Dense(512, 512, seed=1, dtype="float64")
    fast = Dense(512, 512, seed=1, dtype="float32")

    def run_ref():
        ref.forward(x64, training=True)
        ref.backward(g64)

    def run_fast():
        fast.forward(x32, training=True)
        fast.backward(g32)

    return {
        "params": params,
        "reference_seconds": _median_seconds(run_ref, repeats),
        "fast_seconds": _median_seconds(run_fast, repeats),
    }


def bench_vgg_step(repeats: int) -> Dict:
    """One full training step (forward, loss, backward, SGD update) of a
    scaled-down V16 on CIFAR-shaped inputs — the unit of work every
    training-time figure accumulates."""
    params = {"variant": "V16", "batch": 64, "input_shape": [3, 16, 16], "width_scale": 0.25}
    spec = vgg("V16", num_classes=10, input_shape=(3, 16, 16), width_scale=0.25)
    rng = np.random.default_rng(0)
    x64 = rng.normal(size=(params["batch"], 3, 16, 16))
    x32 = x64.astype(np.float32)
    y = rng.integers(0, 10, size=params["batch"])
    loss_fn = SoftmaxCrossEntropy()

    def make_step(model: Model, x: np.ndarray) -> Callable[[], None]:
        optimizer = SGD(learning_rate=0.01, momentum=0.9)

        def step():
            logits = model.forward(x, training=True)
            _, grad = loss_fn(logits, y)
            model.zero_grads()
            model.backward(grad)
            optimizer.step(model.iter_parameters())

        return step

    ref_step = make_step(_reference_model(spec), x64)
    fast_step = make_step(_fast_model(spec), x32)
    return {
        "params": params,
        "reference_seconds": _median_seconds(ref_step, repeats),
        "fast_seconds": _median_seconds(fast_step, repeats),
    }


def bench_ensemble_predict(repeats: int) -> Dict:
    """All-member probability tensor for a five-member VGG ensemble:
    batched single pass (fast) versus the per-member sweep (reference)."""
    params = {
        "members": 5,
        "samples": 256,
        "batch_size": 128,
        "input_shape": [3, 16, 16],
        "width_scale": 0.25,
    }
    specs = small_vgg_ensemble(num_classes=10, input_shape=(3, 16, 16), width_scale=0.25)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(params["samples"], 3, 16, 16))

    ref_members = [
        EnsembleMember(name=spec.name, model=_reference_model(spec, seed=i))
        for i, spec in enumerate(specs)
    ]
    fast_members = [
        EnsembleMember(name=spec.name, model=_fast_model(spec, seed=i))
        for i, spec in enumerate(specs)
    ]
    fast_ensemble = Ensemble(fast_members, num_classes=10)

    def run_ref():
        # The seed implementation: one independent sweep per member.
        np.stack(
            [m.model.predict_proba(x, batch_size=params["batch_size"]) for m in ref_members]
        )

    def run_fast():
        fast_ensemble.predict_proba_all(x, batch_size=params["batch_size"])

    return {
        "params": params,
        "reference_seconds": _median_seconds(run_ref, repeats),
        "fast_seconds": _median_seconds(run_fast, repeats),
    }


def bench_metrics_overhead(repeats: int) -> Dict:
    """Observability tax on the training loop: a short VGG fit with the
    process-wide metrics registry *disabled* (reference) versus *enabled*
    (fast).  The per-epoch gauge/counter updates must stay under 2% of the
    step time — ``speedup`` here is expected to sit at ~1.0, and the
    committed number is guarded by the tier-1 suite via
    ``overhead_fraction`` (enabled/disabled - 1).
    """
    params = {
        "variant": "V16",
        "train_samples": 128,
        "batch": 32,
        "input_shape": [3, 16, 16],
        "width_scale": 0.25,
        "epochs": 2,
    }
    from repro.nn.training import Trainer, TrainingConfig
    from repro.obs.metrics import get_registry

    spec = vgg("V16", num_classes=10, input_shape=(3, 16, 16), width_scale=0.25)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(params["train_samples"], 3, 16, 16)).astype(np.float32)
    y = rng.integers(0, 10, size=params["train_samples"])
    config = TrainingConfig(
        max_epochs=params["epochs"],
        min_epochs=params["epochs"],
        convergence_patience=params["epochs"],
        batch_size=params["batch"],
        learning_rate=0.05,
    )
    registry = get_registry()

    def fit():
        model = _fast_model(spec, seed=1)
        Trainer(config).fit(model, x, y, seed=0)

    def run_disabled():
        registry.disable()
        try:
            fit()
        finally:
            registry.enable()

    entry = {
        "params": params,
        "reference_seconds": _median_seconds(run_disabled, repeats),
        "fast_seconds": _median_seconds(fit, repeats),
    }
    entry["overhead_fraction"] = (
        entry["fast_seconds"] / entry["reference_seconds"] - 1.0
    )
    return entry


def bench_ensemble_train_parallel(repeats: int) -> Dict:
    """Full-data training of a four-member MLP ensemble: serial loop
    (``workers=1``, the reference) versus the process-pool engine
    (``workers=4``).  The task is embarrassingly parallel, so on a machine
    with >= 4 usable cores the parallel path approaches a 4x speedup (pool
    start-up amortises over the members); on fewer cores the workers
    time-slice and the recorded ``cpu_count`` explains the resulting ratio.
    """
    workers = 4
    params = {
        "members": 4,
        "train_samples": 1024,
        "features": 12,
        "classes": 4,
        "base_width": 192,
        "max_epochs": 6,
        "batch_size": 32,
        "workers": workers,
        "cpu_count": cpu_count(),
    }
    from repro.arch.zoo import mlp_family
    from repro.core.baselines import FullDataTrainer
    from repro.data import load_dataset
    from repro.nn.training import TrainingConfig

    specs = mlp_family(
        count=params["members"],
        input_features=params["features"],
        num_classes=params["classes"],
        base_width=params["base_width"],
        seed=1,
    )
    dataset = load_dataset(
        "tabular",
        train_samples=params["train_samples"],
        test_samples=32,
        num_classes=params["classes"],
        num_features=params["features"],
        seed=3,
    )

    def config(n_workers: int) -> TrainingConfig:
        return TrainingConfig(
            max_epochs=params["max_epochs"],
            min_epochs=params["max_epochs"],
            convergence_patience=params["max_epochs"],
            batch_size=params["batch_size"],
            learning_rate=0.05,
            workers=n_workers,
        )

    def run_serial():
        FullDataTrainer(config(1), collect_phase_timings=False).train(specs, dataset, seed=0)

    def run_parallel():
        FullDataTrainer(config(workers), collect_phase_timings=False).train(
            specs, dataset, seed=0
        )

    return {
        "params": params,
        "reference_seconds": _median_seconds(run_serial, repeats),
        "fast_seconds": _median_seconds(run_parallel, repeats),
    }


def bench_pool_predict(repeats: int) -> Dict:
    """A stream of concurrent predict requests against a saved artifact:
    one single-process ``EnsemblePredictor`` answering sequentially (the
    reference) versus a four-worker ``PoolPredictor`` fed by eight client
    threads.  Worker start-up is excluded (both predictors are warm before
    timing); per-request IPC is included, which is the honest serving cost.
    """
    workers = 4
    params = {
        "members": 3,
        "requests": 24,
        "rows_per_request": 64,
        "workers": workers,
        "client_threads": 8,
        "cpu_count": cpu_count(),
    }
    from repro.api import EnsemblePredictor, run_experiment, save_ensemble_run
    from repro.parallel import PoolPredictor

    result = run_experiment(
        {
            "name": "bench-pool",
            "dataset": {
                "name": "tabular",
                "train_samples": 256,
                "test_samples": 2048,
                "num_classes": 4,
                "num_features": 16,
                "seed": 5,
            },
            "members": {
                "family": "mlp",
                "count": params["members"],
                "input_features": 16,
                "num_classes": 4,
                "base_width": 96,
                "seed": 1,
            },
            "approach": "full-data",
            "training": {"max_epochs": 2, "batch_size": 64, "learning_rate": 0.1},
            "seed": 0,
        }
    )
    artifact_root = Path(tempfile.mkdtemp(prefix="repro-bench-pool-"))
    artifact = artifact_root / "artifact"
    save_ensemble_run(result.run, artifact)
    rows = params["rows_per_request"]
    batches = [
        result.dataset.x_test[i * rows : (i + 1) * rows] for i in range(params["requests"])
    ]

    reference = EnsemblePredictor.load(artifact)
    pool = PoolPredictor(artifact, workers=workers, max_wait_ms=1.0)
    clients = ThreadPoolExecutor(max_workers=params["client_threads"])
    try:

        def run_reference():
            for batch in batches:
                reference.predict_proba(batch)

        def run_pool():
            list(clients.map(pool.predict_proba, batches))

        entry = {
            "params": params,
            "reference_seconds": _median_seconds(run_reference, repeats),
            "fast_seconds": _median_seconds(run_pool, repeats),
        }
    finally:
        clients.shutdown(wait=True)
        pool.close()
        shutil.rmtree(artifact_root, ignore_errors=True)
    return entry


def bench_pool_predict_large(repeats: int) -> Dict:
    """Large-batch serving data plane: shm transport (fast) versus the pickle
    reference, one worker, one client — isolating what the transport itself
    costs.  For each batch size the harness records p50/p99 end-to-end
    latency and the bytes that actually crossed the parent<->worker process
    boundary (measured by the ``repro_serve_transport_bytes_total`` counters:
    tensor payloads on the pickle path, queue descriptors on the shm path).
    The headline ``speedup`` is pickle-p50 over shm-p50 at batch 4096;
    ``bytes_ratio_4096`` is the corresponding bytes reduction, which is
    deterministic (no timing involved) and guarded by the tier-1 suite.
    """
    batch_sizes = [256, 1024, 4096]
    params = {
        "members": 3,
        "features": 32,
        "classes": 8,
        "batch_sizes": batch_sizes,
        "workers": 1,
        "arena_slots": 4,
        "cpu_count": cpu_count(),
    }
    from repro.api import run_experiment, save_ensemble_run
    from repro.obs.metrics import get_registry
    from repro.parallel import PoolPredictor

    result = run_experiment(
        {
            "name": "bench-pool-large",
            "dataset": {
                "name": "tabular",
                "train_samples": 256,
                "test_samples": max(batch_sizes),
                "num_classes": params["classes"],
                "num_features": params["features"],
                "seed": 5,
            },
            "members": {
                "family": "mlp",
                "count": params["members"],
                "input_features": params["features"],
                "num_classes": params["classes"],
                "base_width": 64,
                "seed": 1,
            },
            "approach": "full-data",
            "training": {"max_epochs": 1, "batch_size": 64, "learning_rate": 0.1},
            "seed": 0,
        }
    )
    artifact_root = Path(tempfile.mkdtemp(prefix="repro-bench-pool-large-"))
    artifact = artifact_root / "artifact"
    save_ensemble_run(result.run, artifact)
    x_full = result.dataset.x_test

    registry = get_registry()

    def transport_bytes(transport: str) -> float:
        metric = registry.get("repro_serve_transport_bytes_total")
        if metric is None:
            return 0.0
        return (
            metric.labels(transport, "request").value
            + metric.labels(transport, "response").value
        )

    iterations = max(repeats, 10)  # p99 needs more than a handful of samples
    transports: Dict[str, Dict] = {}
    try:
        for transport in ("pickle", "shm"):
            per_batch: Dict[str, Dict] = {}
            pool = PoolPredictor(
                artifact,
                workers=1,
                transport=transport,
                max_batch=max(batch_sizes),
                arena_slots=params["arena_slots"],
                max_wait_ms=0.0,
            )
            try:
                for batch in batch_sizes:
                    x = x_full[:batch]
                    pool.predict_proba(x)  # warm-up (arena pages, worker caches)
                    samples: List[float] = []
                    bytes_before = transport_bytes(transport)
                    for _ in range(iterations):
                        start = time.perf_counter()
                        pool.predict_proba(x)
                        samples.append(time.perf_counter() - start)
                    moved = transport_bytes(transport) - bytes_before
                    per_batch[str(batch)] = {
                        "p50_seconds": float(np.percentile(samples, 50)),
                        "p99_seconds": float(np.percentile(samples, 99)),
                        "bytes_per_request": moved / iterations,
                    }
            finally:
                pool.close()
            transports[transport] = per_batch
    finally:
        shutil.rmtree(artifact_root, ignore_errors=True)

    large = str(max(batch_sizes))
    entry = {
        "params": params,
        "iterations": iterations,
        "transports": transports,
        "reference_seconds": transports["pickle"][large]["p50_seconds"],
        "fast_seconds": transports["shm"][large]["p50_seconds"],
        "bytes_ratio_4096": (
            transports["pickle"][large]["bytes_per_request"]
            / transports["shm"][large]["bytes_per_request"]
        ),
    }
    return entry


def bench_hot_swap(repeats: int) -> Dict:
    """Serving-latency cost of a zero-downtime generation hot-swap.

    A two-worker shm pool serves a steady client loop while
    ``PoolPredictor.swap()`` rolls both workers onto a freshly-promoted
    generation.  Reports client-observed p50/p99 in steady state
    (``fast_seconds`` = steady p99) and inside the swap window
    (``reference_seconds`` = swap-window p99), so the harness's ``speedup``
    reads as the p99 degradation factor *during* a swap (~1x means swaps
    are latency-invisible), plus the swap makespan (drain + respawn + warm
    for all workers).  Latency during a roll is bounded by one worker's
    respawn+warm time slice, so ``cpu_count`` is recorded with the result.
    """
    from repro.api import run_experiment, save_ensemble_run
    from repro.core.artifact_store import ArtifactStore
    from repro.parallel import PoolPredictor

    params = {
        "members": 3,
        "features": 32,
        "classes": 8,
        "batch": 64,
        "workers": 2,
        "cpu_count": cpu_count(),
    }
    result = run_experiment(
        {
            "name": "bench-hot-swap",
            "dataset": {
                "name": "tabular",
                "train_samples": 256,
                "test_samples": 256,
                "num_classes": params["classes"],
                "num_features": params["features"],
                "seed": 5,
            },
            "members": {
                "family": "mlp",
                "count": params["members"],
                "input_features": params["features"],
                "num_classes": params["classes"],
                "base_width": 64,
                "seed": 1,
            },
            "approach": "full-data",
            "training": {"max_epochs": 1, "batch_size": 64, "learning_rate": 0.1},
            "seed": 0,
        }
    )
    store_root = Path(tempfile.mkdtemp(prefix="repro-bench-hot-swap-"))
    root = store_root / "store"
    save_ensemble_run(result.run, root)
    store = ArtifactStore.open(root)
    # The candidate generation: identical weights are fine — the roll cost
    # (drain, respawn, warm) is what's being measured, not the model delta.
    store.add_generation(result.run, parent_generation=0)
    x = result.dataset.x_test[: params["batch"]]

    iterations = max(repeats * 20, 100)  # p99 needs a real sample count
    pool = PoolPredictor(root, workers=params["workers"], max_wait_ms=0.0)
    try:
        pool.predict_proba(x)  # warm-up
        steady: List[float] = []
        for _ in range(iterations):
            start = time.perf_counter()
            pool.predict_proba(x)
            steady.append(time.perf_counter() - start)

        # Hammer from a client thread for the whole swap; keep only the
        # samples that started inside the swap window.
        samples: List[tuple] = []
        stop = False

        def hammer():
            while not stop:
                start = time.perf_counter()
                pool.predict_proba(x)
                samples.append((start, time.perf_counter() - start))

        store.promote(1)
        with ThreadPoolExecutor(max_workers=1) as client:
            future = client.submit(hammer)
            time.sleep(0.05)  # let the client reach steady fire
            swap_start = time.perf_counter()
            summary = pool.swap()
            makespan = time.perf_counter() - swap_start
            stop = True
            future.result()
        assert summary["workers_respawned"] == params["workers"], summary
        during = [
            elapsed
            for start, elapsed in samples
            if swap_start <= start <= swap_start + makespan
        ] or [elapsed for _, elapsed in samples]
    finally:
        pool.close()
        shutil.rmtree(store_root, ignore_errors=True)

    return {
        "params": params,
        "iterations": iterations,
        "steady_p50_seconds": float(np.percentile(steady, 50)),
        "steady_p99_seconds": float(np.percentile(steady, 99)),
        "swap_p50_seconds": float(np.percentile(during, 50)),
        "swap_p99_seconds": float(np.percentile(during, 99)),
        "swap_samples": len(during),
        "swap_makespan_seconds": makespan,
        "reference_seconds": float(np.percentile(during, 99)),
        "fast_seconds": float(np.percentile(steady, 99)),
    }


BENCHMARKS: Dict[str, Callable[[int], Dict]] = {
    "conv_forward": bench_conv_forward,
    "conv_backward": bench_conv_backward,
    "dense": bench_dense,
    "vgg_step": bench_vgg_step,
    "ensemble_predict": bench_ensemble_predict,
    "metrics_overhead": bench_metrics_overhead,
    "ensemble_train_parallel": bench_ensemble_train_parallel,
    "pool_predict": bench_pool_predict,
    "pool_predict_large": bench_pool_predict_large,
    "hot_swap": bench_hot_swap,
}


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def run(names: List[str], repeats: int) -> Dict:
    results: Dict[str, Dict] = {}
    for name in names:
        entry = BENCHMARKS[name](repeats)
        entry["speedup"] = entry["reference_seconds"] / entry["fast_seconds"]
        results[name] = entry
        print(
            f"{name:>18}: reference {entry['reference_seconds'] * 1e3:8.2f} ms   "
            f"fast {entry['fast_seconds'] * 1e3:8.2f} ms   "
            f"speedup {entry['speedup']:5.2f}x"
        )
    return {
        "schema": SCHEMA,
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "repeats": repeats,
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": cpu_count(),
        "reference": "float64 + einsum conv + per-member inference loop (seed path); "
        "workers=1 single-process path for the parallel benchmarks",
        "fast": "float32 + GEMM conv with workspace reuse + batched ensemble inference; "
        "workers=4 process pool for the parallel benchmarks",
        "benchmarks": results,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--benchmarks",
        default="all",
        help="comma-separated subset of: " + ", ".join(BENCHMARKS) + " (default: all)",
    )
    parser.add_argument("--repeats", type=int, default=5, help="timed runs per benchmark")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT, help="JSON output path")
    parser.add_argument(
        "--merge",
        action="store_true",
        help="keep entries already in --output for benchmarks not run this time "
        "(re-measure one benchmark without clobbering the rest of the file)",
    )
    args = parser.parse_args()

    if args.benchmarks == "all":
        names = list(BENCHMARKS)
    else:
        names = [n.strip() for n in args.benchmarks.split(",") if n.strip()]
        unknown = sorted(set(names) - set(BENCHMARKS))
        if unknown:
            parser.error(f"unknown benchmarks: {unknown}; known: {sorted(BENCHMARKS)}")

    payload = run(names, max(1, args.repeats))
    if args.merge and args.output.exists():
        previous = json.loads(args.output.read_text()).get("benchmarks", {})
        for name, entry in previous.items():
            payload["benchmarks"].setdefault(name, entry)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()

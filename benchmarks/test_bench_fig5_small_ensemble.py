"""Figure 5 — small ensemble (5 VGGNets, CIFAR-10-like).

(a) Test error rate of the ensemble under EA / SL / Vote / Oracle when trained
    through bagging, full-data, and MotherNets.
(b) Training-time breakdown across the ensemble networks for each approach.

Paper expectations: MotherNets reaches error comparable to full-data (within a
percent at paper scale) and clearly better than bagging, while training 2.5x
faster than full-data and 1.8x faster than bagging.
"""

from __future__ import annotations

from conftest import small_ensemble_scenario, write_report

from repro.evaluation import comparison_summary, expectation_note, format_table, format_time_breakdown


def test_bench_fig5_small_ensemble(benchmark, paper_expectations):
    scenario = benchmark.pedantic(small_ensemble_scenario, rounds=1, iterations=1)

    evaluations = scenario["evaluations"]
    methods = ["EA", "SL", "Vote", "O"]
    rows = [
        [approach, *[evaluations[approach].get(method, float("nan")) for method in methods]]
        for approach in ("bagging", "full_data", "mothernets")
    ]
    report = [
        format_table(
            ["approach", *methods],
            rows,
            title="Figure 5a: small ensemble test error rate (%) by inference method",
        )
    ]
    for approach, run in scenario["runs"].items():
        report.append("")
        report.append(
            format_time_breakdown(
                run.training_time_breakdown(), title=f"Figure 5b ({approach}): training time (s)"
            )
        )
    speedups = comparison_summary(scenario["totals"], reference="mothernets")
    report.append("")
    report.append(
        format_table(
            ["baseline", "speedup of MotherNets"],
            [[name, value] for name, value in speedups.items()],
            title="Training-time speedups",
        )
    )
    report.append(expectation_note(paper_expectations["fig5"]))
    write_report("fig5_small_ensemble", "\n".join(report))

    # Shape assertions (scaled-down substrate; see DESIGN.md §4).
    totals = scenario["totals"]
    assert totals["mothernets"] < totals["full_data"], "MotherNets must train faster than full-data"
    assert totals["mothernets"] < totals["bagging"], "MotherNets must train faster than bagging"
    mothernets_error = evaluations["mothernets"]["EA"]
    full_data_error = evaluations["full_data"]["EA"]
    assert abs(mothernets_error - full_data_error) < 15.0
    # All inference methods produce sane error rates and the oracle dominates.
    for approach in evaluations:
        assert evaluations[approach]["O"] <= evaluations[approach]["EA"] + 1e-9
        assert 0.0 <= evaluations[approach]["EA"] <= 100.0

"""Figure 8 — large VGG ensemble on SVHN(-like), up to 50 networks.

Paper expectations: SVHN shows relatively small error-rate improvements from
the ensemble because a single base learner is already below 5% error (low
intra-class variation), but MotherNets still trains the ensemble up to 7x
faster than full-data training.
"""

from __future__ import annotations

from conftest import large_vgg_scenario, write_report
from test_bench_fig6_vgg_cifar10 import _assert_large_vgg_shape, _report_large_vgg


def test_bench_fig8_vgg_svhn(benchmark, paper_expectations):
    scenario = benchmark.pedantic(lambda: large_vgg_scenario("svhn"), rounds=1, iterations=1)
    report = _report_large_vgg(
        "fig8", "Figure 8 (VGGNet, SVHN-like)", scenario, paper_expectations["fig8"]
    )
    write_report("fig8_vgg_svhn", report)
    _assert_large_vgg_shape(scenario)
    # The projection covers the paper's 50-network SVHN ensemble.
    assert scenario["projection"]["sizes"][-1] == 50


def test_bench_fig8_svhn_is_the_easy_dataset(benchmark):
    """The single-network error on the SVHN stand-in is lower than on the
    CIFAR-10 stand-in, and the ensemble's relative improvement is smaller —
    the paper's explanation for the flat Figure 8a."""

    def both():
        return large_vgg_scenario("cifar10"), large_vgg_scenario("svhn")

    cifar10, svhn = benchmark.pedantic(both, rounds=1, iterations=1)
    single_cifar = cifar10["error_curves"]["average"][0]
    single_svhn = svhn["error_curves"]["average"][0]
    gain_cifar = single_cifar - cifar10["error_curves"]["average"][-1]
    gain_svhn = single_svhn - svhn["error_curves"]["average"][-1]
    write_report(
        "fig8_difficulty_comparison",
        f"single-network error, cifar10-like: {single_cifar:.2f}%  svhn-like: {single_svhn:.2f}%\n"
        f"ensemble gain, cifar10-like: {gain_cifar:.2f}  svhn-like: {gain_svhn:.2f}\n"
        "[paper] SVHN base learner is already <5% error, so the ensemble can improve only a little",
    )
    assert single_svhn < single_cifar
    assert gain_svhn <= gain_cifar + 1.0

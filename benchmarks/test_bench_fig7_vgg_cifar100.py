"""Figure 7 — large VGG ensemble on CIFAR-100(-like).

Same layout as Figure 6 on the many-class data set.  Paper expectations: data
sets with more labels benefit more from large ensembles (around five
percentage points of improvement versus about two on CIFAR-10), and training
is again up to 6x faster with MotherNets at 100 networks.
"""

from __future__ import annotations

from conftest import large_vgg_scenario, write_report
from test_bench_fig6_vgg_cifar10 import _assert_large_vgg_shape, _report_large_vgg


def test_bench_fig7_vgg_cifar100(benchmark, paper_expectations):
    scenario = benchmark.pedantic(lambda: large_vgg_scenario("cifar100"), rounds=1, iterations=1)
    report = _report_large_vgg(
        "fig7", "Figure 7 (VGGNet, CIFAR-100-like)", scenario, paper_expectations["fig7"]
    )
    write_report("fig7_vgg_cifar100", report)
    _assert_large_vgg_shape(scenario)

    # Many-class data: error rates are much higher than on the 10-class task,
    # leaving the head-room that the paper says large ensembles exploit.
    assert scenario["dataset"].num_classes > 10
    assert scenario["error_curves"]["average"][0] > 0.0


def test_bench_fig7_more_labels_benefit_more(benchmark):
    """The ensemble improvement (single network -> full ensemble) on the
    many-class data set is at least as large as on the 10-class data set,
    the qualitative claim the paper draws from Figures 6a and 7a."""

    def both():
        return large_vgg_scenario("cifar10"), large_vgg_scenario("cifar100")

    cifar10, cifar100 = benchmark.pedantic(both, rounds=1, iterations=1)
    gain10 = cifar10["error_curves"]["average"][0] - cifar10["error_curves"]["average"][-1]
    gain100 = cifar100["error_curves"]["average"][0] - cifar100["error_curves"]["average"][-1]
    write_report(
        "fig7_gain_comparison",
        f"ensemble gain on cifar10-like: {gain10:.2f} percentage points\n"
        f"ensemble gain on cifar100-like: {gain100:.2f} percentage points\n"
        "[paper] CIFAR-100 improves ~5 points vs ~2 points on CIFAR-10",
    )
    # The many-class ensemble must show a real improvement, and it must not be
    # dramatically smaller than the 10-class improvement (at paper scale it is
    # larger; miniature-scale noise can shrink the margin).
    assert gain100 > 0.5
    assert gain100 >= gain10 - 6.0

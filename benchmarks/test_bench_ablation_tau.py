"""Ablation — the clustering parameter τ (§2.3).

The paper describes τ as the knob trading off the number of clusters (and
hence how many MotherNets must be trained from scratch) against the number of
new parameters introduced when hatching (how much of every member is warm
started).  This bench sweeps τ over the full-scale 25-network ResNet family
and the 100-network V16 variant family and reports both sides of the
trade-off, plus the resulting projected training cost.
"""

from __future__ import annotations

from conftest import (
    PAPER_FULL_EPOCHS,
    PAPER_MEMBER_EPOCHS,
    PAPER_TRAIN_SAMPLES,
    write_report,
)

from repro.arch import count_parameters, resnet_variant_family, v16_variant_family
from repro.core import AnalyticalCostModel, cluster_ensemble
from repro.evaluation import format_table

TAUS = (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)


def _sweep(family):
    cost = AnalyticalCostModel(seconds_per_unit=2e-12)
    rows = []
    for tau in TAUS:
        clusters = cluster_ensemble(family, tau=tau)
        min_shared = min(cluster.min_shared_fraction() for cluster in clusters)
        new_parameters = sum(
            count_parameters(member) - count_parameters(cluster.mothernet)
            for cluster in clusters
            for member in cluster.members
        )
        projected_hours = cost.ensemble_training_seconds(
            family,
            PAPER_MEMBER_EPOCHS,
            PAPER_TRAIN_SAMPLES,
            mothernet_specs=[cluster.mothernet for cluster in clusters],
            mothernet_epochs=PAPER_FULL_EPOCHS,
        ) / 3600
        rows.append([tau, len(clusters), min_shared, f"{new_parameters:,d}", projected_hours])
    return rows


def test_bench_ablation_tau(benchmark):
    resnet_family = resnet_variant_family(width_scale=1.0)
    vgg_family = v16_variant_family(100, seed=4)

    resnet_rows, vgg_rows = benchmark.pedantic(
        lambda: (_sweep(resnet_family), _sweep(vgg_family)), rounds=1, iterations=1
    )

    headers = ["tau", "clusters", "min shared fraction", "new (hatched) parameters", "projected cost (h)"]
    report = [
        format_table(headers, resnet_rows, title="tau sweep: 25-network ResNet family"),
        "",
        format_table(headers, vgg_rows, title="tau sweep: 100-network V16 variant family"),
        "",
        "[paper] tau trades the number of clusters (MotherNets trained from scratch) against",
        "[paper] the fraction of each member that must be trained anew after hatching;",
        "[paper] tau=0.5 guarantees a majority of every member's parameters is warm started.",
    ]
    write_report("ablation_tau", "\n".join(report))

    for rows in (resnet_rows, vgg_rows):
        cluster_counts = [row[1] for row in rows]
        min_shared = [row[2] for row in rows]
        # More clusters as tau grows (monotone non-decreasing) ...
        assert cluster_counts == sorted(cluster_counts)
        # ... and the guaranteed shared fraction respects tau.
        for tau, shared in zip(TAUS, min_shared):
            assert shared >= tau - 1e-9
    # The homogeneous V16 family needs only one or two clusters at the paper's
    # tau=0.5 (the largest single-layer variants sit right at the boundary).
    assert vgg_rows[TAUS.index(0.5)][1] <= 2
    # The heterogeneous ResNet family needs more than one.
    assert resnet_rows[TAUS.index(0.5)][1] > 1

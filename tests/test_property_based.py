"""Property-based tests (hypothesis) for the core data structures and
invariants of the library:

* MotherNet construction — the MotherNet is structurally dominated by every
  member (positionwise depth/width minima) and is always hatchable into every
  member, for arbitrary compatible ensembles;
* clustering — every member lands in exactly one cluster, every cluster
  satisfies the τ condition, and τ=0 / τ=1 hit the documented extremes;
* hatching — function preservation holds for randomly generated parent/child
  spec pairs, not just the hand-written ones;
* the numeric substrate — softmax, im2col/col2im, bagging composition.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import (
    ArchitectureSpec,
    count_parameters,
    is_hatchable,
    mlp,
)
from repro.core import (
    cluster_ensemble,
    construct_mothernet,
    hatch,
    satisfies_clustering_condition,
    verify_function_preservation,
)
from repro.data import bootstrap_sample
from repro.nn import Model, softmax
from repro.nn.layers import col2im, im2col

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

dense_hidden_widths = st.lists(st.integers(min_value=2, max_value=24), min_size=1, max_size=4)


@st.composite
def dense_ensembles(draw, min_members=2, max_members=5):
    count = draw(st.integers(min_members, max_members))
    members = []
    for i in range(count):
        widths = draw(dense_hidden_widths)
        members.append(mlp(f"net-{i}", input_features=6, hidden_units=widths, num_classes=3))
    return members


@st.composite
def conv_ensembles(draw, min_members=2, max_members=4):
    count = draw(st.integers(min_members, max_members))
    num_blocks = draw(st.integers(1, 3))
    members = []
    for i in range(count):
        blocks = []
        for _ in range(num_blocks):
            depth = draw(st.integers(1, 3))
            layers = []
            for _ in range(depth):
                size = draw(st.sampled_from([1, 3, 5]))
                filters = draw(st.integers(2, 8))
                layers.append(f"{size}:{filters}")
            blocks.append(layers)
        members.append(
            ArchitectureSpec.convolutional(
                f"conv-{i}", (2, 8, 8), blocks, num_classes=3, use_batchnorm=True
            )
        )
    return members


@st.composite
def hatchable_dense_pairs(draw):
    """A (parent, child) pair where the child only deepens/widens the parent
    with a tail that is at least as wide as the parent's last layer."""
    parent_widths = draw(st.lists(st.integers(2, 12), min_size=1, max_size=3))
    child_widths = [w + draw(st.integers(0, 8)) for w in parent_widths]
    extra = draw(st.integers(0, 2))
    tail = max(parent_widths[-1], 2)
    child_widths += [tail + draw(st.integers(0, 6)) for _ in range(extra)]
    parent = mlp("parent", 5, parent_widths, 3)
    child = mlp("child", 5, child_widths, 3)
    return parent, child


# ---------------------------------------------------------------------------
# MotherNet construction invariants
# ---------------------------------------------------------------------------


@SETTINGS
@given(dense_ensembles())
def test_dense_mothernet_is_structurally_dominated_by_every_member(members):
    """The MotherNet is the positionwise-minimal structure (§2.1): no deeper
    than any member and no wider at any shared layer position.  (Raw
    parameter counts are *not* monotonic in this ordering: a deeper member
    with a narrow tail layer can have fewer parameters than the shallower
    MotherNet, whose classifier head connects a wider layer straight to the
    classes — so structural domination, not a parameter-count bound, is the
    invariant.)"""
    mothernet = construct_mothernet(members)
    for member in members:
        assert len(mothernet.dense_layers) <= len(member.dense_layers)
        for mn_layer, layer in zip(mothernet.dense_layers, member.dense_layers):
            assert mn_layer.units <= layer.units


@SETTINGS
@given(dense_ensembles())
def test_dense_mothernet_depth_is_minimum_depth(members):
    mothernet = construct_mothernet(members)
    assert len(mothernet.dense_layers) == min(len(m.dense_layers) for m in members)


@SETTINGS
@given(conv_ensembles())
def test_conv_mothernet_is_structurally_dominated_by_every_member(members):
    mothernet = construct_mothernet(members)
    for member in members:
        for mn_block, block in zip(mothernet.conv_blocks, member.conv_blocks):
            assert mn_block.depth <= block.depth
            for mn_layer, layer in zip(mn_block.layers, block.layers):
                assert mn_layer.filters <= layer.filters
                assert mn_layer.filter_size <= layer.filter_size


@SETTINGS
@given(conv_ensembles())
def test_conv_mothernet_is_hatchable_into_every_member(members):
    mothernet = construct_mothernet(members)
    assert all(is_hatchable(mothernet, member) for member in members)


@SETTINGS
@given(dense_ensembles())
def test_mothernet_construction_is_order_invariant(members):
    forward = construct_mothernet(members)
    backward = construct_mothernet(list(reversed(members)))
    assert forward.dense_layers == backward.dense_layers


@SETTINGS
@given(dense_ensembles())
def test_mothernet_is_idempotent(members):
    """Adding the MotherNet itself to the ensemble does not change it."""
    mothernet = construct_mothernet(members)
    again = construct_mothernet([mothernet.with_name("as-member"), *members])
    assert again.dense_layers == mothernet.dense_layers


# ---------------------------------------------------------------------------
# Clustering invariants
# ---------------------------------------------------------------------------


@SETTINGS
@given(dense_ensembles(min_members=3, max_members=7), st.floats(0.1, 0.95))
def test_clustering_partitions_the_ensemble(members, tau):
    clusters = cluster_ensemble(members, tau=tau)
    names = sorted(m.name for cluster in clusters for m in cluster.members)
    assert names == sorted(m.name for m in members)


@SETTINGS
@given(dense_ensembles(min_members=3, max_members=7), st.floats(0.1, 0.95))
def test_every_cluster_satisfies_the_condition(members, tau):
    for cluster in cluster_ensemble(members, tau=tau):
        assert satisfies_clustering_condition(cluster.members, tau)
        assert cluster.min_shared_fraction() >= tau - 1e-12


@SETTINGS
@given(dense_ensembles(min_members=2, max_members=6))
def test_tau_zero_yields_a_single_cluster(members):
    assert len(cluster_ensemble(members, tau=0.0)) == 1


@SETTINGS
@given(dense_ensembles(min_members=3, max_members=6), st.floats(0.2, 0.8))
def test_cluster_count_monotone_in_tau(members, tau):
    low = len(cluster_ensemble(members, tau=tau * 0.5))
    high = len(cluster_ensemble(members, tau=tau))
    assert low <= high


# ---------------------------------------------------------------------------
# Hatching / function preservation
# ---------------------------------------------------------------------------


@SETTINGS
@given(hatchable_dense_pairs())
def test_hatching_random_dense_pairs_preserves_function(pair):
    parent_spec, child_spec = pair
    # Exactness property: verify at float64 resolution (hatch inherits dtype).
    parent = Model.from_spec(parent_spec, seed=0, dtype="float64")
    child = hatch(parent, child_spec, seed=1)
    deviation = verify_function_preservation(parent, child, num_samples=6, atol=1e-7)
    assert deviation < 1e-7


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(conv_ensembles(min_members=2, max_members=3))
def test_hatching_random_conv_mothernets_preserves_function(members):
    mothernet = construct_mothernet(members)
    parent = Model.from_spec(mothernet, seed=0, dtype="float64")
    for member in members:
        blocks_ok = all(
            layer.filters >= mn_block.layers[-1].filters
            for mn_block, block in zip(mothernet.conv_blocks, member.conv_blocks)
            for layer in block.layers[mn_block.depth:]
        )
        if not blocks_ok:
            # Appended layers narrower than the MotherNet tail are explicitly
            # rejected by plan_hatching; skip those members here.
            continue
        child = hatch(parent, member, seed=2)
        verify_function_preservation(parent, child, num_samples=2, atol=1e-7)


@SETTINGS
@given(hatchable_dense_pairs())
def test_hatched_model_has_target_parameter_count(pair):
    parent_spec, child_spec = pair
    parent = Model.from_spec(parent_spec, seed=3)
    child = hatch(parent, child_spec, seed=4)
    assert child.parameter_count() == count_parameters(child_spec)


# ---------------------------------------------------------------------------
# Numeric substrate properties
# ---------------------------------------------------------------------------


@SETTINGS
@given(st.integers(1, 6), st.integers(2, 10))
def test_softmax_rows_are_distributions(rows, cols):
    logits = np.random.default_rng(0).normal(size=(rows, cols)) * 10
    probs = softmax(logits)
    np.testing.assert_allclose(probs.sum(axis=1), np.ones(rows), atol=1e-12)
    assert np.all(probs >= 0)


@SETTINGS
@given(st.integers(1, 3), st.integers(1, 3), st.sampled_from([3, 5]), st.integers(5, 9))
def test_im2col_col2im_adjoint_property(n, c, k, size):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(n, c, size, size))
    pad = (k - 1) // 2
    cols = im2col(x, (k, k), stride=1, padding=pad)
    other = rng.normal(size=cols.shape)
    lhs = float(np.sum(cols * other))
    rhs = float(np.sum(x * col2im(other, x.shape, (k, k), stride=1, padding=pad)))
    assert lhs == pytest.approx(rhs, rel=1e-9)


@SETTINGS
@given(st.integers(10, 300), st.integers(0, 2**31 - 1))
def test_bootstrap_sample_indices_are_valid_and_full_size(n, seed):
    x = np.arange(n, dtype=float)[:, None]
    y = np.zeros(n, dtype=int)
    bag = bootstrap_sample(x, y, seed=seed)
    assert bag.size == n
    assert bag.indices.min() >= 0 and bag.indices.max() < n
    assert 0.0 < bag.unique_fraction <= 1.0

"""Unit tests for the shared utilities (RNG management, timing, logging)."""

import logging
import time

import numpy as np
import pytest

from repro.utils import RngManager, Timer, WallClockAccumulator, as_rng, derive_seed, get_logger


# ---------------------------------------------------------------------------
# RNG management
# ---------------------------------------------------------------------------


def test_as_rng_accepts_int_none_and_generator():
    assert isinstance(as_rng(3), np.random.Generator)
    assert isinstance(as_rng(None), np.random.Generator)
    generator = np.random.default_rng(0)
    assert as_rng(generator) is generator


def test_as_rng_same_seed_same_stream():
    assert as_rng(5).integers(1000) == as_rng(5).integers(1000)


def test_derive_seed_is_deterministic_and_label_sensitive():
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
    assert derive_seed(1, "a", 2) != derive_seed(1, "a", 3)
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_derive_seed_range():
    seed = derive_seed(123, "anything")
    assert 0 <= seed < 2**63 - 1


def test_rng_manager_generators_are_independent_per_label():
    manager = RngManager(7)
    a = manager.generator("init", 0).normal(size=4)
    b = manager.generator("init", 1).normal(size=4)
    a_again = manager.generator("init", 0).normal(size=4)
    np.testing.assert_array_equal(a, a_again)
    assert not np.array_equal(a, b)


def test_rng_manager_spawn_creates_derived_namespace():
    manager = RngManager(7)
    child = manager.spawn("member", 3)
    assert isinstance(child, RngManager)
    assert child.base_seed == manager.seed("member", 3)


def test_rng_manager_none_seed_is_random_but_usable():
    manager = RngManager(None)
    assert isinstance(manager.generator("x"), np.random.Generator)


# ---------------------------------------------------------------------------
# Timing
# ---------------------------------------------------------------------------


def test_timer_measures_elapsed_time():
    with Timer() as timer:
        time.sleep(0.01)
    assert timer.elapsed >= 0.009


def test_timer_accumulates_across_starts():
    timer = Timer()
    timer.start()
    time.sleep(0.005)
    first = timer.stop()
    timer.start()
    time.sleep(0.005)
    second = timer.stop()
    assert second > first


def test_timer_stop_without_start_raises():
    with pytest.raises(RuntimeError):
        Timer().stop()


def test_wall_clock_accumulator_categories():
    acc = WallClockAccumulator()
    acc.add("mothernet", 1.5)
    acc.add("member", 0.5)
    acc.add("member", 0.25)
    assert acc.totals["member"] == pytest.approx(0.75)
    assert acc.total == pytest.approx(2.25)


def test_wall_clock_accumulator_measure_context():
    acc = WallClockAccumulator()
    with acc.measure("work"):
        time.sleep(0.01)
    assert acc.totals["work"] >= 0.009


def test_wall_clock_accumulator_merge():
    a = WallClockAccumulator({"x": 1.0})
    b = WallClockAccumulator({"x": 2.0, "y": 3.0})
    merged = a.merge(b)
    assert merged.totals == {"x": 3.0, "y": 3.0}
    # merge is non-destructive
    assert a.totals == {"x": 1.0}


# ---------------------------------------------------------------------------
# Logging
# ---------------------------------------------------------------------------


def test_get_logger_namespaces_under_repro():
    logger = get_logger("core.trainer")
    assert logger.name == "repro.core.trainer"
    assert isinstance(logger, logging.Logger)


def test_get_logger_keeps_existing_repro_prefix():
    assert get_logger("repro.nn").name == "repro.nn"


# ---------------------------------------------------------------------------
# BLAS thread-pool control (repro.utils.parallel)
# ---------------------------------------------------------------------------


def test_blas_thread_limit_sets_and_restores_env():
    import os

    from repro.utils.parallel import BLAS_ENV_VARS, blas_thread_limit

    probe = BLAS_ENV_VARS[0]
    saved = os.environ.get(probe)
    os.environ[probe] = "7"
    try:
        with blas_thread_limit(2):
            for var in BLAS_ENV_VARS:
                assert os.environ[var] == "2"
        assert os.environ[probe] == "7"
    finally:
        if saved is None:
            os.environ.pop(probe, None)
        else:
            os.environ[probe] = saved


def test_blas_thread_limit_restores_unset_vars():
    import os

    from repro.utils.parallel import BLAS_ENV_VARS, blas_thread_limit

    probe = BLAS_ENV_VARS[-1]
    saved = os.environ.pop(probe, None)
    try:
        with blas_thread_limit(1):
            assert os.environ[probe] == "1"
        assert probe not in os.environ
    finally:
        if saved is not None:
            os.environ[probe] = saved


def test_blas_thread_limit_rejects_non_positive():
    from repro.utils.parallel import apply_blas_thread_cap, blas_thread_limit

    with pytest.raises(ValueError):
        with blas_thread_limit(0):
            pass
    with pytest.raises(ValueError):
        apply_blas_thread_cap(0)


def test_cpu_count_positive():
    from repro.utils.parallel import cpu_count

    assert cpu_count() >= 1

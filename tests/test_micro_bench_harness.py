"""Smoke test for the micro-benchmark harness: it must run end to end and
emit schema-conforming, machine-readable JSON (the perf trajectory across PRs
depends on this file format staying parseable)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
HARNESS = REPO_ROOT / "benchmarks" / "micro" / "run_micro.py"


def test_micro_harness_smoke(tmp_path):
    output = tmp_path / "BENCH_micro.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            str(HARNESS),
            "--benchmarks",
            "dense",
            "--repeats",
            "1",
            "--output",
            str(output),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(output.read_text())
    assert payload["schema"] == "repro.bench.micro/v1"
    entry = payload["benchmarks"]["dense"]
    assert entry["reference_seconds"] > 0
    assert entry["fast_seconds"] > 0
    assert entry["speedup"] == entry["reference_seconds"] / entry["fast_seconds"]


def test_micro_harness_rejects_unknown_benchmark(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(HARNESS), "--benchmarks", "nope", "--output", str(tmp_path / "x.json")],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode != 0
    assert "unknown benchmarks" in proc.stderr


def test_checked_in_bench_results_meet_acceptance():
    """The committed BENCH_micro.json must document >= 2x on the VGG training
    step and ensemble predict (the acceptance criteria of the engine PR)."""
    payload = json.loads((REPO_ROOT / "benchmarks" / "micro" / "BENCH_micro.json").read_text())
    assert payload["benchmarks"]["vgg_step"]["speedup"] >= 2.0
    assert payload["benchmarks"]["ensemble_predict"]["speedup"] >= 2.0


def test_checked_in_metrics_overhead_under_two_percent():
    """The committed metrics_overhead benchmark must document that enabling
    the repro.obs registry costs < 2% on a real VGG training run (the
    observability subsystem's acceptance criterion)."""
    payload = json.loads((REPO_ROOT / "benchmarks" / "micro" / "BENCH_micro.json").read_text())
    entry = payload["benchmarks"]["metrics_overhead"]
    assert entry["reference_seconds"] > 0 and entry["fast_seconds"] > 0
    assert entry["overhead_fraction"] == pytest.approx(
        entry["fast_seconds"] / entry["reference_seconds"] - 1.0
    )
    assert entry["overhead_fraction"] < 0.02


def test_checked_in_parallel_training_speedup():
    """Guard on the committed parallel-training benchmark.

    Parallel speedup is physically bounded by the usable core count, which
    the benchmark records next to the ratio.  Whenever the committed numbers
    come from a machine that can actually run the four workers concurrently
    (>= 4 usable cores), the engine must deliver >= 2x over the serial loop;
    on smaller machines (e.g. a single-core CI container, where the workers
    necessarily time-slice one core) the guard instead pins down that the
    engine does not collapse and that the core count justifying the ratio is
    on record.
    """
    payload = json.loads((REPO_ROOT / "benchmarks" / "micro" / "BENCH_micro.json").read_text())
    entry = payload["benchmarks"]["ensemble_train_parallel"]
    cores = entry["params"]["cpu_count"]
    assert cores >= 1
    assert entry["params"]["workers"] == 4
    if cores >= 4:
        assert entry["speedup"] >= 2.0
    else:
        # Time-slicing cores cannot speed up compute-bound training; require
        # the pool overhead to stay bounded instead.
        assert entry["speedup"] > 0.25
    assert "pool_predict" in payload["benchmarks"]
    assert payload["benchmarks"]["pool_predict"]["params"]["cpu_count"] == cores


def test_checked_in_transport_bytes_reduction():
    """Guard on the committed serving data-plane benchmark (ISSUE 8).

    The bytes that cross the parent<->worker boundary are counted, not
    timed, so the ratio is deterministic on any machine: at batch 4096 the
    shm transport must move at least 5x fewer bytes per request than the
    pickle reference (it actually moves ~4 orders of magnitude fewer — the
    descriptors don't grow with the batch).  Latency follows the same
    cpu_count convention as the other parallel benchmarks: the committed
    numbers must show shm no slower than pickle end to end, with the core
    count that produced them on record.
    """
    payload = json.loads((REPO_ROOT / "benchmarks" / "micro" / "BENCH_micro.json").read_text())
    entry = payload["benchmarks"]["pool_predict_large"]
    assert entry["params"]["cpu_count"] >= 1
    assert entry["params"]["batch_sizes"] == [256, 1024, 4096]
    assert entry["bytes_ratio_4096"] >= 5.0
    for transport in ("shm", "pickle"):
        for batch in ("256", "1024", "4096"):
            stats = entry["transports"][transport][batch]
            assert stats["p50_seconds"] > 0
            assert stats["p99_seconds"] >= stats["p50_seconds"]
            assert stats["bytes_per_request"] > 0
    # shm descriptors stay constant-size; pickle payloads scale with rows.
    assert (
        entry["transports"]["pickle"]["4096"]["bytes_per_request"]
        > entry["transports"]["pickle"]["256"]["bytes_per_request"]
    )
    # End-to-end: shm must not be slower than the pickle reference.
    assert entry["speedup"] >= 1.0


def test_checked_in_hot_swap_benchmark():
    """Guard on the committed hot-swap benchmark (ISSUE 10).

    The entry documents what a zero-downtime generation swap costs the
    client: p99 inside the swap window vs steady state (the harness's
    ``speedup`` is that degradation factor) plus the swap makespan.
    Absolute latency is machine-dependent, so the guard is structural —
    the measurement exists, is positive, and records the core count that
    produced it — not a latency budget.
    """
    payload = json.loads((REPO_ROOT / "benchmarks" / "micro" / "BENCH_micro.json").read_text())
    entry = payload["benchmarks"]["hot_swap"]
    assert entry["params"]["cpu_count"] >= 1
    assert entry["params"]["workers"] == 2
    assert entry["swap_makespan_seconds"] > 0
    assert entry["swap_samples"] > 0
    for key in ("steady_p50_seconds", "steady_p99_seconds",
                "swap_p50_seconds", "swap_p99_seconds"):
        assert entry[key] > 0
    assert entry["steady_p99_seconds"] >= entry["steady_p50_seconds"]
    assert entry["swap_p99_seconds"] >= entry["swap_p50_seconds"]
    assert entry["reference_seconds"] == entry["swap_p99_seconds"]
    assert entry["fast_seconds"] == entry["steady_p99_seconds"]

"""Shared fixtures for the test suite.

All fixtures are deliberately tiny (8x8 images, a few dozen samples, a handful
of channels) so that the full suite — including the integration tests that
train complete ensembles — runs in seconds on a CPU-only numpy substrate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import ArchitectureSpec, mlp, resnet, vgg
from repro.data import cifar10_like, synthetic_tabular_classification


TINY_IMAGE_SHAPE = (3, 8, 8)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_image_dataset():
    """A small cifar10-like data set for convolutional integration tests."""
    return cifar10_like(train_samples=192, test_samples=96, image_shape=TINY_IMAGE_SHAPE, seed=0)


@pytest.fixture(scope="session")
def tiny_tabular_dataset():
    """A small tabular data set for fully-connected integration tests."""
    return synthetic_tabular_classification(
        train_samples=256,
        test_samples=128,
        num_classes=5,
        num_features=24,
        class_separation=2.5,
        noise_std=1.0,
        seed=0,
    )


@pytest.fixture
def tiny_vgg_spec() -> ArchitectureSpec:
    """A heavily scaled-down V13 used by model/morphism tests."""
    return vgg("V13", num_classes=10, input_shape=TINY_IMAGE_SHAPE, width_scale=0.05)


@pytest.fixture
def tiny_resnet_spec() -> ArchitectureSpec:
    """A heavily scaled-down ResNet-18 used by residual-path tests."""
    return resnet(18, num_classes=10, input_shape=TINY_IMAGE_SHAPE, width_scale=0.05)


@pytest.fixture
def small_mlp_spec() -> ArchitectureSpec:
    return mlp("mlp-test", input_features=24, hidden_units=[16, 12], num_classes=5)


@pytest.fixture
def conv_spec_small() -> ArchitectureSpec:
    """A two-block plain convolutional spec small enough for gradient checks."""
    return ArchitectureSpec.convolutional(
        name="tiny-conv",
        input_shape=(2, 6, 6),
        blocks=[["3:4", "3:4"], ["3:6"]],
        num_classes=3,
        use_batchnorm=True,
    )


@pytest.fixture
def residual_spec_small() -> ArchitectureSpec:
    """A two-block residual spec small enough for gradient checks."""
    return ArchitectureSpec.convolutional(
        name="tiny-res",
        input_shape=(2, 6, 6),
        blocks=[["3:4", "3:4"], ["3:6"]],
        num_classes=3,
        residual=True,
        use_batchnorm=True,
    )

"""Unit tests for the Dense layer."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from tests.gradcheck import check_layer_gradients


def test_forward_shape_and_value():
    layer = Dense(3, 2, seed=0)
    layer.params["W"] = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    layer.params["b"] = np.array([0.5, -0.5])
    x = np.array([[1.0, 2.0, 3.0]])
    out = layer.forward(x)
    np.testing.assert_allclose(out, [[1 + 3 + 0.5, 2 + 3 - 0.5]])


def test_forward_rejects_wrong_input_width():
    layer = Dense(4, 2, seed=0)
    with pytest.raises(ValueError, match="expected input of shape"):
        layer.forward(np.zeros((1, 3)))


def test_invalid_dimensions_raise():
    with pytest.raises(ValueError):
        Dense(0, 3)
    with pytest.raises(ValueError):
        Dense(3, -1)


def test_backward_requires_training_forward():
    layer = Dense(3, 2, seed=0)
    layer.forward(np.zeros((1, 3)), training=False)
    with pytest.raises(RuntimeError, match="backward called before"):
        layer.backward(np.zeros((1, 2)))


def test_gradients_match_finite_differences():
    rng = np.random.default_rng(0)
    layer = Dense(5, 4, seed=1)
    x = rng.normal(size=(6, 5))
    check_layer_gradients(layer, x)


def test_parameter_count():
    layer = Dense(7, 3, seed=0)
    assert layer.parameter_count() == 7 * 3 + 3


def test_deterministic_initialization_with_seed():
    a = Dense(4, 4, seed=11)
    b = Dense(4, 4, seed=11)
    np.testing.assert_array_equal(a.params["W"], b.params["W"])


def test_copy_weights_between_layers():
    a = Dense(4, 3, seed=1)
    b = Dense(4, 3, seed=2)
    b.copy_weights_from(a)
    np.testing.assert_array_equal(a.params["W"], b.params["W"])
    np.testing.assert_array_equal(a.params["b"], b.params["b"])


def test_copy_weights_shape_mismatch_raises():
    a = Dense(4, 3, seed=1)
    b = Dense(4, 5, seed=2)
    with pytest.raises(ValueError, match="Cannot copy weights"):
        b.copy_weights_from(a)


def test_get_set_weights_roundtrip():
    a = Dense(3, 3, seed=1)
    snapshot = a.get_weights()
    a.params["W"][:] = 0.0
    a.set_weights(snapshot)
    assert not np.all(a.params["W"] == 0.0)

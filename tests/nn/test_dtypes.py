"""Tests for the configurable compute dtype (float32 default, float64 opt-in)."""

import numpy as np
import pytest

from repro.nn import (
    Model,
    Trainer,
    TrainingConfig,
    default_dtype,
    get_default_dtype,
    resolve_dtype,
    set_default_dtype,
)
from repro.nn.layers import BatchNorm, Conv2D, Dense, ResidualUnit


def test_default_compute_dtype_is_float32():
    assert get_default_dtype() == np.float32


def test_resolve_dtype_accepts_aliases_and_rejects_others():
    assert resolve_dtype("float64") == np.float64
    assert resolve_dtype(np.float32) == np.float32
    assert resolve_dtype(None) == get_default_dtype()
    with pytest.raises(ValueError):
        resolve_dtype("float16")
    with pytest.raises(ValueError):
        resolve_dtype("int32")


def test_default_dtype_context_manager_restores():
    before = get_default_dtype()
    with default_dtype("float64") as resolved:
        assert resolved == np.float64
        assert get_default_dtype() == np.float64
        layer = Dense(4, 3, seed=0)
        assert layer.params["W"].dtype == np.float64
    assert get_default_dtype() == before


def test_set_default_dtype_round_trip():
    before = get_default_dtype()
    try:
        assert set_default_dtype("float64") == np.float64
        assert Dense(2, 2, seed=0).params["W"].dtype == np.float64
    finally:
        set_default_dtype(before)


@pytest.mark.parametrize("dtype", ["float32", "float64"])
def test_layers_honour_explicit_dtype(dtype):
    expected = np.dtype(dtype)
    conv = Conv2D(3, 4, 3, seed=0, dtype=dtype)
    dense = Dense(4, 2, seed=0, dtype=dtype)
    bn = BatchNorm(4, dtype=dtype)
    res = ResidualUnit(3, 3, seed=0, dtype=dtype)
    assert conv.params["W"].dtype == expected
    assert dense.params["W"].dtype == expected
    assert bn.params["gamma"].dtype == expected
    assert bn.state["running_var"].dtype == expected
    assert res.conv1.params["W"].dtype == expected
    assert res.projection.params["W"].dtype == expected


def test_model_threads_dtype_through_all_layers(tiny_vgg_spec):
    model = Model.from_spec(tiny_vgg_spec, seed=0, dtype="float64")
    assert model.dtype == np.float64
    for _, param, _ in model.iter_parameters():
        assert param.dtype == np.float64
    model32 = Model.from_spec(tiny_vgg_spec, seed=0)
    assert model32.dtype == np.float32
    for _, param, _ in model32.iter_parameters():
        assert param.dtype == np.float32


def test_forward_backward_stay_in_compute_dtype(tiny_vgg_spec):
    """No hidden float64 promotion anywhere in the training step: logits,
    loss gradient, and every parameter gradient keep float32."""
    from repro.nn.losses import SoftmaxCrossEntropy

    model = Model.from_spec(tiny_vgg_spec, seed=0)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(8, *tiny_vgg_spec.input_shape))
    y = rng.integers(0, tiny_vgg_spec.num_classes, size=8)
    logits = model.forward(x, training=True)
    assert logits.dtype == np.float32
    _, grad = SoftmaxCrossEntropy()(logits, y)
    assert grad.dtype == np.float32
    model.zero_grads()
    model.backward(grad)
    for _, param, g in model.iter_parameters():
        assert g.dtype == np.float32, param.shape


def test_forward_casts_input_once_and_passes_through_matching(small_mlp_spec):
    model = Model.from_spec(small_mlp_spec, seed=0)
    x64 = np.random.default_rng(0).normal(size=(5, model.spec.input_shape[0]))
    x32 = x64.astype(np.float32)
    np.testing.assert_array_equal(model.forward(x64), model.forward(x32))


def test_training_converges_at_float32(small_mlp_spec, tiny_tabular_dataset):
    model = Model.from_spec(small_mlp_spec, seed=0)
    config = TrainingConfig(max_epochs=5, batch_size=32, learning_rate=0.05)
    result = Trainer(config).fit(
        model, tiny_tabular_dataset.x_train, tiny_tabular_dataset.y_train, seed=0
    )
    assert result.history[-1].train_loss < result.history[0].train_loss


def test_model_copy_preserves_dtype(small_mlp_spec):
    model = Model.from_spec(small_mlp_spec, seed=0, dtype="float64")
    clone = model.copy()
    assert clone.dtype == np.float64
    for _, param, _ in clone.iter_parameters():
        assert param.dtype == np.float64


def test_serialization_round_trips_dtype(small_mlp_spec, tmp_path):
    from repro.nn import load_model, save_model

    for dtype in ("float32", "float64"):
        model = Model.from_spec(small_mlp_spec, seed=0, dtype=dtype)
        path = save_model(model, tmp_path / f"m_{dtype}.npz")
        loaded = load_model(path)
        assert loaded.dtype == np.dtype(dtype)
        x = np.random.default_rng(0).normal(size=(4, model.spec.input_shape[0]))
        np.testing.assert_array_equal(model.predict_logits(x), loaded.predict_logits(x))

"""Unit tests for the Model builder and its forward/backward/weight APIs."""

import numpy as np
import pytest

from repro.arch import ArchitectureSpec, count_parameters, mlp, resnet, vgg
from repro.nn import Model, SoftmaxCrossEntropy


def test_dense_model_shapes(small_mlp_spec):
    model = Model.from_spec(small_mlp_spec, seed=0)
    x = np.random.default_rng(0).normal(size=(7, 24))
    logits = model.forward(x)
    assert logits.shape == (7, 5)


def test_conv_model_shapes(tiny_vgg_spec):
    model = Model.from_spec(tiny_vgg_spec, seed=0)
    x = np.random.default_rng(0).normal(size=(3, *tiny_vgg_spec.input_shape))
    assert model.forward(x).shape == (3, 10)


def test_residual_model_shapes(tiny_resnet_spec):
    model = Model.from_spec(tiny_resnet_spec, seed=0)
    x = np.random.default_rng(0).normal(size=(2, *tiny_resnet_spec.input_shape))
    assert model.forward(x).shape == (2, 10)


@pytest.mark.parametrize("factory", [
    lambda: mlp("m", 16, [8, 8], 4),
    lambda: vgg("V13", input_shape=(3, 8, 8), width_scale=0.05),
    lambda: vgg("V16", input_shape=(3, 8, 8), width_scale=0.05),
    lambda: resnet(18, input_shape=(3, 8, 8), width_scale=0.05),
])
def test_model_parameter_count_matches_spec_count(factory):
    spec = factory()
    model = Model.from_spec(spec, seed=0)
    assert model.parameter_count() == count_parameters(spec)


def test_pooling_stops_when_spatial_size_is_odd_or_one():
    # 8x8 input with 5 blocks: only the first three blocks can pool (8->4->2->1).
    spec = vgg("V13", input_shape=(3, 8, 8), width_scale=0.05)
    model = Model.from_spec(spec, seed=0)
    pools = [block.pool is not None for block in model.conv_blocks]
    assert pools == [True, True, True, False, False]


def test_same_seed_gives_identical_models(tiny_vgg_spec):
    a = Model.from_spec(tiny_vgg_spec, seed=7)
    b = Model.from_spec(tiny_vgg_spec, seed=7)
    x = np.random.default_rng(0).normal(size=(2, *tiny_vgg_spec.input_shape))
    np.testing.assert_array_equal(a.forward(x), b.forward(x))


def test_different_seeds_give_different_models(tiny_vgg_spec):
    a = Model.from_spec(tiny_vgg_spec, seed=1)
    b = Model.from_spec(tiny_vgg_spec, seed=2)
    x = np.random.default_rng(0).normal(size=(2, *tiny_vgg_spec.input_shape))
    assert not np.allclose(a.forward(x), b.forward(x))


def test_predict_proba_rows_sum_to_one(small_mlp_spec):
    model = Model.from_spec(small_mlp_spec, seed=0)
    x = np.random.default_rng(1).normal(size=(9, 24))
    probs = model.predict_proba(x)
    # float32 softmax rows sum to one up to a few ulps.
    np.testing.assert_allclose(probs.sum(axis=1), np.ones(9), atol=1e-6)


def test_predict_returns_argmax(small_mlp_spec):
    model = Model.from_spec(small_mlp_spec, seed=0)
    x = np.random.default_rng(2).normal(size=(5, 24))
    np.testing.assert_array_equal(model.predict(x), model.predict_logits(x).argmax(axis=1))


def test_batched_prediction_matches_full_batch(small_mlp_spec):
    model = Model.from_spec(small_mlp_spec, seed=0)
    x = np.random.default_rng(3).normal(size=(23, 24))
    np.testing.assert_allclose(
        model.predict_logits(x), model.predict_logits(x, batch_size=5), atol=1e-12
    )


def test_get_set_weights_roundtrip(tiny_vgg_spec):
    model = Model.from_spec(tiny_vgg_spec, seed=0)
    x = np.random.default_rng(4).normal(size=(2, *tiny_vgg_spec.input_shape))
    reference = model.forward(x)
    snapshot = model.get_weights()

    other = Model.from_spec(tiny_vgg_spec, seed=99)
    assert not np.allclose(other.forward(x), reference)
    other.set_weights(snapshot)
    np.testing.assert_allclose(other.forward(x), reference, atol=1e-12)


def test_set_weights_unknown_layer_raises(small_mlp_spec):
    model = Model.from_spec(small_mlp_spec, seed=0)
    with pytest.raises(KeyError):
        model.set_weights({"nonexistent": {}})


def test_copy_is_independent(small_mlp_spec):
    model = Model.from_spec(small_mlp_spec, seed=0)
    clone = model.copy()
    x = np.random.default_rng(5).normal(size=(4, 24))
    np.testing.assert_allclose(model.forward(x), clone.forward(x))
    clone.classifier.params["W"][:] = 0.0
    assert not np.allclose(model.forward(x), clone.forward(x))


def test_training_step_reduces_loss(small_mlp_spec):
    """A few manual SGD steps on one batch must reduce the loss."""
    rng = np.random.default_rng(6)
    model = Model.from_spec(small_mlp_spec, seed=0)
    x = rng.normal(size=(32, 24))
    y = rng.integers(0, 5, size=32)
    loss_fn = SoftmaxCrossEntropy()

    def loss_value():
        return loss_fn.forward(model.forward(x), y)

    initial = loss_value()
    for _ in range(20):
        logits = model.forward(x, training=True)
        grad = loss_fn.backward(logits, y)
        model.zero_grads()
        model.backward(grad)
        for _, param, param_grad in model.iter_parameters():
            param -= 0.5 * param_grad
    assert loss_value() < initial


def test_dropout_spec_included_between_head_and_classifier():
    spec = ArchitectureSpec.dense("d", 10, [8], 4, dropout_rate=0.5)
    model = Model.from_spec(spec, seed=0)
    assert model.dropout is not None
    x = np.random.default_rng(7).normal(size=(6, 10))
    # Inference must be deterministic even with dropout configured.
    np.testing.assert_array_equal(model.forward(x), model.forward(x))

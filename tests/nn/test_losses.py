"""Unit tests for loss functions."""

import numpy as np
import pytest

from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy, get_loss
from repro.nn.layers.activations import softmax
from tests.gradcheck import numerical_gradient


def test_cross_entropy_of_perfect_prediction_is_small():
    loss = SoftmaxCrossEntropy()
    logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
    targets = np.array([0, 1])
    assert loss.forward(logits, targets) < 1e-6


def test_cross_entropy_of_uniform_prediction():
    loss = SoftmaxCrossEntropy()
    logits = np.zeros((4, 10))
    targets = np.array([0, 3, 5, 9])
    assert loss.forward(logits, targets) == pytest.approx(np.log(10), rel=1e-6)


def test_cross_entropy_accepts_onehot_targets():
    loss = SoftmaxCrossEntropy()
    logits = np.random.default_rng(0).normal(size=(5, 3))
    labels = np.array([0, 1, 2, 1, 0])
    onehot = np.eye(3)[labels]
    assert loss.forward(logits, labels) == pytest.approx(loss.forward(logits, onehot))


def test_cross_entropy_rejects_wrong_onehot_width():
    loss = SoftmaxCrossEntropy()
    with pytest.raises(ValueError, match="columns"):
        loss.forward(np.zeros((2, 3)), np.zeros((2, 4)))


def test_cross_entropy_gradient_is_softmax_minus_onehot():
    loss = SoftmaxCrossEntropy()
    logits = np.random.default_rng(1).normal(size=(6, 4))
    targets = np.array([0, 1, 2, 3, 0, 1])
    grad = loss.backward(logits, targets)
    onehot = np.eye(4)[targets]
    np.testing.assert_allclose(grad, (softmax(logits) - onehot) / 6)


def test_cross_entropy_gradient_matches_finite_differences():
    loss = SoftmaxCrossEntropy()
    rng = np.random.default_rng(2)
    logits = rng.normal(size=(3, 5))
    targets = np.array([1, 4, 0])
    analytic = loss.backward(logits, targets)
    numeric = numerical_gradient(lambda: loss.forward(logits, targets), logits)
    np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-7)


def test_label_smoothing_increases_loss_of_confident_predictions():
    logits = np.array([[20.0, -20.0]])
    targets = np.array([0])
    plain = SoftmaxCrossEntropy().forward(logits, targets)
    smoothed = SoftmaxCrossEntropy(label_smoothing=0.1).forward(logits, targets)
    assert smoothed > plain


def test_label_smoothing_validation():
    with pytest.raises(ValueError):
        SoftmaxCrossEntropy(label_smoothing=1.0)


def test_mse_forward_and_backward():
    loss = MeanSquaredError()
    predictions = np.array([[1.0, 2.0]])
    targets = np.array([[0.0, 0.0]])
    assert loss.forward(predictions, targets) == pytest.approx(2.5)
    np.testing.assert_allclose(loss.backward(predictions, targets), [[1.0, 2.0]])


def test_mse_gradient_matches_finite_differences():
    loss = MeanSquaredError()
    rng = np.random.default_rng(3)
    predictions = rng.normal(size=(4, 3))
    targets = rng.normal(size=(4, 3))
    analytic = loss.backward(predictions, targets)
    numeric = numerical_gradient(lambda: loss.forward(predictions, targets), predictions)
    np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-8)


def test_get_loss_by_name_and_instance():
    assert isinstance(get_loss("cross_entropy"), SoftmaxCrossEntropy)
    assert isinstance(get_loss("mse"), MeanSquaredError)
    instance = SoftmaxCrossEntropy()
    assert get_loss(instance) is instance


def test_get_loss_unknown_name():
    with pytest.raises(ValueError, match="Unknown loss"):
        get_loss("hinge")

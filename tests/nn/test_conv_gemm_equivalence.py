"""Numerical-equivalence tests for the GEMM conv engine.

The BLAS hot path (float32 GEMM with workspace reuse) must compute the same
convolution as the float64 einsum reference, forward and backward, within
float32 tolerance — and exactly when both run at float64.
"""

import numpy as np
import pytest

from repro.nn.layers import Conv2D, col2im, im2col
from tests.gradcheck import check_layer_gradients


def _paired_convs(in_c, out_c, k, stride=1, padding="same", use_bias=True):
    """A float32 GEMM conv and a float64 einsum conv with identical weights."""
    fast = Conv2D(
        in_c, out_c, k, stride=stride, padding=padding, use_bias=use_bias,
        seed=7, dtype="float32", engine="gemm",
    )
    ref = Conv2D(
        in_c, out_c, k, stride=stride, padding=padding, use_bias=use_bias,
        seed=7, dtype="float64", engine="einsum",
    )
    for key, value in fast.params.items():
        ref.params[key] = value.astype(np.float64)
    return fast, ref


@pytest.mark.parametrize(
    "in_c,out_c,k,stride,padding",
    [
        (3, 8, 3, 1, "same"),
        (4, 4, 1, 1, 0),
        (2, 6, 5, 1, "same"),
        (3, 5, 3, 2, 1),
    ],
)
def test_gemm_forward_matches_einsum_reference(in_c, out_c, k, stride, padding):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(4, in_c, 9, 9))
    fast, ref = _paired_convs(in_c, out_c, k, stride=stride, padding=padding)
    out_fast = fast.forward(x.astype(np.float32), training=False)
    out_ref = ref.forward(x, training=False)
    assert out_fast.dtype == np.float32
    np.testing.assert_allclose(out_fast, out_ref, rtol=1e-4, atol=1e-5)


@pytest.mark.parametrize("use_bias", [True, False])
def test_gemm_backward_matches_einsum_reference(use_bias):
    rng = np.random.default_rng(1)
    x = rng.normal(size=(3, 3, 8, 8))
    fast, ref = _paired_convs(3, 6, 3, use_bias=use_bias)
    out_fast = fast.forward(x.astype(np.float32), training=True)
    out_ref = ref.forward(x, training=True)
    grad = rng.normal(size=out_ref.shape)
    gx_fast = fast.backward(grad.astype(np.float32))
    gx_ref = ref.backward(grad)
    np.testing.assert_allclose(gx_fast, gx_ref, rtol=1e-3, atol=1e-4)
    np.testing.assert_allclose(
        fast.grads["W"], ref.grads["W"], rtol=1e-3, atol=1e-4
    )
    if use_bias:
        np.testing.assert_allclose(
            fast.grads["b"], ref.grads["b"], rtol=1e-3, atol=1e-4
        )


def test_gemm_and_einsum_identical_at_float64():
    """At the same dtype the two engines are the same linear algebra; they
    agree to float64 round-off, not merely float32 tolerance."""
    rng = np.random.default_rng(2)
    x = rng.normal(size=(2, 3, 7, 7))
    gemm = Conv2D(3, 4, 3, seed=3, dtype="float64", engine="gemm")
    eins = Conv2D(3, 4, 3, seed=3, dtype="float64", engine="einsum")
    for key, value in gemm.params.items():
        eins.params[key] = value.copy()
    out_g = gemm.forward(x, training=True)
    out_e = eins.forward(x, training=True)
    np.testing.assert_allclose(out_g, out_e, rtol=1e-13, atol=1e-13)
    grad = rng.normal(size=out_g.shape)
    gx_g = gemm.backward(grad)
    gx_e = eins.backward(grad.copy())
    np.testing.assert_allclose(gx_g, gx_e, rtol=1e-12, atol=1e-13)
    np.testing.assert_allclose(gemm.grads["W"], eins.grads["W"], rtol=1e-12, atol=1e-13)


def test_gemm_engine_gradcheck():
    """The GEMM backward pass survives finite-difference gradient checking
    (gradcheck promotes the layer to float64 internally)."""
    rng = np.random.default_rng(4)
    layer = Conv2D(2, 3, 3, seed=5, engine="gemm")
    x = rng.normal(size=(2, 2, 6, 6))
    check_layer_gradients(layer, x)


def test_strided_gemm_engine_gradcheck():
    rng = np.random.default_rng(5)
    layer = Conv2D(2, 3, 3, stride=2, padding=1, seed=6, engine="gemm")
    x = rng.normal(size=(2, 2, 7, 7))
    check_layer_gradients(layer, x)


def test_workspace_is_reused_across_same_shape_batches():
    rng = np.random.default_rng(6)
    conv = Conv2D(3, 4, 3, seed=0, engine="gemm")
    x1 = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
    x2 = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
    conv.forward(x1, training=True)
    cols_first = conv._cache[1]
    conv.forward(x2, training=True)
    cols_second = conv._cache[1]
    assert cols_first is cols_second  # same buffer, refreshed contents
    # A different batch size reallocates rather than corrupting shapes.
    x3 = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
    out = conv.forward(x3, training=False)
    assert out.shape == (2, 4, 8, 8)


def test_workspace_padding_border_stays_zero():
    """The padded workspace's zero border must survive buffer reuse; a stale
    border would leak a previous batch into the convolution edges."""
    conv = Conv2D(1, 1, 3, seed=0, engine="gemm", dtype="float64")
    conv.params["W"] = np.ones_like(conv.params["W"])
    conv.params["b"] = np.zeros_like(conv.params["b"])
    ones = np.ones((1, 1, 4, 4))
    first = conv.forward(ones, training=False)
    second = conv.forward(ones, training=False)
    np.testing.assert_array_equal(first, second)
    # Corner output = sum over the 2x2 valid window = 4 exactly.
    assert second[0, 0, 0, 0] == 4.0


def test_forward_output_does_not_alias_workspace():
    """Outputs must stay valid after later forward calls (no aliasing of the
    returned tensor with reused scratch)."""
    rng = np.random.default_rng(7)
    conv = Conv2D(2, 3, 3, seed=1, engine="gemm")
    x1 = rng.normal(size=(2, 2, 6, 6)).astype(np.float32)
    out1 = conv.forward(x1, training=False)
    snapshot = out1.copy()
    conv.forward(rng.normal(size=(2, 2, 6, 6)).astype(np.float32), training=False)
    np.testing.assert_array_equal(out1, snapshot)


def test_backward_raises_on_stale_workspace_cache():
    """An intervening forward overwrites the cached arena columns; backward
    must fail loudly instead of computing gradients from the wrong batch."""
    rng = np.random.default_rng(10)
    conv = Conv2D(2, 3, 3, seed=0, engine="gemm")
    x = rng.normal(size=(2, 2, 6, 6)).astype(np.float32)
    out = conv.forward(x, training=True)
    conv.forward(x, training=False)  # e.g. mid-step metrics pass clears the cache
    with pytest.raises(RuntimeError):
        conv.backward(np.ones_like(out))
    # Defense in depth: even a manually retained stale cache trips the
    # generation guard rather than reading refreshed workspace columns.
    out = conv.forward(x, training=True)
    stale = conv._cache
    conv.forward(x, training=False)
    conv._cache = stale
    with pytest.raises(RuntimeError, match="intervening forward"):
        conv.backward(np.ones_like(out))
    # The normal forward-then-backward sequence still works.
    out = conv.forward(x, training=True)
    conv.backward(np.ones_like(out))


def test_clear_workspaces_frees_and_rebuilds():
    rng = np.random.default_rng(11)
    conv = Conv2D(2, 3, 3, seed=0, engine="gemm")
    x = rng.normal(size=(2, 2, 6, 6)).astype(np.float32)
    out = conv.forward(x, training=True)
    conv.backward(np.ones_like(out))
    assert conv._arena.nbytes > 0
    conv.clear_workspaces()
    assert conv._arena.nbytes == 0
    reference = Conv2D(2, 3, 3, seed=0, engine="gemm")
    np.testing.assert_array_equal(conv.forward(x, training=False), reference.forward(x))


def test_trainer_releases_training_workspaces(tiny_vgg_spec):
    from repro.nn import Model, Trainer, TrainingConfig

    model = Model.from_spec(tiny_vgg_spec, seed=0)
    rng = np.random.default_rng(12)
    x = rng.normal(size=(32, *tiny_vgg_spec.input_shape))
    y = rng.integers(0, tiny_vgg_spec.num_classes, size=32)
    Trainer(TrainingConfig(max_epochs=1, batch_size=16)).fit(model, x, y, seed=0)
    convs = [l for l in model._sequence() if isinstance(l, Conv2D)]
    assert convs and all(conv._arena.nbytes == 0 for conv in convs)


def test_alternating_batch_shapes_keep_both_buffers():
    """Full batch / trailing partial batch must not evict each other's
    workspaces (the common uneven-epoch pattern)."""
    rng = np.random.default_rng(13)
    conv = Conv2D(2, 3, 3, seed=0, engine="gemm")
    x_full = rng.normal(size=(4, 2, 6, 6)).astype(np.float32)
    x_tail = rng.normal(size=(3, 2, 6, 6)).astype(np.float32)
    conv.forward(x_full, training=True)
    cols_full = conv._cache[1]
    conv.forward(x_tail, training=True)
    cols_tail = conv._cache[1]
    conv.forward(x_full, training=True)
    assert conv._cache[1] is cols_full
    conv.forward(x_tail, training=True)
    assert conv._cache[1] is cols_tail


def test_im2col_inference_skips_redundant_copy():
    """im2col(copy=False) may alias the input only in view-compatible layouts;
    either way the values match the copying path."""
    rng = np.random.default_rng(8)
    x = rng.normal(size=(2, 3, 5, 5))
    a = im2col(x, (3, 3), 1, 1, copy=True)
    b = im2col(x, (3, 3), 1, 1, copy=False)
    np.testing.assert_array_equal(a, b)
    a.fill(0.0)  # the copying path must be writable without touching x
    assert np.any(b != 0.0)


def test_im2col_col2im_roundtrip_with_workspaces():
    rng = np.random.default_rng(9)
    x = rng.normal(size=(2, 3, 6, 6))
    cols_out = np.empty((2, 3 * 9, 36))
    cols = im2col(np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1))), (3, 3), 1, 0, out=cols_out)
    assert cols is cols_out
    reference = im2col(x, (3, 3), 1, 1)
    np.testing.assert_array_equal(cols, reference)
    scatter = np.empty((2, 3, 8, 8))
    grad = col2im(cols, x.shape, (3, 3), 1, 1, out=scatter)
    grad_ref = col2im(reference, x.shape, (3, 3), 1, 1)
    np.testing.assert_array_equal(grad, grad_ref)

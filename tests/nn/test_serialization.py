"""Unit tests for spec and model serialization."""

import numpy as np
import pytest

from repro.arch import mlp, resnet, vgg
from repro.arch.serialization import spec_from_dict, spec_from_json, spec_to_dict, spec_to_json
from repro.nn import Model, Trainer, TrainingConfig
from repro.nn.serialization import load_model, save_model


# ---------------------------------------------------------------------------
# Spec serialization
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "spec_factory",
    [
        lambda: mlp("m", 16, [8, 12], 4),
        lambda: vgg("V16", input_shape=(3, 8, 8), width_scale=0.05),
        lambda: resnet(18, input_shape=(3, 8, 8), width_scale=0.05),
    ],
)
def test_spec_dict_roundtrip(spec_factory):
    spec = spec_factory()
    assert spec_from_dict(spec_to_dict(spec)) == spec


def test_spec_json_roundtrip_preserves_structure():
    spec = vgg("V16A", input_shape=(3, 16, 16), width_scale=0.1)
    restored = spec_from_json(spec_to_json(spec))
    assert restored.conv_blocks == spec.conv_blocks
    assert restored.name == spec.name


def test_spec_dict_is_json_compatible():
    import json

    spec = resnet(34, input_shape=(3, 8, 8), width_scale=0.05)
    json.dumps(spec_to_dict(spec))  # must not raise


def test_spec_from_dict_rejects_unknown_version():
    data = spec_to_dict(mlp("m", 8, [4], 2))
    data["format_version"] = 99
    with pytest.raises(ValueError, match="format version"):
        spec_from_dict(data)


# ---------------------------------------------------------------------------
# Model serialization
# ---------------------------------------------------------------------------


def test_model_roundtrip_preserves_function(tmp_path, tiny_vgg_spec):
    model = Model.from_spec(tiny_vgg_spec, seed=3)
    path = save_model(model, tmp_path / "model.npz")
    restored = load_model(path)
    x = np.random.default_rng(0).normal(size=(4, *tiny_vgg_spec.input_shape))
    np.testing.assert_allclose(restored.predict_logits(x), model.predict_logits(x), atol=1e-12)
    assert restored.spec == model.spec


def test_trained_model_roundtrip_includes_batchnorm_state(tmp_path, tiny_tabular_dataset):
    ds = tiny_tabular_dataset
    spec = mlp("m", ds.input_shape[0], [16], ds.num_classes, use_batchnorm=True)
    model = Model.from_spec(spec, seed=0)
    Trainer(TrainingConfig(max_epochs=2, batch_size=64, learning_rate=0.05)).fit(
        model, ds.x_train, ds.y_train, seed=0
    )
    restored = load_model(save_model(model, tmp_path / "trained"))
    np.testing.assert_allclose(
        restored.predict_proba(ds.x_test), model.predict_proba(ds.x_test), atol=1e-12
    )


def test_save_appends_npz_suffix(tmp_path, small_mlp_spec):
    model = Model.from_spec(small_mlp_spec, seed=0)
    path = save_model(model, tmp_path / "checkpoint")
    assert path.suffix == ".npz"
    assert path.exists()


def test_load_rejects_foreign_npz(tmp_path):
    foreign = tmp_path / "foreign.npz"
    np.savez(foreign, array=np.zeros(3))
    with pytest.raises(ValueError, match="missing spec"):
        load_model(foreign)


def test_saved_mothernet_can_hatch_members(tmp_path):
    """The intended workflow: checkpoint a trained MotherNet, reload it later,
    and hatch additional members without retraining."""
    from repro.arch import small_vgg_ensemble
    from repro.core import construct_mothernet, hatch, verify_function_preservation

    members = small_vgg_ensemble(input_shape=(3, 8, 8), width_scale=0.05)
    mothernet = construct_mothernet(members)
    parent = Model.from_spec(mothernet, seed=1)
    reloaded = load_model(save_model(parent, tmp_path / "mothernet"))
    child = hatch(reloaded, members[2], seed=0)
    verify_function_preservation(parent, child, num_samples=3, atol=1e-8)

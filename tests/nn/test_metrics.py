"""Unit tests for classification metrics."""

import numpy as np
import pytest

from repro.nn.metrics import accuracy, confusion_matrix, error_rate, top_k_accuracy


def test_accuracy_with_label_vectors():
    assert accuracy(np.array([0, 1, 2, 2]), np.array([0, 1, 2, 0])) == pytest.approx(0.75)


def test_accuracy_with_probability_matrix():
    probs = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
    targets = np.array([0, 1, 1])
    assert accuracy(probs, targets) == pytest.approx(2 / 3)


def test_accuracy_empty_batch_raises():
    with pytest.raises(ValueError):
        accuracy(np.array([]), np.array([]))


def test_accuracy_shape_mismatch_raises():
    with pytest.raises(ValueError):
        accuracy(np.array([0, 1]), np.array([0, 1, 2]))


def test_error_rate_is_percent():
    predictions = np.array([0, 0, 0, 0])
    targets = np.array([0, 0, 1, 1])
    assert error_rate(predictions, targets) == pytest.approx(50.0)


def test_perfect_predictions_have_zero_error():
    predictions = np.array([1, 2, 3])
    assert error_rate(predictions, predictions.copy()) == 0.0


def test_top_k_accuracy():
    probs = np.array(
        [
            [0.1, 0.5, 0.4],
            [0.3, 0.4, 0.3],
            [0.8, 0.1, 0.1],
        ]
    )
    targets = np.array([2, 0, 2])
    assert top_k_accuracy(probs, targets, k=1) == pytest.approx(0.0)
    assert top_k_accuracy(probs, targets, k=2) == pytest.approx(2 / 3)
    assert top_k_accuracy(probs, targets, k=3) == pytest.approx(1.0)


def test_top_k_requires_matrix():
    with pytest.raises(ValueError):
        top_k_accuracy(np.array([0.5, 0.5]), np.array([0]))


def test_top_k_clamps_k_to_num_classes():
    probs = np.array([[0.6, 0.4]])
    assert top_k_accuracy(probs, np.array([1]), k=10) == pytest.approx(1.0)


def test_confusion_matrix_counts():
    predictions = np.array([0, 1, 1, 2, 2, 2])
    targets = np.array([0, 1, 2, 2, 2, 0])
    matrix = confusion_matrix(predictions, targets, num_classes=3)
    assert matrix[0, 0] == 1  # true 0 predicted 0
    assert matrix[2, 1] == 1  # true 2 predicted 1
    assert matrix[2, 2] == 2
    assert matrix.sum() == 6


def test_confusion_matrix_diagonal_equals_accuracy():
    rng = np.random.default_rng(0)
    targets = rng.integers(0, 4, size=100)
    predictions = rng.integers(0, 4, size=100)
    matrix = confusion_matrix(predictions, targets, num_classes=4)
    assert np.trace(matrix) / 100 == pytest.approx(accuracy(predictions, targets))

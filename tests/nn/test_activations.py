"""Unit tests for activation layers and the softmax helper."""

import numpy as np
import pytest

from repro.nn.layers import ReLU, Softmax, softmax
from repro.nn.layers.activations import LeakyReLU
from tests.gradcheck import check_layer_gradients


def test_relu_forward_clamps_negatives():
    layer = ReLU()
    x = np.array([[-1.0, 0.0, 2.0]])
    np.testing.assert_array_equal(layer.forward(x), [[0.0, 0.0, 2.0]])


def test_relu_backward_masks_gradient():
    layer = ReLU()
    x = np.array([[-1.0, 0.5, 2.0]])
    layer.forward(x, training=True)
    grad = layer.backward(np.ones_like(x))
    np.testing.assert_array_equal(grad, [[0.0, 1.0, 1.0]])


def test_relu_gradcheck():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(4, 6)) + 0.01  # avoid the kink at exactly zero
    check_layer_gradients(ReLU(), x)


def test_relu_backward_requires_training_forward():
    layer = ReLU()
    layer.forward(np.ones((1, 2)), training=False)
    with pytest.raises(RuntimeError):
        layer.backward(np.ones((1, 2)))


def test_leaky_relu_forward_and_backward():
    layer = LeakyReLU(negative_slope=0.1)
    x = np.array([[-2.0, 3.0]])
    np.testing.assert_allclose(layer.forward(x, training=True), [[-0.2, 3.0]])
    grad = layer.backward(np.array([[1.0, 1.0]]))
    np.testing.assert_allclose(grad, [[0.1, 1.0]])


def test_softmax_rows_sum_to_one():
    logits = np.random.default_rng(0).normal(size=(5, 7))
    probs = softmax(logits)
    np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))
    assert np.all(probs > 0)


def test_softmax_is_shift_invariant():
    logits = np.array([[1.0, 2.0, 3.0]])
    np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))


def test_softmax_handles_large_logits_without_overflow():
    logits = np.array([[1000.0, 0.0, -1000.0]])
    probs = softmax(logits)
    assert np.isfinite(probs).all()
    assert probs[0, 0] == pytest.approx(1.0)


def test_softmax_layer_gradcheck():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(3, 4))
    check_layer_gradients(Softmax(), x)


def test_softmax_layer_forward_matches_helper():
    x = np.random.default_rng(2).normal(size=(2, 5))
    np.testing.assert_allclose(Softmax().forward(x), softmax(x))

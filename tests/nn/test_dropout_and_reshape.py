"""Unit tests for Dropout and Flatten layers."""

import numpy as np
import pytest

from repro.nn.layers import Dropout, Flatten


def test_dropout_is_identity_at_inference():
    layer = Dropout(0.5, seed=0)
    x = np.random.default_rng(0).normal(size=(10, 10))
    np.testing.assert_array_equal(layer.forward(x, training=False), x)


def test_dropout_zero_rate_is_identity_in_training():
    layer = Dropout(0.0, seed=0)
    x = np.ones((5, 5))
    np.testing.assert_array_equal(layer.forward(x, training=True), x)


def test_dropout_preserves_expected_activation_scale():
    layer = Dropout(0.5, seed=1)
    x = np.ones((200, 200))
    out = layer.forward(x, training=True)
    assert out.mean() == pytest.approx(1.0, abs=0.05)


def test_dropout_zeroes_approximately_rate_fraction():
    layer = Dropout(0.3, seed=2)
    out = layer.forward(np.ones((100, 100)), training=True)
    zero_fraction = float((out == 0).mean())
    assert zero_fraction == pytest.approx(0.3, abs=0.03)


def test_dropout_backward_uses_same_mask():
    layer = Dropout(0.5, seed=3)
    x = np.ones((50, 50))
    out = layer.forward(x, training=True)
    grad = layer.backward(np.ones_like(x))
    np.testing.assert_array_equal(grad == 0, out == 0)


def test_dropout_invalid_rate():
    with pytest.raises(ValueError):
        Dropout(1.0)
    with pytest.raises(ValueError):
        Dropout(-0.1)


def test_flatten_forward_shape():
    layer = Flatten()
    out = layer.forward(np.zeros((4, 3, 2, 2)))
    assert out.shape == (4, 12)


def test_flatten_backward_restores_shape():
    layer = Flatten()
    x = np.random.default_rng(0).normal(size=(4, 3, 2, 2))
    layer.forward(x, training=True)
    grad = layer.backward(np.ones((4, 12)))
    assert grad.shape == x.shape


def test_flatten_roundtrip_preserves_values():
    layer = Flatten()
    x = np.random.default_rng(1).normal(size=(2, 3, 4))
    out = layer.forward(x, training=True)
    back = layer.backward(out)
    np.testing.assert_array_equal(back, x)

"""Unit tests for BatchNorm (dense and convolutional activations)."""

import numpy as np
import pytest

from repro.nn.layers import BatchNorm
from tests.gradcheck import check_layer_gradients


def test_training_forward_normalises_batch():
    layer = BatchNorm(3)
    x = np.random.default_rng(0).normal(loc=5.0, scale=2.0, size=(64, 3))
    out = layer.forward(x, training=True)
    np.testing.assert_allclose(out.mean(axis=0), np.zeros(3), atol=1e-7)
    np.testing.assert_allclose(out.std(axis=0), np.ones(3), atol=1e-3)


def test_conv_input_normalised_per_channel():
    layer = BatchNorm(4)
    x = np.random.default_rng(1).normal(loc=-3.0, scale=0.5, size=(8, 4, 5, 5))
    out = layer.forward(x, training=True)
    np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(4), atol=1e-7)


def test_running_statistics_converge_to_data_statistics():
    layer = BatchNorm(2, momentum=0.5)
    rng = np.random.default_rng(2)
    for _ in range(50):
        layer.forward(rng.normal(loc=2.0, scale=3.0, size=(128, 2)), training=True)
    np.testing.assert_allclose(layer.state["running_mean"], [2.0, 2.0], atol=0.3)
    np.testing.assert_allclose(layer.state["running_var"], [9.0, 9.0], rtol=0.2)


def test_inference_uses_running_statistics():
    layer = BatchNorm(2)
    layer.state["running_mean"] = np.array([1.0, -1.0])
    layer.state["running_var"] = np.array([4.0, 4.0])
    x = np.array([[3.0, 1.0]])
    out = layer.forward(x, training=False)
    expected = (x - [1.0, -1.0]) / np.sqrt(4.0 + layer.eps)
    np.testing.assert_allclose(out, expected)


def test_set_identity_makes_inference_exact_identity():
    layer = BatchNorm(5)
    layer.set_identity()
    x = np.random.default_rng(3).normal(size=(7, 5))
    np.testing.assert_allclose(layer.forward(x, training=False), x, atol=1e-12)


def test_set_identity_is_exact_for_conv_activations():
    layer = BatchNorm(3)
    layer.set_identity()
    x = np.random.default_rng(4).normal(size=(2, 3, 4, 4))
    np.testing.assert_allclose(layer.forward(x, training=False), x, atol=1e-12)


def test_rejects_wrong_feature_count():
    layer = BatchNorm(3)
    with pytest.raises(ValueError, match="expected"):
        layer.forward(np.zeros((4, 5)), training=True)


def test_invalid_num_features():
    with pytest.raises(ValueError):
        BatchNorm(0)


def test_gradcheck_dense_input():
    rng = np.random.default_rng(5)
    layer = BatchNorm(3)
    # Non-trivial gamma/beta so their gradients are exercised.
    layer.params["gamma"] = rng.uniform(0.5, 1.5, size=3)
    layer.params["beta"] = rng.normal(size=3)
    x = rng.normal(size=(6, 3))
    check_layer_gradients(layer, x, rtol=1e-3, atol=1e-5)


def test_gradcheck_conv_input():
    rng = np.random.default_rng(6)
    layer = BatchNorm(2)
    x = rng.normal(size=(3, 2, 3, 3))
    check_layer_gradients(layer, x, rtol=1e-3, atol=1e-5)


def test_parameter_count_excludes_running_statistics():
    layer = BatchNorm(8)
    assert layer.parameter_count() == 16

"""Unit tests for optimizers and learning-rate schedules."""

import numpy as np
import pytest

from repro.nn.optimizers import (
    Adam,
    ConstantSchedule,
    CosineSchedule,
    SGD,
    StepDecaySchedule,
    get_optimizer,
)


def _quadratic_params(start=5.0):
    """A single scalar parameter minimising f(w) = w^2."""
    return np.array([start], dtype=np.float64)


def _step(optimizer, param):
    grad = 2 * param  # d/dw w^2
    optimizer.step([("w", param, grad)])


def test_sgd_decreases_quadratic_objective():
    param = _quadratic_params()
    optimizer = SGD(learning_rate=0.1)
    for _ in range(50):
        _step(optimizer, param)
    assert abs(param[0]) < 1e-3


def test_sgd_momentum_converges_faster_than_plain():
    plain, momentum = _quadratic_params(), _quadratic_params()
    sgd_plain = SGD(learning_rate=0.02)
    sgd_momentum = SGD(learning_rate=0.02, momentum=0.9)
    for _ in range(30):
        _step(sgd_plain, plain)
        _step(sgd_momentum, momentum)
    assert abs(momentum[0]) < abs(plain[0])


def test_sgd_nesterov_converges():
    param = _quadratic_params()
    optimizer = SGD(learning_rate=0.05, momentum=0.9, nesterov=True)
    for _ in range(100):
        _step(optimizer, param)
    assert abs(param[0]) < 1e-2


def test_weight_decay_shrinks_matrix_parameters():
    optimizer = SGD(learning_rate=0.1, weight_decay=0.5)
    param = np.ones((2, 2))
    optimizer.step([("w", param, np.zeros_like(param))])
    assert np.all(param < 1.0)


def test_weight_decay_skips_vectors():
    """Bias/BatchNorm vectors are conventionally excluded from weight decay."""
    optimizer = SGD(learning_rate=0.1, weight_decay=0.5)
    param = np.ones(3)
    optimizer.step([("b", param, np.zeros_like(param))])
    np.testing.assert_array_equal(param, np.ones(3))


def test_adam_converges_on_quadratic():
    param = _quadratic_params()
    optimizer = Adam(learning_rate=0.2)
    for _ in range(200):
        _step(optimizer, param)
    assert abs(param[0]) < 1e-2


def test_optimizer_state_is_keyed_by_parameter_name():
    optimizer = SGD(learning_rate=0.1, momentum=0.9)
    a, b = np.array([1.0]), np.array([1.0])
    optimizer.step([("a", a, np.array([1.0])), ("b", b, np.array([2.0]))])
    assert set(optimizer.state) == {"a", "b"}


def test_invalid_hyperparameters_raise():
    with pytest.raises(ValueError):
        SGD(learning_rate=0.0)
    with pytest.raises(ValueError):
        SGD(learning_rate=0.1, momentum=1.0)
    with pytest.raises(ValueError):
        SGD(learning_rate=0.1, weight_decay=-1.0)


def test_set_learning_rate_validation():
    optimizer = SGD(learning_rate=0.1)
    optimizer.set_learning_rate(0.01)
    assert optimizer.learning_rate == 0.01
    with pytest.raises(ValueError):
        optimizer.set_learning_rate(0.0)


def test_get_optimizer_by_name():
    assert isinstance(get_optimizer("sgd", learning_rate=0.1), SGD)
    assert isinstance(get_optimizer("adam"), Adam)
    with pytest.raises(ValueError):
        get_optimizer("lbfgs")


def test_constant_schedule():
    schedule = ConstantSchedule(0.1)
    assert schedule.learning_rate(0) == 0.1
    assert schedule.learning_rate(100) == 0.1


def test_step_decay_schedule():
    schedule = StepDecaySchedule(1.0, step_size=10, gamma=0.5)
    assert schedule.learning_rate(0) == 1.0
    assert schedule.learning_rate(10) == 0.5
    assert schedule.learning_rate(25) == 0.25


def test_cosine_schedule_endpoints():
    schedule = CosineSchedule(1.0, total_epochs=11, min_lr=0.0)
    assert schedule.learning_rate(0) == pytest.approx(1.0)
    assert schedule.learning_rate(10) == pytest.approx(0.0, abs=1e-12)


def test_cosine_schedule_is_cyclic_with_cycle_length():
    schedule = CosineSchedule(1.0, total_epochs=100, cycle_length=10)
    assert schedule.learning_rate(0) == pytest.approx(schedule.learning_rate(10))
    assert schedule.learning_rate(9) < schedule.learning_rate(10)


def test_schedule_validation():
    with pytest.raises(ValueError):
        ConstantSchedule(0.0)
    with pytest.raises(ValueError):
        StepDecaySchedule(0.1, step_size=0)
    with pytest.raises(ValueError):
        CosineSchedule(0.1, total_epochs=0)

"""Unit and integration tests for the training loop."""

import numpy as np
import pytest

from repro.arch import mlp, vgg
from repro.nn import Model, Trainer, TrainingConfig, evaluate
from repro.nn.training import ConvergenceCriterion, iterate_minibatches


# ---------------------------------------------------------------------------
# TrainingConfig
# ---------------------------------------------------------------------------


def test_config_validation():
    with pytest.raises(ValueError):
        TrainingConfig(max_epochs=0)
    with pytest.raises(ValueError):
        TrainingConfig(batch_size=0)
    with pytest.raises(ValueError):
        TrainingConfig(convergence_patience=0)
    with pytest.raises(ValueError):
        TrainingConfig(min_epochs=5, max_epochs=3)


def test_config_scaled_reduces_epoch_budget():
    config = TrainingConfig(max_epochs=20, min_epochs=2)
    scaled = config.scaled(0.25)
    assert scaled.max_epochs == 5
    assert scaled.min_epochs == 2
    assert scaled.batch_size == config.batch_size


def test_config_scaled_never_drops_below_one_epoch():
    assert TrainingConfig(max_epochs=3).scaled(0.01).max_epochs == 1


def test_config_scaled_rejects_nonpositive_fraction():
    with pytest.raises(ValueError):
        TrainingConfig().scaled(0.0)


# ---------------------------------------------------------------------------
# Convergence criterion
# ---------------------------------------------------------------------------


def test_convergence_triggers_after_patience_stale_epochs():
    criterion = ConvergenceCriterion(patience=2, tolerance=1e-3)
    assert not criterion.update(1.0)
    assert not criterion.update(0.5)   # improvement
    assert not criterion.update(0.4999)  # below tolerance -> stale 1
    assert criterion.update(0.4999)      # stale 2 -> stop


def test_convergence_respects_min_epochs():
    criterion = ConvergenceCriterion(patience=1, tolerance=0.0, min_epochs=5)
    for _ in range(4):
        assert not criterion.update(1.0)
    assert criterion.update(1.0)


def test_convergence_resets_on_improvement():
    criterion = ConvergenceCriterion(patience=2, tolerance=1e-6)
    criterion.update(1.0)
    criterion.update(1.0)          # stale 1
    assert not criterion.update(0.5)  # improvement resets
    assert not criterion.update(0.5)
    assert criterion.update(0.5)


# ---------------------------------------------------------------------------
# Mini-batch iterator
# ---------------------------------------------------------------------------


def test_minibatches_cover_all_samples():
    x = np.arange(10)[:, None].astype(float)
    y = np.arange(10)
    seen = []
    for xb, yb in iterate_minibatches(x, y, batch_size=3, shuffle=False):
        seen.extend(yb.tolist())
    assert sorted(seen) == list(range(10))


def test_minibatch_sizes():
    x = np.zeros((10, 2))
    y = np.zeros(10)
    sizes = [xb.shape[0] for xb, _ in iterate_minibatches(x, y, batch_size=4, shuffle=False)]
    assert sizes == [4, 4, 2]


def test_minibatch_shuffling_is_seeded():
    x = np.arange(20)[:, None].astype(float)
    y = np.arange(20)
    order_a = [yb.tolist() for _, yb in iterate_minibatches(x, y, 5, True, np.random.default_rng(3))]
    order_b = [yb.tolist() for _, yb in iterate_minibatches(x, y, 5, True, np.random.default_rng(3))]
    assert order_a == order_b


# ---------------------------------------------------------------------------
# Trainer integration
# ---------------------------------------------------------------------------


def test_training_improves_accuracy_on_tabular_data(tiny_tabular_dataset):
    ds = tiny_tabular_dataset
    model = Model.from_spec(mlp("m", ds.input_shape[0], [32], ds.num_classes), seed=0)
    before = evaluate(model, ds.x_test, ds.y_test)["accuracy"]
    config = TrainingConfig(max_epochs=15, batch_size=32, learning_rate=0.1, momentum=0.9)
    result = Trainer(config).fit(model, ds.x_train, ds.y_train, seed=0)
    after = evaluate(model, ds.x_test, ds.y_test)["accuracy"]
    assert after > before
    assert after > 0.5
    assert result.epochs_run >= 1
    assert result.final_train_loss < result.history[0].train_loss


def test_training_records_validation_metrics(tiny_tabular_dataset):
    ds = tiny_tabular_dataset
    model = Model.from_spec(mlp("m", ds.input_shape[0], [16], ds.num_classes), seed=0)
    config = TrainingConfig(max_epochs=3, batch_size=64, learning_rate=0.05)
    result = Trainer(config).fit(
        model, ds.x_train, ds.y_train, x_val=ds.x_test, y_val=ds.y_test, seed=0
    )
    assert all(record.val_accuracy is not None for record in result.history)
    assert result.final_val_accuracy is not None


def test_training_is_deterministic_for_a_seed(tiny_tabular_dataset):
    ds = tiny_tabular_dataset
    config = TrainingConfig(max_epochs=4, batch_size=32, learning_rate=0.05)
    losses = []
    for _ in range(2):
        model = Model.from_spec(mlp("m", ds.input_shape[0], [16], ds.num_classes), seed=3)
        result = Trainer(config).fit(model, ds.x_train, ds.y_train, seed=11)
        losses.append(result.loss_curve())
    assert losses[0] == losses[1]


def test_training_converges_early_on_trivial_data():
    """A constant-label problem plateaus immediately and triggers early stop."""
    x = np.random.default_rng(0).normal(size=(64, 8))
    y = np.zeros(64, dtype=int)
    spec = mlp("m", 8, [8], 2)
    model = Model.from_spec(spec, seed=0)
    config = TrainingConfig(
        max_epochs=50, batch_size=16, learning_rate=0.1, convergence_patience=2
    )
    result = Trainer(config).fit(model, x, y, seed=0)
    assert result.converged
    assert result.epochs_run < 50


def test_trainer_rejects_mismatched_inputs():
    model = Model.from_spec(mlp("m", 4, [4], 2), seed=0)
    with pytest.raises(ValueError):
        Trainer(TrainingConfig(max_epochs=1)).fit(model, np.zeros((3, 4)), np.zeros(2))


def test_trainer_rejects_empty_dataset():
    model = Model.from_spec(mlp("m", 4, [4], 2), seed=0)
    with pytest.raises(ValueError):
        Trainer(TrainingConfig(max_epochs=1)).fit(model, np.zeros((0, 4)), np.zeros(0))


def test_samples_seen_accounting(tiny_tabular_dataset):
    ds = tiny_tabular_dataset
    model = Model.from_spec(mlp("m", ds.input_shape[0], [8], ds.num_classes), seed=0)
    config = TrainingConfig(max_epochs=2, min_epochs=2, batch_size=32, convergence_patience=5)
    result = Trainer(config).fit(model, ds.x_train, ds.y_train, seed=0)
    assert result.samples_seen == ds.train_size * result.epochs_run


def test_small_conv_model_trains_on_images(tiny_image_dataset):
    """End-to-end: a tiny VGG learns something on the cifar10-like data."""
    ds = tiny_image_dataset
    spec = vgg("V13", num_classes=ds.num_classes, input_shape=ds.input_shape, width_scale=0.03)
    model = Model.from_spec(spec, seed=0)
    config = TrainingConfig(max_epochs=3, batch_size=64, learning_rate=0.05, momentum=0.9)
    result = Trainer(config).fit(model, ds.x_train, ds.y_train, seed=0)
    assert result.history[-1].train_loss < result.history[0].train_loss or result.epochs_run == 1

"""Unit tests for Conv2D and the im2col/col2im helpers."""

import numpy as np
import pytest

from repro.nn.layers import Conv2D, col2im, im2col
from tests.gradcheck import check_layer_gradients


def test_im2col_shapes():
    x = np.arange(2 * 3 * 4 * 4, dtype=float).reshape(2, 3, 4, 4)
    cols = im2col(x, (3, 3), stride=1, padding=1)
    assert cols.shape == (2, 3 * 9, 16)


def test_im2col_col2im_adjointness():
    """col2im must be the adjoint of im2col: <im2col(x), c> == <x, col2im(c)>."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(2, 3, 5, 5))
    cols = im2col(x, (3, 3), stride=1, padding=1)
    c = rng.normal(size=cols.shape)
    lhs = float(np.sum(cols * c))
    rhs = float(np.sum(x * col2im(c, x.shape, (3, 3), stride=1, padding=1)))
    assert lhs == pytest.approx(rhs, rel=1e-10)


def test_same_padding_preserves_spatial_size():
    layer = Conv2D(3, 5, kernel_size=3, padding="same", seed=0)
    out = layer.forward(np.zeros((2, 3, 7, 7)))
    assert out.shape == (2, 5, 7, 7)


def test_one_by_one_convolution():
    layer = Conv2D(3, 4, kernel_size=1, padding="same", seed=0)
    out = layer.forward(np.zeros((1, 3, 6, 6)))
    assert out.shape == (1, 4, 6, 6)


def test_same_padding_requires_odd_kernel():
    with pytest.raises(ValueError, match="odd kernel"):
        Conv2D(3, 4, kernel_size=2, padding="same")


def test_invalid_channel_counts_raise():
    with pytest.raises(ValueError):
        Conv2D(0, 4, 3)
    with pytest.raises(ValueError):
        Conv2D(4, 0, 3)


def test_forward_rejects_wrong_channel_count():
    layer = Conv2D(3, 4, 3, seed=0)
    with pytest.raises(ValueError, match="expected input"):
        layer.forward(np.zeros((1, 2, 6, 6)))


def test_identity_kernel_reproduces_input():
    channels = 3
    layer = Conv2D(channels, channels, 3, seed=0)
    kernel = np.zeros_like(layer.params["W"])
    for c in range(channels):
        kernel[c, c, 1, 1] = 1.0
    layer.params["W"] = kernel
    layer.params["b"] = np.zeros(channels)
    x = np.random.default_rng(1).normal(size=(2, channels, 5, 5))
    np.testing.assert_allclose(layer.forward(x), x, atol=1e-12)


def test_matches_explicit_convolution():
    """Cross-check the im2col implementation against a naive loop."""
    rng = np.random.default_rng(2)
    layer = Conv2D(2, 3, 3, seed=3)
    x = rng.normal(size=(1, 2, 4, 4))
    out = layer.forward(x)

    padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
    expected = np.zeros_like(out)
    w = layer.params["W"]
    b = layer.params["b"]
    for o in range(3):
        for i in range(4):
            for j in range(4):
                patch = padded[0, :, i : i + 3, j : j + 3]
                expected[0, o, i, j] = np.sum(patch * w[o]) + b[o]
    np.testing.assert_allclose(out, expected, atol=1e-10)


def test_stride_two_output_shape():
    layer = Conv2D(2, 3, 3, stride=2, padding=1, seed=0)
    out = layer.forward(np.zeros((1, 2, 8, 8)))
    assert out.shape == (1, 3, 4, 4)


def test_gradients_match_finite_differences():
    rng = np.random.default_rng(3)
    layer = Conv2D(2, 3, 3, seed=4)
    x = rng.normal(size=(2, 2, 5, 5))
    check_layer_gradients(layer, x, rtol=1e-3, atol=1e-5)


def test_gradients_without_bias():
    rng = np.random.default_rng(4)
    layer = Conv2D(2, 2, 3, seed=5, use_bias=False)
    assert "b" not in layer.params
    x = rng.normal(size=(1, 2, 4, 4))
    check_layer_gradients(layer, x, rtol=1e-3, atol=1e-5)


def test_parameter_count():
    layer = Conv2D(3, 8, 5, seed=0)
    assert layer.parameter_count() == 8 * 3 * 25 + 8

"""Unit tests for weight initialisers."""

import numpy as np
import pytest

from repro.nn import initializers


def test_gaussian_matches_requested_moments():
    rng = np.random.default_rng(0)
    values = initializers.gaussian(std=1.0)((200, 200), rng)
    assert abs(values.mean()) < 0.05
    assert abs(values.std() - 1.0) < 0.05


def test_gaussian_custom_std_and_mean():
    rng = np.random.default_rng(0)
    values = initializers.gaussian(std=0.1, mean=2.0)((100, 100), rng)
    assert abs(values.mean() - 2.0) < 0.05
    assert abs(values.std() - 0.1) < 0.02


def test_he_normal_scales_with_fan_in_dense():
    rng = np.random.default_rng(1)
    values = initializers.he_normal()((512, 64), rng)
    expected_std = np.sqrt(2.0 / 512)
    assert abs(values.std() - expected_std) < 0.1 * expected_std


def test_he_normal_scales_with_fan_in_conv():
    rng = np.random.default_rng(1)
    values = initializers.he_normal()((32, 16, 3, 3), rng)
    expected_std = np.sqrt(2.0 / (16 * 9))
    assert abs(values.std() - expected_std) < 0.1 * expected_std


def test_glorot_uniform_bounds():
    rng = np.random.default_rng(2)
    shape = (64, 32)
    values = initializers.glorot_uniform()(shape, rng)
    limit = np.sqrt(6.0 / (64 + 32))
    assert values.min() >= -limit
    assert values.max() <= limit


def test_zeros_and_constant():
    rng = np.random.default_rng(3)
    assert np.all(initializers.zeros()((4, 4), rng) == 0.0)
    assert np.all(initializers.constant(3.5)((2, 2), rng) == 3.5)


def test_registry_lookup_by_name():
    init = initializers.get_initializer("he_normal")
    values = init((8, 8), np.random.default_rng(0))
    assert values.shape == (8, 8)


def test_registry_passes_callable_through():
    def custom(shape, rng):
        return np.full(shape, 7.0)

    assert initializers.get_initializer(custom) is custom


def test_registry_unknown_name_raises():
    with pytest.raises(ValueError, match="Unknown initializer"):
        initializers.get_initializer("not-a-real-initializer")


def test_initialize_is_deterministic_for_a_seed():
    a = initializers.initialize((5, 5), "he_normal", seed=42)
    b = initializers.initialize((5, 5), "he_normal", seed=42)
    np.testing.assert_array_equal(a, b)


def test_initialize_differs_across_seeds():
    a = initializers.initialize((5, 5), "he_normal", seed=1)
    b = initializers.initialize((5, 5), "he_normal", seed=2)
    assert not np.array_equal(a, b)

"""Unit tests for max pooling and global average pooling."""

import numpy as np
import pytest

from repro.nn.layers import GlobalAveragePool2D, MaxPool2D
from tests.gradcheck import check_layer_gradients


def test_maxpool_forward_values():
    layer = MaxPool2D(2)
    x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
    out = layer.forward(x)
    np.testing.assert_array_equal(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])


def test_maxpool_output_shape():
    layer = MaxPool2D(2)
    out = layer.forward(np.zeros((3, 5, 8, 8)))
    assert out.shape == (3, 5, 4, 4)


def test_maxpool_rejects_indivisible_spatial_size():
    layer = MaxPool2D(2)
    with pytest.raises(ValueError, match="not divisible"):
        layer.forward(np.zeros((1, 1, 5, 5)))


def test_maxpool_invalid_pool_size():
    with pytest.raises(ValueError):
        MaxPool2D(0)


def test_maxpool_backward_routes_gradient_to_argmax():
    layer = MaxPool2D(2)
    x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
    layer.forward(x, training=True)
    grad = layer.backward(np.array([[[[10.0]]]]))
    np.testing.assert_array_equal(grad, [[[[0.0, 0.0], [0.0, 10.0]]]])


def test_maxpool_ties_do_not_duplicate_gradient():
    layer = MaxPool2D(2)
    x = np.ones((1, 1, 2, 2))
    layer.forward(x, training=True)
    grad = layer.backward(np.array([[[[4.0]]]]))
    assert grad.sum() == pytest.approx(4.0)
    assert (grad != 0).sum() == 1


def test_maxpool_gradcheck():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(2, 3, 4, 4)) * 10  # spread values so ties are unlikely
    check_layer_gradients(MaxPool2D(2), x, rtol=1e-4, atol=1e-6)


def test_global_average_pool_forward():
    layer = GlobalAveragePool2D()
    x = np.arange(8, dtype=float).reshape(1, 2, 2, 2)
    out = layer.forward(x)
    np.testing.assert_allclose(out, [[1.5, 5.5]])


def test_global_average_pool_rejects_non_4d_input():
    with pytest.raises(ValueError, match="4-D"):
        GlobalAveragePool2D().forward(np.zeros((2, 3)))


def test_global_average_pool_backward_spreads_gradient():
    layer = GlobalAveragePool2D()
    x = np.zeros((1, 1, 2, 2))
    layer.forward(x, training=True)
    grad = layer.backward(np.array([[4.0]]))
    np.testing.assert_allclose(grad, np.full((1, 1, 2, 2), 1.0))


def test_global_average_pool_gradcheck():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(2, 3, 4, 4))
    check_layer_gradients(GlobalAveragePool2D(), x)


def test_pooling_layers_have_no_parameters():
    assert MaxPool2D(2).parameter_count() == 0
    assert GlobalAveragePool2D().parameter_count() == 0

"""The allocation-free batch gatherer must be invisible: `Trainer.fit`
produces bitwise the same model as a naive reference loop that materialises
``x[perm_batch]`` copies via ``iterate_minibatches`` (the pre-optimisation
semantics, which the public generator still implements)."""

import numpy as np
import pytest

from repro.arch import mlp
from repro.nn.losses import get_loss
from repro.nn.model import Model
from repro.nn.optimizers import SGD
from repro.nn.training import (
    ConvergenceCriterion,
    Trainer,
    TrainingConfig,
    _BatchGatherer,
    iterate_minibatches,
)
from repro.utils.rng import as_rng


def _make_data(n=130, features=9, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, features))
    y = rng.integers(0, classes, size=n)
    return x, y


def _reference_fit(model, x, y, config, seed):
    """The pre-optimisation training loop: fresh ``x[batch]`` copies per
    step, identical criterion/optimizer/schedule handling."""
    dtype = model.dtype
    x = np.asarray(x, dtype=dtype)
    loss_fn = get_loss(config.loss)
    optimizer = SGD(
        learning_rate=config.learning_rate,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    criterion = ConvergenceCriterion(
        config.convergence_patience, config.convergence_tolerance, config.min_epochs
    )
    rng = as_rng(seed)
    for epoch in range(config.max_epochs):
        optimizer.set_learning_rate(config.learning_rate)
        losses = []
        for x_batch, y_batch in iterate_minibatches(
            x, y, config.batch_size, config.shuffle, rng
        ):
            logits = model.forward(x_batch, training=True)
            loss_value, grad = loss_fn(logits, y_batch)
            model.zero_grads()
            model.backward(grad)
            optimizer.step(model.iter_parameters())
            losses.append(loss_value)
        if criterion.update(float(np.mean(losses))):
            break
    return model


@pytest.mark.parametrize("shuffle", [True, False])
def test_fit_matches_naive_copy_loop_bitwise(shuffle):
    spec = mlp("gather-test", input_features=9, hidden_units=[12, 8], num_classes=4)
    x, y = _make_data()
    config = TrainingConfig(
        max_epochs=4, batch_size=32, learning_rate=0.1, shuffle=shuffle
    )

    trained = Model.from_spec(spec, seed=7)
    Trainer(config).fit(trained, x, y, seed=42)

    reference = _reference_fit(Model.from_spec(spec, seed=7), x, y, config, seed=42)

    ref_weights = reference.get_weights()
    new_weights = trained.get_weights()
    assert ref_weights.keys() == new_weights.keys()
    for layer in ref_weights:
        for key in ref_weights[layer]:
            np.testing.assert_array_equal(
                new_weights[layer][key], ref_weights[layer][key], err_msg=f"{layer}/{key}"
            )


def test_gatherer_batches_match_naive_batches_bitwise():
    x, y = _make_data(n=77, features=5)
    gatherer = _BatchGatherer(x, y, batch_size=16, shuffle=True)
    for epoch in range(3):
        # Compare streaming: the gatherer's yields reuse one buffer, so they
        # are only valid until the next iteration (exactly how the training
        # loop consumes them).
        count = 0
        for (nx, ny), (gx, gy) in zip(
            iterate_minibatches(x, y, 16, shuffle=True, rng=as_rng(3 + epoch)),
            gatherer.epoch(as_rng(3 + epoch)),
        ):
            np.testing.assert_array_equal(gx, nx)
            np.testing.assert_array_equal(gy, ny)
            count += 1
        assert count == 5  # 77 samples / 16 per batch


def test_gatherer_reuses_buffers_between_epochs():
    x, y = _make_data(n=64, features=3)
    gatherer = _BatchGatherer(x, y, batch_size=32, shuffle=True)
    first = [xb for xb, _ in gatherer.epoch(as_rng(0))]
    second = [xb for xb, _ in gatherer.epoch(as_rng(1))]
    # Full-size batches are views into the same reused buffer object.
    assert first[0].base is second[0].base or first[0] is second[0]


def test_gatherer_without_shuffle_yields_views():
    x, y = _make_data(n=40, features=3)
    gatherer = _BatchGatherer(x, y, batch_size=16, shuffle=False)
    batches = list(gatherer.epoch(as_rng(0)))
    assert batches[0][0].base is x  # zero-copy slice view
    total = sum(xb.shape[0] for xb, _ in batches)
    assert total == 40

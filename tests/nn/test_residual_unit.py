"""Unit tests for the residual unit."""

import numpy as np
import pytest

from repro.nn.layers import ResidualUnit, identity_projection_kernel
from tests.gradcheck import numerical_gradient


def test_output_shape_with_channel_change():
    unit = ResidualUnit(in_channels=3, channels=6, seed=0)
    out = unit.forward(np.zeros((2, 3, 5, 5)))
    assert out.shape == (2, 6, 5, 5)


def test_identity_projection_kernel_square():
    kernel = identity_projection_kernel(3, 3)
    assert kernel.shape == (3, 3, 1, 1)
    np.testing.assert_array_equal(kernel[:, :, 0, 0], np.eye(3))


def test_identity_projection_kernel_expanding():
    kernel = identity_projection_kernel(2, 4)
    np.testing.assert_array_equal(kernel[:2, :, 0, 0], np.eye(2))
    assert np.all(kernel[2:] == 0)


def test_set_identity_requires_matching_channels():
    unit = ResidualUnit(in_channels=2, channels=4, seed=0)
    with pytest.raises(ValueError, match="in_channels == channels"):
        unit.set_identity()


def test_set_identity_reproduces_nonnegative_inputs():
    unit = ResidualUnit(in_channels=3, channels=3, seed=1)
    unit.set_identity()
    x = np.abs(np.random.default_rng(0).normal(size=(2, 3, 4, 4)))
    np.testing.assert_allclose(unit.forward(x, training=False), x, atol=1e-10)


def test_parameter_count_matches_sublayers():
    unit = ResidualUnit(in_channels=2, channels=3, kernel_size=3, use_batchnorm=True, seed=0)
    expected = (
        (3 * 2 * 9 + 3)      # conv1
        + (3 * 3 * 9 + 3)    # conv2
        + (3 * 2 * 1)        # projection (no bias)
        + 2 * (2 * 3)        # two BatchNorms
    )
    assert unit.parameter_count() == expected


def test_without_batchnorm_has_no_bn_sublayers():
    unit = ResidualUnit(in_channels=2, channels=2, use_batchnorm=False, seed=0)
    assert unit.bn1 is None and unit.bn2 is None
    out = unit.forward(np.zeros((1, 2, 4, 4)))
    assert out.shape == (1, 2, 4, 4)


def test_backward_produces_input_gradient_shape():
    unit = ResidualUnit(in_channels=3, channels=5, seed=2)
    x = np.random.default_rng(1).normal(size=(2, 3, 4, 4))
    out = unit.forward(x, training=True)
    grad = unit.backward(np.ones_like(out))
    assert grad.shape == x.shape


def test_input_gradient_matches_finite_differences():
    rng = np.random.default_rng(3)
    unit = ResidualUnit(in_channels=2, channels=3, use_batchnorm=False, seed=4)
    x = rng.normal(size=(1, 2, 3, 3))
    loss_weights = rng.normal(size=(1, 3, 3, 3))

    def loss() -> float:
        return float(np.sum(unit.forward(x, training=True) * loss_weights))

    unit.forward(x, training=True)
    analytic = unit.backward(loss_weights)
    numeric = numerical_gradient(loss, x)
    np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=1e-5)


def test_get_set_weights_roundtrip():
    unit = ResidualUnit(in_channels=2, channels=3, seed=5)
    x = np.random.default_rng(2).normal(size=(1, 2, 4, 4))
    reference = unit.forward(x)
    snapshot = unit.get_weights()

    other = ResidualUnit(in_channels=2, channels=3, seed=99)
    other.set_weights(snapshot)
    np.testing.assert_allclose(other.forward(x), reference, atol=1e-12)

"""Crash-safe file writes (``repro.utils.atomic``)."""

from __future__ import annotations

import os

import pytest

from repro.utils.atomic import atomic_write_bytes, atomic_write_text, atomic_writer


def _no_temp_residue(directory):
    return [p.name for p in directory.iterdir() if ".tmp." in p.name] == []


def test_atomic_write_text_creates_and_replaces(tmp_path):
    target = tmp_path / "state.json"
    assert atomic_write_text(target, "one") == target
    assert target.read_text(encoding="utf-8") == "one"
    atomic_write_text(target, "two")
    assert target.read_text(encoding="utf-8") == "two"
    assert _no_temp_residue(tmp_path)


def test_atomic_write_bytes(tmp_path):
    target = tmp_path / "blob.bin"
    atomic_write_bytes(target, b"\x00\x01")
    assert target.read_bytes() == b"\x00\x01"
    assert _no_temp_residue(tmp_path)


def test_failed_write_leaves_old_content_and_no_temp_files(tmp_path):
    target = tmp_path / "precious.txt"
    atomic_write_text(target, "original")

    class Boom(RuntimeError):
        pass

    with pytest.raises(Boom):
        with atomic_writer(target, "w") as handle:
            handle.write("half-finished garbage")
            raise Boom()
    # The interrupted write is invisible: old content intact, temp cleaned.
    assert target.read_text(encoding="utf-8") == "original"
    assert _no_temp_residue(tmp_path)


def test_writer_temp_file_lives_next_to_target(tmp_path):
    """The temp file must share the target's directory — os.replace is only
    atomic within one filesystem."""
    target = tmp_path / "out.txt"
    with atomic_writer(target, "w") as handle:
        temp_path = handle.name
        handle.write("data")
        assert os.path.dirname(temp_path) == str(tmp_path)
        assert f".tmp.{os.getpid()}" in os.path.basename(temp_path)
    assert not os.path.exists(temp_path)
    assert target.read_text(encoding="utf-8") == "data"


def test_save_model_is_atomic(tmp_path, monkeypatch):
    """Model checkpoints go through the atomic writer: a replace that fails
    mid-write leaves the previous checkpoint intact."""
    from repro.arch.zoo import mlp_family
    from repro.nn.model import Model
    from repro.nn.serialization import load_model, save_model

    spec = mlp_family(count=1, input_features=6, num_classes=3, base_width=8, seed=1)[0]
    model = Model.from_spec(spec, seed=3)
    path = save_model(model, tmp_path / "model.npz")
    first = path.read_bytes()

    import numpy as np

    def explode(*args, **kwargs):
        raise RuntimeError("disk on fire")

    monkeypatch.setattr(np, "savez_compressed", explode)
    with pytest.raises(RuntimeError, match="disk on fire"):
        save_model(Model.from_spec(spec, seed=4), tmp_path / "model.npz")
    assert path.read_bytes() == first
    assert _no_temp_residue(tmp_path)
    reloaded = load_model(path)
    assert reloaded.spec == model.spec

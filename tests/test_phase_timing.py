"""Tests for the opt-in compute-phase timing registry and its cost-ledger
integration (distinguishing data movement from BLAS compute)."""

import numpy as np

from repro.arch import vgg
from repro.core import FullDataTrainer, MotherNetsTrainer
from repro.core.cost_model import CostLedger
from repro.data import cifar10_like
from repro.nn import Model, Trainer, TrainingConfig
from repro.utils import timing


def test_registry_disabled_by_default():
    assert not timing.phase_timing_enabled()
    timing.record_phase("conv.gemm", 1.0)  # no-op, must not raise
    assert timing.phase_timings() == {}


def test_enable_record_disable_cycle():
    acc = timing.enable_phase_timing()
    try:
        timing.record_phase("conv.gemm", 0.5)
        timing.record_phase("conv.gemm", 0.25)
        timing.record_phase("conv.im2col", 0.1)
        assert timing.phase_timings() == {"conv.gemm": 0.75, "conv.im2col": 0.1}
        assert acc.total == 0.85
    finally:
        timing.disable_phase_timing()
    assert timing.phase_timings() == {}


def test_capture_sees_only_its_own_delta():
    with timing.capture_phase_timings() as outer:
        timing.record_phase("a", 1.0)
        with timing.capture_phase_timings() as inner:
            timing.record_phase("a", 0.5)
            timing.record_phase("b", 2.0)
        timing.record_phase("a", 0.25)
    assert inner == {"a": 0.5, "b": 2.0}
    assert outer == {"a": 1.75, "b": 2.0}
    assert not timing.phase_timing_enabled()


def test_conv_training_reports_compute_phases(tiny_vgg_spec):
    model = Model.from_spec(tiny_vgg_spec, seed=0)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, *tiny_vgg_spec.input_shape))
    y = rng.integers(0, tiny_vgg_spec.num_classes, size=32)
    with timing.capture_phase_timings() as phases:
        Trainer(TrainingConfig(max_epochs=1, batch_size=16)).fit(model, x, y, seed=0)
    for key in ("conv.im2col", "conv.gemm", "conv.col2im"):
        assert key in phases and phases[key] > 0.0, phases


def test_ledger_aggregates_compute_phases():
    ledger = CostLedger(approach="x")
    ledger.add("a", "member", 1, 1.0, 10, 100, compute_phases={"conv.gemm": 0.4})
    ledger.add("b", "member", 1, 1.0, 10, 100,
               compute_phases={"conv.gemm": 0.1, "conv.im2col": 0.2})
    ledger.add("c", "member", 1, 1.0, 10, 100)
    assert ledger.seconds_by_compute_phase() == {"conv.gemm": 0.5, "conv.im2col": 0.2}


def test_ensemble_trainer_fills_ledger_breakdown():
    dataset = cifar10_like(train_samples=64, test_samples=16, image_shape=(3, 8, 8), seed=0)
    specs = [vgg("V13", num_classes=10, input_shape=(3, 8, 8), width_scale=0.05)]
    config = TrainingConfig(max_epochs=1, batch_size=32)
    run = FullDataTrainer(config).train(specs, dataset, seed=0)
    breakdown = run.ledger.seconds_by_compute_phase()
    assert breakdown.get("conv.gemm", 0.0) > 0.0
    assert all(record.compute_phases for record in run.ledger.records)
    # And the opt-out leaves records clean.
    run_off = FullDataTrainer(config, collect_phase_timings=False).train(specs, dataset, seed=0)
    assert run_off.ledger.seconds_by_compute_phase() == {}


def test_mothernets_trainer_fills_ledger_breakdown():
    dataset = cifar10_like(train_samples=64, test_samples=16, image_shape=(3, 8, 8), seed=0)
    specs = [
        vgg("V13", num_classes=10, input_shape=(3, 8, 8), width_scale=0.05),
        vgg("V16", num_classes=10, input_shape=(3, 8, 8), width_scale=0.05),
    ]
    config = TrainingConfig(max_epochs=1, batch_size=32)
    run = MotherNetsTrainer(config, tau=0.0).train(specs, dataset, seed=0)
    assert run.ledger.seconds_by_compute_phase().get("conv.gemm", 0.0) > 0.0
    from repro.core.trainer import summarize_run

    summary = summarize_run(run)
    assert "seconds_by_compute_phase" in summary

"""Unit tests for parameter counting and size ordering."""

import pytest

from repro.arch import (
    ArchitectureSpec,
    count_parameters,
    mlp,
    parameter_breakdown,
    resnet,
    shared_parameter_fraction,
    sort_by_size,
    vgg,
)
from repro.nn import Model


def test_dense_parameter_count_by_hand():
    spec = ArchitectureSpec.dense("m", 10, [4], 3, use_batchnorm=False)
    # 10*4+4 hidden + 4*3+3 classifier
    assert count_parameters(spec) == 44 + 15


def test_dense_with_batchnorm_adds_two_per_unit():
    plain = ArchitectureSpec.dense("m", 10, [4], 3, use_batchnorm=False)
    with_bn = ArchitectureSpec.dense("m", 10, [4], 3, use_batchnorm=True)
    assert count_parameters(with_bn) == count_parameters(plain) + 2 * 4


def test_conv_parameter_count_by_hand():
    spec = ArchitectureSpec.convolutional(
        "c", (3, 8, 8), [["3:4"]], num_classes=2, use_batchnorm=False
    )
    # conv: 4*3*9+4 = 112, classifier after GAP: 4*2+2 = 10
    assert count_parameters(spec) == 122


def test_residual_parameter_count_by_hand():
    spec = ArchitectureSpec.convolutional(
        "r", (3, 8, 8), [["3:4"]], num_classes=2, residual=True, use_batchnorm=False
    )
    # conv1 3->4: 112, conv2 4->4: 148, projection 3->4 1x1 no bias: 12, classifier: 10
    assert count_parameters(spec) == 112 + 148 + 12 + 10


@pytest.mark.parametrize(
    "spec_factory",
    [
        lambda: mlp("m", 24, [16, 12], 5),
        lambda: mlp("m", 24, [16, 12], 5, use_batchnorm=True),
        lambda: vgg("V16", input_shape=(3, 8, 8), width_scale=0.05),
        lambda: vgg("V16A", input_shape=(3, 8, 8), width_scale=0.05),
        lambda: resnet(34, input_shape=(3, 8, 8), width_scale=0.05),
        lambda: ArchitectureSpec.convolutional(
            "mixed", (3, 8, 8), [["3:4", "1:6"], ["5:8"]], num_classes=7, dense_layers=[12]
        ),
    ],
)
def test_count_matches_built_model(spec_factory):
    """The analytic count must equal the materialised model's count."""
    spec = spec_factory()
    assert count_parameters(spec) == Model.from_spec(spec, seed=0).parameter_count()


def test_paper_scale_vgg_counts_are_plausible():
    """Full-size VGG conv stacks are in the published 9M-20M range and ordered
    V16A < V13 < V16 < V16B < V19."""
    counts = {name: count_parameters(vgg(name)) for name in ("V13", "V16", "V16A", "V16B", "V19")}
    assert 5e6 < counts["V16A"] < counts["V13"] < counts["V16"] < counts["V16B"] < counts["V19"] < 25e6


def test_resnet_counts_grow_with_depth():
    counts = [count_parameters(resnet(depth)) for depth in (18, 34, 50, 101, 152)]
    assert counts == sorted(counts)
    assert counts[0] > 1e6


def test_parameter_breakdown_sums_to_total():
    spec = vgg("V16", input_shape=(3, 32, 32), width_scale=0.1)
    breakdown = parameter_breakdown(spec)
    assert sum(breakdown.values()) == count_parameters(spec)
    assert "classifier" in breakdown
    assert sum(1 for key in breakdown if key.startswith("block_")) == 5


def test_parameter_breakdown_dense_hidden_section():
    spec = ArchitectureSpec.dense("m", 10, [4, 4], 3)
    breakdown = parameter_breakdown(spec)
    assert set(breakdown) == {"dense_hidden", "classifier"}


def test_shared_parameter_fraction_bounds():
    small = mlp("s", 16, [8], 4)
    large = mlp("l", 16, [32, 32], 4)
    fraction = shared_parameter_fraction(small, large)
    assert 0.0 < fraction < 1.0
    assert shared_parameter_fraction(large, large) == 1.0


def test_shared_parameter_fraction_caps_at_one():
    small = mlp("s", 16, [8], 4)
    large = mlp("l", 16, [32, 32], 4)
    assert shared_parameter_fraction(large, small) == 1.0


def test_sort_by_size_is_ascending_and_stable_on_ties():
    specs = [mlp("b", 16, [32], 4), mlp("a", 16, [8], 4), mlp("c", 16, [8], 4)]
    ordered = sort_by_size(specs)
    assert [s.name for s in ordered] == ["a", "c", "b"]

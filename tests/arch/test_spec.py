"""Unit tests for architecture specifications."""

import dataclasses

import pytest

from repro.arch import ArchitectureSpec, ConvBlockSpec, ConvLayerSpec, DenseLayerSpec


# ---------------------------------------------------------------------------
# ConvLayerSpec
# ---------------------------------------------------------------------------


def test_conv_layer_notation_roundtrip():
    layer = ConvLayerSpec(filter_size=3, filters=64)
    assert layer.notation() == "3:64"
    assert ConvLayerSpec.parse("3:64") == layer


def test_conv_layer_rejects_even_or_nonpositive_filter_size():
    with pytest.raises(ValueError):
        ConvLayerSpec(filter_size=2, filters=8)
    with pytest.raises(ValueError):
        ConvLayerSpec(filter_size=0, filters=8)


def test_conv_layer_rejects_nonpositive_filters():
    with pytest.raises(ValueError):
        ConvLayerSpec(filter_size=3, filters=0)


# ---------------------------------------------------------------------------
# ConvBlockSpec
# ---------------------------------------------------------------------------


def test_block_of_builds_from_notation():
    block = ConvBlockSpec.of("3:64", "3:64", "1:128")
    assert block.depth == 3
    assert block.layers[2] == ConvLayerSpec(1, 128)


def test_block_requires_at_least_one_layer():
    with pytest.raises(ValueError):
        ConvBlockSpec(())


def test_block_notation_marks_residual_blocks():
    block = ConvBlockSpec.of("3:16", residual=True)
    assert block.notation().endswith("*")


# ---------------------------------------------------------------------------
# DenseLayerSpec / ArchitectureSpec
# ---------------------------------------------------------------------------


def test_dense_layer_requires_positive_units():
    with pytest.raises(ValueError):
        DenseLayerSpec(0)


def test_dense_factory_and_properties():
    spec = ArchitectureSpec.dense("net", 32, [16, 8], 4)
    assert spec.kind == "dense"
    assert spec.hidden_widths == (16, 8)
    assert not spec.is_residual
    assert spec.num_blocks == 0
    assert spec.conv_depth() == 0


def test_convolutional_factory_and_properties():
    spec = ArchitectureSpec.convolutional(
        "net", (3, 16, 16), [["3:8", "3:8"], ["3:16"]], num_classes=10
    )
    assert spec.kind == "conv"
    assert spec.num_blocks == 2
    assert spec.conv_depth() == 3


def test_residual_conv_depth_counts_two_convs_per_unit():
    spec = ArchitectureSpec.convolutional(
        "net", (3, 16, 16), [["3:8", "3:8"]], num_classes=10, residual=True
    )
    assert spec.is_residual
    assert spec.conv_depth() == 4


def test_dense_spec_requires_1d_input_shape():
    with pytest.raises(ValueError):
        ArchitectureSpec(name="x", input_shape=(3, 8, 8), num_classes=10,
                         dense_layers=(DenseLayerSpec(4),))


def test_conv_spec_requires_3d_input_shape():
    with pytest.raises(ValueError):
        ArchitectureSpec.convolutional("x", (8,), [["3:4"]], num_classes=10)


def test_spec_requires_at_least_two_classes():
    with pytest.raises(ValueError):
        ArchitectureSpec.dense("x", 8, [4], 1)


def test_spec_requires_some_hidden_structure():
    with pytest.raises(ValueError):
        ArchitectureSpec(name="x", input_shape=(8,), num_classes=2)


def test_spec_rejects_invalid_dropout():
    with pytest.raises(ValueError):
        ArchitectureSpec.dense("x", 8, [4], 2, dropout_rate=1.0)


def test_spec_rejects_nonpositive_input_dimensions():
    with pytest.raises(ValueError):
        ArchitectureSpec.dense("x", 0, [4], 2)


def test_describe_uses_paper_notation():
    spec = ArchitectureSpec.convolutional(
        "V-mini", (3, 8, 8), [["3:8"], ["5:16"]], num_classes=10, dense_layers=[32]
    )
    description = spec.describe()
    assert "3:8" in description and "5:16" in description and "fc[32]" in description


def test_with_name_returns_renamed_copy():
    spec = ArchitectureSpec.dense("a", 8, [4], 2)
    renamed = spec.with_name("b")
    assert renamed.name == "b"
    assert renamed.dense_layers == spec.dense_layers


def test_spec_is_hashable_and_frozen():
    spec = ArchitectureSpec.dense("a", 8, [4], 2)
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.name = "c"
    assert hash(spec) == hash(dataclasses.replace(spec))

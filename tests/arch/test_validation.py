"""Unit tests for structural validation and hatchability checks."""

import pytest

from repro.arch import (
    ArchitectureSpec,
    IncompatibleArchitectureError,
    check_hatchable,
    check_same_task,
    hatchability_errors,
    is_hatchable,
    mlp,
    vgg,
)


def _conv(name, blocks, residual=False, **kwargs):
    return ArchitectureSpec.convolutional(
        name, (3, 8, 8), blocks, num_classes=10, residual=residual, **kwargs
    )


# ---------------------------------------------------------------------------
# check_same_task
# ---------------------------------------------------------------------------


def test_same_task_accepts_compatible_ensemble():
    check_same_task([mlp("a", 16, [8], 4), mlp("b", 16, [12, 8], 4)])


def test_same_task_rejects_empty_ensemble():
    with pytest.raises(IncompatibleArchitectureError):
        check_same_task([])


def test_same_task_rejects_different_input_shapes():
    with pytest.raises(IncompatibleArchitectureError, match="input shape"):
        check_same_task([mlp("a", 16, [8], 4), mlp("b", 32, [8], 4)])


def test_same_task_rejects_different_class_counts():
    with pytest.raises(IncompatibleArchitectureError, match="num_classes"):
        check_same_task([mlp("a", 16, [8], 4), mlp("b", 16, [8], 5)])


def test_same_task_rejects_mixed_families():
    with pytest.raises(IncompatibleArchitectureError, match="kind"):
        check_same_task(
            [
                ArchitectureSpec.dense("a", 16, [8], 10),
                _conv("b", [["3:8"]]),
            ]
        )


def test_same_task_rejects_mixed_residual_flags():
    with pytest.raises(IncompatibleArchitectureError, match="residual"):
        check_same_task([_conv("a", [["3:8"]]), _conv("b", [["3:8"]], residual=True)])


def test_same_task_rejects_different_block_counts():
    with pytest.raises(IncompatibleArchitectureError, match="blocks"):
        check_same_task([_conv("a", [["3:8"]]), _conv("b", [["3:8"], ["3:16"]])])


def test_same_task_rejects_different_batchnorm_settings():
    with pytest.raises(IncompatibleArchitectureError, match="use_batchnorm"):
        check_same_task([_conv("a", [["3:8"]]), _conv("b", [["3:8"]], use_batchnorm=False)])


# ---------------------------------------------------------------------------
# hatchability
# ---------------------------------------------------------------------------


def test_identical_specs_are_hatchable():
    spec = vgg("V16", input_shape=(3, 8, 8), width_scale=0.1)
    assert is_hatchable(spec, spec)


def test_narrower_shallower_parent_is_hatchable_into_child():
    parent = _conv("p", [["3:4"], ["3:8"]])
    child = _conv("c", [["3:8", "3:8"], ["5:8"]])
    assert is_hatchable(parent, child)
    check_hatchable(parent, child)


def test_wider_parent_is_not_hatchable():
    parent = _conv("p", [["3:16"]])
    child = _conv("c", [["3:8"]])
    errors = hatchability_errors(parent, child)
    assert any("wider" in e for e in errors)
    with pytest.raises(IncompatibleArchitectureError):
        check_hatchable(parent, child)


def test_deeper_parent_is_not_hatchable():
    parent = _conv("p", [["3:8", "3:8"]])
    child = _conv("c", [["3:8"]])
    assert not is_hatchable(parent, child)


def test_larger_parent_filter_is_not_hatchable():
    parent = _conv("p", [["5:8"]])
    child = _conv("c", [["3:8"]])
    assert any("filter larger" in e for e in hatchability_errors(parent, child))


def test_dense_hatchability_checks_units_per_position():
    parent = mlp("p", 16, [8, 8], 4)
    good_child = mlp("c", 16, [8, 16, 8], 4)
    bad_child = mlp("c", 16, [4, 16], 4)
    assert is_hatchable(parent, good_child)
    assert not is_hatchable(parent, bad_child)


def test_hatchability_requires_same_task():
    parent = mlp("p", 16, [8], 4)
    child = mlp("c", 16, [8], 5)
    assert not is_hatchable(parent, child)


def test_hatchability_requires_same_family():
    parent = mlp("p", 16, [8], 10)
    child = _conv("c", [["3:8"]])
    assert not is_hatchable(parent, child)


def test_vgg_family_members_hatchable_from_v13_like_parent():
    parent = vgg("V13", input_shape=(3, 8, 8), width_scale=0.1)
    # V13 is not the MotherNet of the Table-1 ensemble, but V16B and V19 only
    # add layers/filters relative to it, so they are hatchable from it.
    for name in ("V16B", "V19"):
        child = vgg(name, input_shape=(3, 8, 8), width_scale=0.1)
        assert is_hatchable(parent, child), name

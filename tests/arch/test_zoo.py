"""Unit tests for the architecture zoo (Table 1 and the variant families)."""

import pytest

from repro.arch import (
    RESNET_DEPTHS,
    VGG_VARIANT_NAMES,
    count_parameters,
    is_hatchable,
    mlp_family,
    resnet,
    resnet_variant_family,
    small_vgg_ensemble,
    v16_variant_family,
    vgg,
)
from repro.core import construct_mothernet


# ---------------------------------------------------------------------------
# Table-1 VGG variants
# ---------------------------------------------------------------------------


def test_table1_contains_the_five_published_variants():
    assert set(VGG_VARIANT_NAMES) == {"V13", "V16", "V16A", "V16B", "V19"}


def test_v13_structure_matches_table1():
    spec = vgg("V13")
    assert spec.num_blocks == 5
    assert [block.depth for block in spec.conv_blocks] == [2, 2, 2, 2, 2]
    assert [layer.filters for layer in spec.conv_blocks[0].layers] == [64, 64]
    assert spec.conv_blocks[4].layers[0].filters == 512


def test_v16_has_the_1x1_convolutions_of_table1():
    spec = vgg("V16")
    assert [block.depth for block in spec.conv_blocks] == [2, 2, 3, 3, 3]
    assert spec.conv_blocks[2].layers[2].notation() == "1:256"
    assert spec.conv_blocks[4].layers[2].notation() == "1:512"


def test_v16a_first_block_is_wider_than_v16():
    assert vgg("V16A").conv_blocks[0].layers[0].filters == 128
    assert vgg("V16").conv_blocks[0].layers[0].filters == 64


def test_v16b_uses_3x3_instead_of_1x1_third_layers():
    spec = vgg("V16B")
    assert spec.conv_blocks[2].layers[2].notation() == "3:256"


def test_v19_has_four_layer_deep_blocks():
    assert [block.depth for block in vgg("V19").conv_blocks] == [2, 2, 4, 4, 4]


def test_vgg_conv_depths_match_names():
    assert vgg("V13").conv_depth() == 10
    assert vgg("V16").conv_depth() == 13
    assert vgg("V19").conv_depth() == 16


def test_unknown_vgg_variant_raises():
    with pytest.raises(ValueError, match="unknown VGG variant"):
        vgg("V99")


def test_width_scale_shrinks_parameter_count():
    assert count_parameters(vgg("V16", width_scale=0.1)) < count_parameters(vgg("V16")) / 20


def test_small_vgg_ensemble_returns_five_distinct_members():
    members = small_vgg_ensemble(width_scale=0.1)
    assert len(members) == 5
    assert len({m.name for m in members}) == 5


# ---------------------------------------------------------------------------
# V16 variant family (large ensembles)
# ---------------------------------------------------------------------------


def test_variant_family_size_and_uniqueness():
    family = v16_variant_family(30, width_scale=0.25, seed=0)
    assert len(family) == 30
    assert len({member.name for member in family}) == 30


def test_variant_family_base_member_is_v16():
    family = v16_variant_family(5, width_scale=1.0, seed=0)
    base = family[0]
    assert base.conv_blocks == vgg("V16").conv_blocks


def test_variant_family_members_differ_from_base_in_one_layer():
    family = v16_variant_family(20, width_scale=1.0, seed=1)
    base_blocks = family[0].conv_blocks
    for member in family[1:]:
        differences = 0
        for base_block, block in zip(base_blocks, member.conv_blocks):
            for base_layer, layer in zip(base_block.layers, block.layers):
                if base_layer != layer:
                    differences += 1
                    assert layer.filters >= base_layer.filters
                    assert layer.filter_size >= base_layer.filter_size
        assert differences == 1, member.name


def test_variant_family_is_hatchable_from_its_mothernet():
    family = v16_variant_family(15, width_scale=0.25, seed=2)
    mothernet = construct_mothernet(family)
    assert all(is_hatchable(mothernet, member) for member in family)


def test_variant_family_mothernet_equals_base_v16():
    family = v16_variant_family(10, width_scale=0.5, seed=3)
    mothernet = construct_mothernet(family)
    assert mothernet.conv_blocks == family[0].conv_blocks


def test_variant_family_is_deterministic_per_seed():
    a = v16_variant_family(8, seed=5)
    b = v16_variant_family(8, seed=5)
    assert [m.conv_blocks for m in a] == [m.conv_blocks for m in b]


def test_variant_family_rejects_zero_count():
    with pytest.raises(ValueError):
        v16_variant_family(0)


# ---------------------------------------------------------------------------
# ResNet family
# ---------------------------------------------------------------------------


def test_resnet_depths_available():
    assert RESNET_DEPTHS == (18, 34, 50, 101, 152)


def test_resnet18_unit_counts():
    spec = resnet(18)
    assert [block.depth for block in spec.conv_blocks] == [2, 2, 2, 2]
    assert spec.is_residual


def test_resnet152_unit_counts():
    assert [block.depth for block in resnet(152).conv_blocks] == [3, 8, 36, 3]


def test_unsupported_resnet_depth_raises():
    with pytest.raises(ValueError):
        resnet(42)


def test_resnet_variant_family_has_25_members():
    family = resnet_variant_family(width_scale=0.1)
    assert len(family) == 25
    assert len({member.name for member in family}) == 25


def test_resnet_variants_are_at_least_as_large_as_their_base():
    family = resnet_variant_family(width_scale=0.2)
    by_name = {member.name: member for member in family}
    for depth in RESNET_DEPTHS:
        base = count_parameters(by_name[f"ResNet{depth}-base"])
        for suffix in ("x2even", "x2odd", "p2even", "p2odd"):
            assert count_parameters(by_name[f"ResNet{depth}-{suffix}"]) >= base


def test_resnet_blocks_have_uniform_widths():
    for member in resnet_variant_family(width_scale=0.2)[:6]:
        for block in member.conv_blocks:
            assert len({layer.filters for layer in block.layers}) == 1


# ---------------------------------------------------------------------------
# MLP family
# ---------------------------------------------------------------------------


def test_mlp_family_size_and_distinctness():
    family = mlp_family(8, seed=0)
    assert len(family) == 8
    assert len({member.hidden_widths for member in family}) == 8


def test_mlp_family_members_are_hatchable_from_mothernet():
    family = mlp_family(6, base_width=16, seed=4)
    mothernet = construct_mothernet(family)
    assert all(is_hatchable(mothernet, member) for member in family)


def test_mlp_family_rejects_zero_count():
    with pytest.raises(ValueError):
        mlp_family(0)

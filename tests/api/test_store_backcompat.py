"""Store back-compat against real artifacts: bare v1/v2 directories keep
loading bitwise-identically as implicit generation 0, migration preserves
the weights exactly, and a crash-torn ``CURRENT`` write resolves old."""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest

from repro.api import EnsemblePredictor, load_ensemble_run, save_ensemble_run
from repro.api.artifacts import ARTIFACT_SCHEMA_V1, MANIFEST_NAME
from repro.core.artifact_store import (
    ArtifactStore,
    CURRENT_NAME,
    format_generation,
    resolve_artifact,
)
from repro.data.datasets import load_dataset


@pytest.fixture(scope="module")
def bare_artifact(tiny_result, tmp_path_factory):
    path = tmp_path_factory.mktemp("backcompat") / "artifact"
    save_ensemble_run(tiny_result.run, path)
    return path


@pytest.fixture(scope="module")
def probe_batch(tiny_result):
    return tiny_result.dataset.x_test[:16]


def test_bare_v2_loads_as_generation_zero_bitwise(bare_artifact, probe_batch):
    run = load_ensemble_run(bare_artifact)
    reference = run.ensemble.predict_proba(probe_batch, method="average")
    predictor = EnsemblePredictor.load(bare_artifact)
    assert predictor.generation == 0
    np.testing.assert_array_equal(
        predictor.predict_proba(probe_batch, method="average"), reference
    )
    # Bare directories keep their exact pre-store info() surface: no
    # generation/store keys leak into the metadata.
    info = predictor.info()
    assert "generation" not in info
    assert "store_root" not in info


def test_bare_v1_loads_as_generation_zero_bitwise(
    bare_artifact, probe_batch, tmp_path
):
    v1 = tmp_path / "v1-artifact"
    shutil.copytree(bare_artifact, v1)
    manifest_path = v1 / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    manifest["schema"] = ARTIFACT_SCHEMA_V1
    for member in manifest["members"]:
        member.pop("training_result", None)
    manifest_path.write_text(json.dumps(manifest))

    reference = load_ensemble_run(bare_artifact).ensemble.predict_proba(
        probe_batch, method="average"
    )
    predictor = EnsemblePredictor.load(v1)
    assert predictor.generation == 0
    np.testing.assert_array_equal(
        predictor.predict_proba(probe_batch, method="average"), reference
    )


def test_migrated_store_serves_identical_weights(
    bare_artifact, probe_batch, tmp_path
):
    root = tmp_path / "store"
    shutil.copytree(bare_artifact, root)
    reference = EnsemblePredictor.load(bare_artifact).predict_proba(
        probe_batch, method="average"
    )
    store = ArtifactStore.open(root)
    assert store.current_generation() == 0
    predictor = EnsemblePredictor.load(root)
    assert predictor.generation == 0
    assert predictor.metadata["generation"] == 0
    assert predictor.metadata["store_root"] == str(root)
    np.testing.assert_array_equal(
        predictor.predict_proba(probe_batch, method="average"), reference
    )


def test_torn_current_serves_old_generation(
    bare_artifact, tiny_result, probe_batch, tmp_path
):
    """A crash between writing the CURRENT temp file and the rename must
    leave readers on the old generation — and reload() must agree."""
    root = tmp_path / "store"
    shutil.copytree(bare_artifact, root)
    store = ArtifactStore.open(root)
    generation = store.add_generation(tiny_result.run, parent_generation=0)
    assert generation == 1
    # The torn write: temp file present, pointer still the old one.
    (root / f"{CURRENT_NAME}.tmp.999").write_text(format_generation(1) + "\n")
    resolved = resolve_artifact(root)
    assert resolved.generation == 0

    predictor = EnsemblePredictor.load(root)
    assert predictor.generation == 0
    assert predictor.reload() == 0  # re-resolving the root stays on gen 0

    # Completing the promotion moves everyone forward.
    store.promote(1)
    assert predictor.reload() == 1
    reference = load_ensemble_run(store.generation_path(1)).ensemble.predict_proba(
        probe_batch, method="average"
    )
    np.testing.assert_array_equal(
        predictor.predict_proba(probe_batch, method="average"), reference
    )


def test_predictor_reload_tracks_current(bare_artifact, tmp_path, experiment_dict):
    from repro.api import run_experiment

    root = tmp_path / "store"
    shutil.copytree(bare_artifact, root)
    store = ArtifactStore.open(root)
    predictor = EnsemblePredictor.load(root)
    old = predictor.predict_proba(
        load_dataset(**experiment_dict()["dataset"]).x_test[:8]
    )

    fresh = run_experiment(
        experiment_dict(dataset=dict(experiment_dict()["dataset"], seed=6))
    )
    generation = store.add_generation(fresh.run, parent_generation=0)
    store.promote(generation)
    assert predictor.reload() == generation
    assert predictor.metadata["generation"] == generation
    new = predictor.predict_proba(
        load_dataset(**experiment_dict()["dataset"]).x_test[:8]
    )
    reference = load_ensemble_run(
        store.generation_path(generation)
    ).ensemble.predict_proba(
        load_dataset(**experiment_dict()["dataset"]).x_test[:8], method="average"
    )
    np.testing.assert_array_equal(new, reference)
    assert not np.array_equal(old, new)  # the weights really changed

"""Schema-v2 artifacts persist per-epoch training histories and parallel
makespans; schema-v1 artifacts (no histories) keep loading."""

import json

import pytest

from repro.api import (
    ARTIFACT_SCHEMA,
    load_ensemble_run,
    read_manifest,
    run_experiment,
    save_ensemble_run,
)
from repro.api.artifacts import ARTIFACT_SCHEMA_V1, MANIFEST_NAME


@pytest.fixture(scope="module")
def trained(experiment_dict):
    result = run_experiment(experiment_dict())
    # Simulate a parallel member phase so the makespan round-trips too.
    result.run.ledger.record_phase_makespan("member", 1.25)
    return result


def test_schema_is_v2(trained, tmp_path):
    path = save_ensemble_run(trained.run, tmp_path / "artifact")
    manifest = read_manifest(path)
    assert ARTIFACT_SCHEMA == "repro.ensemble_run/v2"
    assert manifest["schema"] == ARTIFACT_SCHEMA
    assert manifest["ledger"]["phase_makespans"] == {"member": 1.25}
    assert manifest["ledger_summary"]["makespan_seconds"] == pytest.approx(
        trained.run.ledger.makespan_seconds
    )


def test_histories_survive_round_trip(trained, tmp_path):
    path = save_ensemble_run(trained.run, tmp_path / "artifact")
    restored = load_ensemble_run(path)

    assert set(restored.member_results) == set(trained.run.member_results)
    for member, restored_member in zip(
        trained.run.ensemble.members, restored.ensemble.members
    ):
        original = member.training_result
        loaded = restored_member.training_result
        assert loaded is not None
        assert loaded.epochs_run == original.epochs_run
        assert loaded.converged == original.converged
        assert loaded.samples_seen == original.samples_seen
        assert loaded.loss_curve() == original.loss_curve()
        assert [r.train_accuracy for r in loaded.history] == [
            r.train_accuracy for r in original.history
        ]
    assert restored.ledger.phase_makespans == {"member": 1.25}
    assert restored.ledger.makespan_seconds == pytest.approx(
        trained.run.ledger.makespan_seconds
    )


def test_v1_artifacts_still_load(trained, tmp_path):
    """A v1 manifest (schema tag, no histories, no makespans) loads fine;
    members simply carry no training histories."""
    path = save_ensemble_run(trained.run, tmp_path / "artifact")
    manifest_path = path / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    manifest["schema"] = ARTIFACT_SCHEMA_V1
    for member in manifest["members"]:
        member.pop("training_result", None)
    manifest["ledger"].pop("phase_makespans", None)
    manifest["ledger_summary"].pop("makespan_seconds", None)
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))

    restored = load_ensemble_run(path)
    assert restored.member_results == {}
    assert all(m.training_result is None for m in restored.ensemble.members)
    assert restored.ledger.phase_makespans == {}
    # Weights and the ledger records still round-trip.
    assert len(restored.ensemble) == len(trained.run.ensemble)
    assert len(restored.ledger.records) == len(trained.run.ledger.records)


def test_unknown_schema_rejected(trained, tmp_path):
    path = save_ensemble_run(trained.run, tmp_path / "artifact")
    manifest_path = path / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    manifest["schema"] = "repro.ensemble_run/v99"
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(ValueError, match="unsupported artifact schema"):
        read_manifest(path)

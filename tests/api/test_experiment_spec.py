"""Tests for the declarative ExperimentSpec and run_experiment."""

import numpy as np
import pytest

from repro.api import ExperimentSpec, run_experiment
from repro.api.spec import training_config_from_dict, training_config_to_dict
from repro.arch import mlp, spec_to_dict
from repro.core import FullDataTrainer, MotherNetsTrainer
from repro.nn import TrainingConfig

# ---------------------------------------------------------------------------
# TrainingConfig <-> dict
# ---------------------------------------------------------------------------


def test_training_config_round_trips():
    config = TrainingConfig(
        max_epochs=7, batch_size=32, learning_rate=0.05, momentum=0.8,
        weight_decay=1e-4, convergence_patience=2, convergence_tolerance=5e-4,
        min_epochs=2, shuffle=False, loss="softmax_cross_entropy",
    )
    restored = training_config_from_dict(training_config_to_dict(config))
    assert training_config_to_dict(restored) == training_config_to_dict(config)


def test_training_config_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown TrainingConfig keys"):
        training_config_from_dict({"max_epochs": 3, "optimizer": "adam"})


# ---------------------------------------------------------------------------
# ExperimentSpec construction and (de)serialisation
# ---------------------------------------------------------------------------


def test_spec_json_round_trip(tiny_spec):
    restored = ExperimentSpec.from_json(tiny_spec.to_json())
    assert restored.to_dict() == tiny_spec.to_dict()


def test_spec_accepts_explicit_member_dicts(experiment_dict):
    members = [spec_to_dict(mlp(f"m{i}", 12, [8 + 4 * i], 4)) for i in range(2)]
    spec = ExperimentSpec.from_dict(experiment_dict(members=members))
    specs = spec.member_specs()
    assert [s.name for s in specs] == ["m0", "m1"]
    restored = ExperimentSpec.from_json(spec.to_json())
    assert [s.name for s in restored.member_specs()] == ["m0", "m1"]


def test_spec_rejects_unknown_keys(experiment_dict):
    with pytest.raises(ValueError, match="unknown ExperimentSpec keys"):
        ExperimentSpec.from_dict(experiment_dict(epochs=3))


def test_spec_rejects_unknown_approach_eagerly(experiment_dict):
    with pytest.raises(KeyError, match="unknown trainer"):
        ExperimentSpec.from_dict(experiment_dict(approach="boosting"))


def test_spec_rejects_unknown_member_family(experiment_dict):
    with pytest.raises(ValueError, match="unknown member family"):
        ExperimentSpec.from_dict(
            experiment_dict(members={"family": "transformers", "count": 2})
        )


def test_spec_rejects_bad_dtype_and_dataset(experiment_dict):
    with pytest.raises(ValueError, match="dtype"):
        ExperimentSpec.from_dict(experiment_dict(dtype="float16"))
    with pytest.raises(ValueError, match="dataset"):
        ExperimentSpec.from_dict(experiment_dict(dataset={"train_samples": 3}))


def test_spec_file_round_trip(tmp_path, tiny_spec):
    path = tiny_spec.save(tmp_path / "exp.json")
    assert ExperimentSpec.from_file(path).to_dict() == tiny_spec.to_dict()


# ---------------------------------------------------------------------------
# run_experiment: registry-resolved approaches
# ---------------------------------------------------------------------------


def test_run_experiment_mothernets(tiny_result):
    run = tiny_result.run
    assert run.approach == "mothernets"
    assert len(run.ensemble) == 3
    assert all(member.source == "hatched" for member in run.ensemble.members)
    assert run.ensemble.super_learner_weights is not None  # super_learner: true
    assert run.ledger.total_seconds > 0
    errors = tiny_result.evaluate(methods=("average", "vote", "super_learner"))
    assert set(errors) == {"average", "vote", "super_learner"}


@pytest.mark.parametrize("approach,expected", [("full-data", "full_data"), ("bagging", "bagging")])
def test_run_experiment_baselines_by_registry_name(tiny_result, experiment_dict, approach, expected):
    cfg = experiment_dict(approach=approach, trainer={}, super_learner=False)
    result = run_experiment(cfg, dataset=tiny_result.dataset)
    assert result.run.approach == expected
    assert len(result.ensemble) == 3
    assert all(member.source == "scratch" for member in result.run.ensemble.members)


def test_run_experiment_snapshot_by_registry_name(tiny_result, experiment_dict):
    cfg = experiment_dict(
        approach="snapshot",
        members=[spec_to_dict(mlp("mono", 12, [10], 4))],
        trainer={"num_snapshots": 2, "epochs_per_cycle": 2},
        super_learner=False,
    )
    result = run_experiment(cfg, dataset=tiny_result.dataset)
    assert result.run.approach == "snapshot"
    assert len(result.ensemble) == 2


def test_run_experiment_accepts_plain_dict(tiny_result, experiment_dict):
    cfg = experiment_dict(approach="full-data", trainer={}, super_learner=False)
    result = run_experiment(cfg, dataset=tiny_result.dataset)
    assert isinstance(result.spec, ExperimentSpec)


def test_run_experiment_dtype_override(tiny_result, experiment_dict):
    cfg = experiment_dict(
        approach="full-data", trainer={}, super_learner=False, dtype="float64",
        training={"max_epochs": 1, "batch_size": 64},
    )
    result = run_experiment(cfg, dataset=tiny_result.dataset)
    assert all(m.model.dtype == np.float64 for m in result.ensemble.members)
    # The global default is restored afterwards (tiny_result trained in float32).
    assert tiny_result.ensemble.members[0].model.dtype == np.float32


def test_run_experiment_summary_is_json_friendly(tiny_result):
    import json

    summary = tiny_result.summary()
    assert summary["experiment"] == "tiny"
    assert summary["num_members"] == 3
    json.dumps(summary)  # must not raise


def test_backward_compatible_direct_trainer_calls(tiny_result):
    """The pre-API entry points keep working unchanged next to run_experiment."""
    dataset = tiny_result.dataset
    specs = tiny_result.spec.member_specs()
    config = TrainingConfig(max_epochs=2, batch_size=64)
    for trainer in (MotherNetsTrainer(config, tau=0.3), FullDataTrainer(config)):
        run = trainer.train(specs, dataset, seed=0)
        assert len(run.ensemble) == len(specs)

"""Shared fixtures for the api test modules: one tiny declarative experiment,
trained once per session and reused by spec/artifact/predictor/CLI tests."""

import pytest

from repro.api import ExperimentSpec, run_experiment


def tiny_experiment_dict(**overrides):
    """A complete, fast (<1s) declarative experiment description."""
    base = {
        "name": "tiny",
        "dataset": {
            "name": "tabular",
            "train_samples": 192,
            "test_samples": 64,
            "num_classes": 4,
            "num_features": 12,
            "class_separation": 2.0,
            "seed": 5,
        },
        "members": {
            "family": "mlp",
            "count": 3,
            "input_features": 12,
            "num_classes": 4,
            "base_width": 10,
            "seed": 1,
        },
        "approach": "mothernets",
        "training": {"max_epochs": 3, "batch_size": 64, "learning_rate": 0.1},
        "trainer": {"tau": 0.3},
        "seed": 0,
        "super_learner": True,
    }
    base.update(overrides)
    return base


@pytest.fixture(scope="session")
def experiment_dict():
    """The factory itself, so tests can build variations."""
    return tiny_experiment_dict


@pytest.fixture(scope="session")
def tiny_spec():
    return ExperimentSpec.from_dict(tiny_experiment_dict())


@pytest.fixture(scope="session")
def tiny_result(tiny_spec):
    return run_experiment(tiny_spec)

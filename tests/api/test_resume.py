"""In-process checkpoint/resume integration: every trainer restores bitwise.

These tests drive ``run_experiment(..., checkpoint_dir=...)`` twice: the
first run journals every finished network (and deliberately keeps the
journal), the second resumes with ``resume=True`` and must restore the whole
ensemble bitwise — zero retraining — for the mothernets pipeline (serial and
parallel, including members that alias their cluster's MotherNet), the
scratch baselines, and the snapshot-cycle chain.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import run_experiment
from repro.arch.zoo import mlp_family
from repro.obs.metrics import get_registry


def _experiment(approach="mothernets", workers=1, **overrides):
    base = {
        "name": "resume-tiny",
        "dataset": {
            "name": "tabular",
            "train_samples": 192,
            "test_samples": 48,
            "num_classes": 3,
            "num_features": 10,
            "seed": 11,
        },
        "members": {
            "family": "mlp",
            "count": 3,
            "input_features": 10,
            "num_classes": 3,
            "base_width": 8,
            "seed": 2,
        },
        "approach": approach,
        "training": {"max_epochs": 2, "batch_size": 64, "workers": workers},
        "trainer": {"tau": 0.3} if approach == "mothernets" else {},
        "seed": 4,
    }
    base.update(overrides)
    return base


def _assert_identical_runs(first, second):
    assert [m.name for m in first.ensemble.members] == [
        m.name for m in second.ensemble.members
    ]
    for a, b in zip(first.ensemble.members, second.ensemble.members):
        wa, wb = a.model.get_weights(), b.model.get_weights()
        for layer in wa:
            for key in wa[layer]:
                np.testing.assert_array_equal(wa[layer][key], wb[layer][key], err_msg=a.name)
        # Restored members reuse the journaled ledger facts verbatim — a
        # retrained member would book a different wall clock.
        assert a.training_seconds == b.training_seconds
    assert [(r.network, r.epochs, r.wall_clock_seconds) for r in first.ledger.records] == [
        (r.network, r.epochs, r.wall_clock_seconds) for r in second.ledger.records
    ]


@pytest.mark.parametrize("workers", [1, 2])
def test_mothernets_full_resume_is_bitwise(tmp_path, workers):
    """Resume after a completed run restores every network — MotherNets and
    members, aliased members included — without retraining anything."""
    config = _experiment(workers=workers)
    first = run_experiment(config, checkpoint_dir=tmp_path)
    resumed = run_experiment(config, checkpoint_dir=tmp_path, resume=True)

    _assert_identical_runs(first.run, resumed.run)
    expected = len(resumed.run.ensemble.members) + len(resumed.run.mothernet_models)
    assert resumed.checkpoint.restored == expected
    gauge = get_registry().get("repro_training_resume_restored_networks")
    assert gauge is not None and gauge.value == expected


@pytest.mark.parametrize("approach", ["full-data", "bagging"])
def test_scratch_baselines_full_resume_is_bitwise(tmp_path, approach):
    config = _experiment(approach=approach)
    first = run_experiment(config, checkpoint_dir=tmp_path)
    resumed = run_experiment(config, checkpoint_dir=tmp_path, resume=True)
    _assert_identical_runs(first.run, resumed.run)
    assert resumed.checkpoint.restored == len(resumed.run.ensemble.members)


def test_snapshot_resume_restores_cycle_prefix(tmp_path):
    """Snapshot cycles are a chain (cycle N trains from cycle N-1's weights);
    the journal restores the contiguous done prefix and the chain continues
    bitwise from the restored weights."""
    spec = mlp_family(count=1, input_features=10, num_classes=3, base_width=8, seed=2)[0]
    config = _experiment(
        approach="snapshot",
        members=[spec],
        trainer={"num_snapshots": 3, "epochs_per_cycle": 1},
    )
    first = run_experiment(config, checkpoint_dir=tmp_path)

    # Drop the *last* cycle from the journal: resume restores cycles 0-1 and
    # retrains only cycle 2 — from cycle 1's restored weights.
    members_dir = tmp_path / "checkpoint" / "members"
    markers = sorted(members_dir.glob("*.json"))
    assert len(markers) == 3
    markers[-1].unlink()
    markers[-1].with_suffix(".npz").unlink()

    resumed = run_experiment(config, checkpoint_dir=tmp_path, resume=True)
    assert resumed.checkpoint.restored == 2
    for a, b in zip(first.run.ensemble.members, resumed.run.ensemble.members):
        wa, wb = a.model.get_weights(), b.model.get_weights()
        for layer in wa:
            for key in wa[layer]:
                np.testing.assert_array_equal(wa[layer][key], wb[layer][key], err_msg=a.name)


def test_resume_metrics_not_double_counted(tmp_path):
    """Restored networks keep the cost *ledger* complete but must not inflate
    the cumulative training-seconds counters a second time."""
    config = _experiment(approach="full-data")
    run_experiment(config, checkpoint_dir=tmp_path)
    counter = get_registry().get("repro_ensemble_networks_trained_total")
    assert counter is not None
    before = {values: value for values, value in counter.samples()}
    resumed = run_experiment(config, checkpoint_dir=tmp_path, resume=True)
    assert resumed.checkpoint.restored == len(resumed.run.ensemble.members)
    after = {values: value for values, value in counter.samples()}
    assert after == before

"""Retrain loop: shadow-evaluation gate, promotion/rejection bookkeeping,
lineage provenance (hatched members), and the CLI verb."""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.api import retrain_cycle, retrain_loop, save_ensemble_run
from repro.core.artifact_store import ArtifactStore


@pytest.fixture()
def store(tiny_result, tmp_path):
    root = tmp_path / "store"
    save_ensemble_run(tiny_result.run, root)
    return ArtifactStore.open(root)


def test_cycle_promotes_under_loose_gate(store, tiny_spec):
    report = retrain_cycle(
        store, tiny_spec, data_seed=11, max_error_delta=100.0, method="average"
    )
    assert report.promoted is True
    assert report.generation == 1
    assert report.parent_generation == 0
    assert store.current_generation() == 1

    lineage = store.lineage(1)
    assert lineage["parent_generation"] == 0
    assert lineage["promotion"]["status"] == "promoted"
    gate = lineage["gate"]
    assert gate["max_error_delta"] == 100.0
    assert gate["baseline_generation"] == 0
    assert gate["data_seed"] == 11
    # MotherNets runs hatch their members — the paper's cheap-refresh story.
    origins = {row["origin"] for row in lineage["members"]}
    assert origins == {"hatched"}
    assert report.members_hatched == report.members_total > 0


def test_cycle_rejects_under_impossible_gate(store, tiny_spec):
    # Error rates live in [0, 100]; a -200 delta can never pass.
    report = retrain_cycle(
        store, tiny_spec, data_seed=12, max_error_delta=-200.0, method="average"
    )
    assert report.promoted is False
    assert report.generation == 1
    assert store.current_generation() == 0  # pointer untouched
    promotion = store.lineage(1)["promotion"]
    assert promotion["status"] == "rejected"
    assert "shadow evaluation failed" in promotion["reason"]
    # The rejected generation stays on disk for forensics.
    assert store.generations() == [0, 1]


def test_loop_runs_deterministic_distinct_seeds(store, tiny_spec):
    reports = retrain_loop(
        store, tiny_spec, max_cycles=2, max_error_delta=100.0, interval=0.0
    )
    assert [report.generation for report in reports] == [1, 2]
    assert [report.parent_generation for report in reports] == [0, 1]
    base_seed = dict(tiny_spec.dataset)["seed"]
    assert [report.data_seed for report in reports] == [base_seed + 1, base_seed + 2]
    assert store.current_generation() == 2


def test_cli_retrain_once(tiny_result, tmp_path, experiment_dict):
    root = tmp_path / "store"
    save_ensemble_run(tiny_result.run, root)
    config = tmp_path / "exp.json"
    config.write_text(json.dumps(experiment_dict()))
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "retrain",
            "--store",
            str(root),
            "--config",
            str(config),
            "--once",
            "--max-error-delta",
            "100",
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(proc.stdout)
    assert report["current_generation"] == 1
    assert len(report["cycles"]) == 1
    assert report["cycles"][0]["promoted"] is True

    # Store-aware inspect: generation ledger with lineage + promotion.
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "inspect", "--artifact", str(root)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    inspected = json.loads(proc.stdout)
    assert inspected["generation"] == 1
    ledger = inspected["store"]
    assert ledger["current_generation"] == 1
    rows = {row["generation"]: row for row in ledger["generations"]}
    assert rows[0]["promotion"] == "promoted"
    assert rows[1]["current"] is True
    assert rows[1]["parent_generation"] == 0
    assert {m["origin"] for m in rows[1]["members"]} == {"hatched"}

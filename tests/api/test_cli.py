"""End-to-end tests for the `python -m repro` CLI (train / predict / inspect)."""

import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.api import EnsemblePredictor


@pytest.fixture(scope="module")
def cli_workspace(tmp_path_factory, experiment_dict):
    """Run `repro train` once; share the artifact across CLI tests."""
    root = tmp_path_factory.mktemp("cli")
    config = root / "experiment.json"
    config.write_text(json.dumps(experiment_dict()))
    artifact = root / "artifact"
    inputs = root / "x_test.npy"
    code = main(
        [
            "train",
            "--config", str(config),
            "--output", str(artifact),
            "--dump-test-inputs", str(inputs),
        ]
    )
    assert code == 0
    return root, config, artifact, inputs


def test_train_produces_artifact(cli_workspace, capsys):
    _, _, artifact, inputs = cli_workspace
    assert (artifact / "manifest.json").is_file()
    assert inputs.is_file()


def test_predict_labels_match_served_ensemble(cli_workspace, capsys):
    root, _, artifact, inputs = cli_workspace
    out = root / "preds.npy"
    code = main(
        ["predict", "--artifact", str(artifact), "--input", str(inputs), "--output", str(out)]
    )
    assert code == 0
    capsys.readouterr()
    labels = np.load(out)
    expected = EnsemblePredictor.load(str(artifact)).predict(np.load(inputs))
    np.testing.assert_array_equal(labels, expected)


def test_predict_proba_to_stdout(cli_workspace, capsys):
    _, _, artifact, inputs = cli_workspace
    code = main(
        ["predict", "--artifact", str(artifact), "--input", str(inputs), "--proba",
         "--method", "super_learner"]
    )
    assert code == 0
    probs = np.asarray(json.loads(capsys.readouterr().out))
    assert probs.shape == (64, 4)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)


def test_inspect_reports_manifest_summary(cli_workspace, capsys):
    _, _, artifact, _ = cli_workspace
    code = main(["inspect", "--artifact", str(artifact)])
    assert code == 0
    info = json.loads(capsys.readouterr().out)
    assert info["approach"] == "mothernets"
    assert info["num_members"] == 3
    assert info["super_learner"] is True


def test_inspect_surfaces_makespans_and_member_histories(cli_workspace, capsys):
    """`repro inspect` must report what the v2 artifact persists: the cost
    ledger's phase makespans/totals and a per-member training-history
    summary (epochs, final loss/accuracy, mean epoch seconds)."""
    _, _, artifact, _ = cli_workspace
    code = main(["inspect", "--artifact", str(artifact)])
    assert code == 0
    info = json.loads(capsys.readouterr().out)

    training = info["training"]
    assert training["total_seconds"] > 0
    assert training["makespan_seconds"] > 0
    assert training["total_epochs"] > 0
    assert set(training["seconds_by_phase"]) == {"mothernet", "member"}
    assert isinstance(training["phase_makespans"], dict)  # {} for serial runs

    members = info["members"]
    assert len(members) == info["num_members"]
    for member in members:
        assert member["epochs"] > 0
        assert member["training_seconds"] >= 0
        assert isinstance(member["final_train_loss"], float)
        assert isinstance(member["final_train_accuracy"], float)
        assert member["mean_epoch_seconds"] > 0
        assert "converged" in member


def test_cli_reports_errors_without_traceback(cli_workspace, tmp_path, capsys):
    _, _, artifact, inputs = cli_workspace
    # Unknown combination method.
    code = main(["predict", "--artifact", str(artifact), "--input", str(inputs),
                 "--method", "oracle"])
    assert code == 1
    assert "error:" in capsys.readouterr().err
    # Not an artifact directory.
    code = main(["inspect", "--artifact", str(tmp_path)])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_train_rejects_existing_artifact(cli_workspace, capsys):
    _, config, artifact, _ = cli_workspace
    code = main(["train", "--config", str(config), "--output", str(artifact)])
    assert code == 1
    assert "already exists" in capsys.readouterr().err


def test_version_flag_prints_package_version(capsys):
    import repro

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

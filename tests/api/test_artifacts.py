"""Artifact round-trip tests: a trained ensemble saved with
save_ensemble_run and reloaded with load_ensemble_run must serve bitwise
identical predictions and preserve its cost ledger — under both compute
dtypes."""

import json

import numpy as np
import pytest

from repro.api import (
    ARTIFACT_SCHEMA,
    load_ensemble_run,
    read_manifest,
    run_experiment,
    save_ensemble_run,
)


@pytest.fixture(scope="module", params=["float32", "float64"])
def dtype_result(request, experiment_dict):
    """A MotherNets run trained under each compute dtype."""
    cfg = experiment_dict(dtype=request.param)
    return request.param, run_experiment(cfg)


def test_round_trip_is_bitwise_identical(tmp_path, dtype_result):
    dtype, result = dtype_result
    path = save_ensemble_run(result.run, tmp_path / "artifact")
    restored = load_ensemble_run(path)

    x = result.dataset.x_test
    original = result.ensemble.predict_proba_all(x)
    reloaded = restored.ensemble.predict_proba_all(x)
    assert original.dtype == np.dtype(dtype)
    assert reloaded.dtype == original.dtype
    np.testing.assert_array_equal(reloaded, original)  # bitwise, not approx

    # Combined serving output is bitwise identical too, for every method.
    for method in ("average", "vote", "super_learner"):
        np.testing.assert_array_equal(
            restored.ensemble.predict_proba(x, method=method),
            result.ensemble.predict_proba(x, method=method),
        )


def test_round_trip_preserves_ledger_and_metadata(tmp_path, dtype_result):
    dtype, result = dtype_result
    path = save_ensemble_run(result.run, tmp_path / "artifact")
    restored = load_ensemble_run(path)

    assert restored.approach == result.run.approach
    assert restored.ledger.total_seconds == result.run.ledger.total_seconds
    assert restored.ledger.total_epochs == result.run.ledger.total_epochs
    assert restored.ledger.total_work_units == result.run.ledger.total_work_units
    assert restored.ledger.seconds_by_phase() == result.run.ledger.seconds_by_phase()
    assert (
        restored.ledger.seconds_by_compute_phase()
        == result.run.ledger.seconds_by_compute_phase()
    )
    assert restored.config.max_epochs == result.run.config.max_epochs

    for original, reloaded in zip(result.run.ensemble.members, restored.ensemble.members):
        assert reloaded.name == original.name
        assert reloaded.source == original.source
        assert reloaded.cluster_id == original.cluster_id
        assert reloaded.training_seconds == original.training_seconds
        assert reloaded.model.dtype == np.dtype(dtype)

    np.testing.assert_array_equal(
        restored.ensemble.super_learner_weights,
        result.run.ensemble.super_learner_weights,
    )


def test_manifest_contents(tmp_path, dtype_result):
    dtype, result = dtype_result
    path = save_ensemble_run(result.run, tmp_path / "artifact")
    manifest = read_manifest(path)
    assert manifest["schema"] == ARTIFACT_SCHEMA
    assert manifest["approach"] == "mothernets"
    assert manifest["dtype"] == dtype
    assert manifest["num_classes"] == 4
    assert len(manifest["members"]) == 3
    assert manifest["ledger_summary"]["total_seconds"] == result.run.ledger.total_seconds
    for meta in manifest["members"]:
        assert (path / meta["weights"]).is_file()
        assert (path / meta["spec"]).is_file()


def test_save_refuses_to_overwrite(tmp_path, dtype_result):
    _, result = dtype_result
    path = save_ensemble_run(result.run, tmp_path / "artifact")
    with pytest.raises(FileExistsError):
        save_ensemble_run(result.run, path)


def test_load_rejects_non_artifact_and_bad_schema(tmp_path):
    with pytest.raises(FileNotFoundError, match="not an ensemble artifact"):
        load_ensemble_run(tmp_path)
    (tmp_path / "manifest.json").write_text(json.dumps({"schema": "other/v9"}))
    with pytest.raises(ValueError, match="unsupported artifact schema"):
        load_ensemble_run(tmp_path)


def test_load_detects_spec_sidecar_corruption(tmp_path, dtype_result):
    _, result = dtype_result
    path = save_ensemble_run(result.run, tmp_path / "artifact")
    manifest = read_manifest(path)
    sidecar = path / manifest["members"][0]["spec"]
    other = path / manifest["members"][1]["spec"]
    sidecar.write_text(other.read_text())
    with pytest.raises(ValueError, match="corrupted"):
        load_ensemble_run(path)

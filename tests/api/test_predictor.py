"""Tests for the EnsemblePredictor serving facade."""

import numpy as np
import pytest

from repro.api import EnsemblePredictor, save_ensemble_run


@pytest.fixture(scope="module")
def artifact(tmp_path_factory, tiny_result):
    path = tmp_path_factory.mktemp("serving") / "artifact"
    save_ensemble_run(tiny_result.run, path)
    return path


@pytest.fixture(scope="module")
def predictor(artifact):
    return EnsemblePredictor.load(artifact)


def test_loaded_predictor_matches_in_memory_ensemble(predictor, tiny_result):
    x = tiny_result.dataset.x_test
    for method in ("average", "vote", "super_learner"):
        np.testing.assert_array_equal(
            predictor.predict_proba(x, method=method),
            tiny_result.ensemble.predict_proba(x, method=method),
        )
        np.testing.assert_array_equal(
            predictor.predict(x, method=method),
            tiny_result.ensemble.predict(x, method=method),
        )


def test_from_run_serves_without_disk(tiny_result):
    predictor = EnsemblePredictor.from_run(tiny_result.run)
    x = tiny_result.dataset.x_test[:8]
    np.testing.assert_array_equal(
        predictor.predict(x), tiny_result.ensemble.predict(x, method="average")
    )


def test_member_probabilities_shape(predictor, tiny_result):
    x = tiny_result.dataset.x_test[:5]
    probs = predictor.member_probabilities(x)
    assert probs.shape == (3, 5, 4)


def test_single_sample_gets_batch_axis(predictor, tiny_result):
    x = tiny_result.dataset.x_test
    single = predictor.predict_proba(x[0])
    assert single.shape == (1, 4)
    np.testing.assert_array_equal(single, predictor.predict_proba(x[:1]))


def test_input_shape_validation(predictor):
    with pytest.raises(ValueError, match="input shape"):
        predictor.predict(np.zeros((4, 7)))  # 12 features expected
    with pytest.raises(ValueError, match="input shape"):
        predictor.predict(np.zeros((4, 12, 2)))
    with pytest.raises(ValueError, match="empty batch"):
        predictor.predict(np.zeros((0, 12)))


def test_input_dtype_validation(predictor):
    with pytest.raises(TypeError, match="numeric"):
        predictor.predict(np.array([["a"] * 12], dtype=object))
    with pytest.raises(TypeError, match="numeric"):
        predictor.predict(np.zeros((2, 12), dtype=bool))
    # Integer inputs are legitimate (e.g. raw pixel values) and are cast.
    labels = predictor.predict(np.zeros((2, 12), dtype=np.int64))
    assert labels.shape == (2,)


def test_method_validation(predictor, tiny_result):
    with pytest.raises(ValueError, match="unknown combination method"):
        EnsemblePredictor.from_run(tiny_result.run, method="oracle")
    # The per-call path validates through the shared resolve_combination_method
    # helper, so the wording matches the constructor's.
    with pytest.raises(ValueError, match="unknown combination method"):
        predictor.predict(tiny_result.dataset.x_test[:2], method="oracle")


def test_super_learner_requires_weights(tiny_result, experiment_dict):
    from repro.api import run_experiment

    bare = run_experiment(
        experiment_dict(approach="bagging", trainer={}, super_learner=False),
        dataset=tiny_result.dataset,
    )
    predictor = EnsemblePredictor.from_run(bare.run)
    with pytest.raises(RuntimeError, match="super-learner"):
        predictor.predict(tiny_result.dataset.x_test[:2], method="super_learner")


def test_info_is_json_friendly(predictor):
    import json

    info = predictor.info()
    assert info["num_members"] == 3
    assert info["num_classes"] == 4
    assert info["input_shape"] == [12]
    assert info["super_learner"] is True
    assert info["approach"] == "mothernets"
    assert len(info["members"]) == 3
    json.dumps(info)  # must not raise

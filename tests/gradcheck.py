"""Numerical gradient checking utilities shared by the layer tests.

The substrate uses hand-written layer-wise backward passes; every layer's
analytic gradients are verified against central finite differences here.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.layers.base import CompositeLayer, Layer


def _promote_to_float64(layer: Layer) -> None:
    """Upcast a layer's parameters and state to float64 in place.

    Central differences with ``eps=1e-5`` are meaningless at float32
    resolution, so gradient checking always runs the layer in float64
    regardless of the configured compute dtype.
    """
    if isinstance(layer, CompositeLayer):
        for sub in layer.sublayers():
            _promote_to_float64(sub)
    for key, value in layer.params.items():
        layer.params[key] = np.asarray(value, dtype=np.float64)
    for key, value in layer.state.items():
        if np.issubdtype(np.asarray(value).dtype, np.floating):
            layer.state[key] = np.asarray(value, dtype=np.float64)


def numerical_gradient(fn: Callable[[], float], tensor: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` with respect to
    ``tensor`` (perturbed in place)."""
    grad = np.zeros_like(tensor)
    flat = tensor.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn()
        flat[i] = original - eps
        minus = fn()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_layer_gradients(
    layer: Layer,
    x: np.ndarray,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    check_params: bool = True,
) -> None:
    """Verify the layer's input and parameter gradients against finite
    differences for the scalar loss ``sum(weights * forward(x))``."""
    _promote_to_float64(layer)
    x = np.asarray(x, dtype=np.float64)
    rng = np.random.default_rng(0)
    out = layer.forward(x.copy(), training=True)
    loss_weights = rng.normal(size=out.shape)

    def loss_from_input() -> float:
        return float(np.sum(layer.forward(x, training=True) * loss_weights))

    # Analytic gradients.  Copy the returned gradient: per the Layer.backward
    # ownership contract it may be a view into reused workspace, and the
    # numeric loop below runs many more forward passes before the assert.
    layer.zero_grads()
    layer.forward(x, training=True)
    grad_input = np.array(layer.backward(loss_weights), copy=True)

    numeric_input = numerical_gradient(loss_from_input, x)
    np.testing.assert_allclose(grad_input, numeric_input, rtol=rtol, atol=atol)

    if not check_params:
        return
    for name, param in layer.params.items():

        def loss_from_param() -> float:
            return float(np.sum(layer.forward(x, training=True) * loss_weights))

        numeric = numerical_gradient(loss_from_param, param)
        # Re-run the analytic pass after the perturbations above restored params.
        layer.zero_grads()
        layer.forward(x, training=True)
        layer.backward(loss_weights)
        np.testing.assert_allclose(
            layer.grads[name], numeric, rtol=rtol, atol=atol, err_msg=f"parameter {name}"
        )

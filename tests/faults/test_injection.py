"""Unit tests for the ``REPRO_FAULTS`` injection registry (``repro.faults``)."""

from __future__ import annotations

import time

import pytest

from repro.faults import (
    FaultError,
    InjectedFault,
    active_plan,
    fire,
    parse_faults,
    reset_plan,
)


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    reset_plan()
    yield
    reset_plan()


# ------------------------------------------------------------------ parsing


def test_parse_single_spec():
    (spec,) = parse_faults("train_crash:member=mlp-base:attempt=0")
    assert spec.point == "train"
    assert spec.action == "crash"
    assert spec.qualifiers == {"member": "mlp-base", "attempt": "0"}
    assert spec.after == 0 and spec.times is None


def test_parse_multiple_specs_with_meta_qualifiers():
    specs = parse_faults("serve_hang:after=2:times=1:seconds=5.5,train_error")
    assert len(specs) == 2
    hang, error = specs
    assert (hang.point, hang.action) == ("serve", "hang")
    assert hang.after == 2 and hang.times == 1 and hang.seconds == 5.5
    assert hang.qualifiers == {}  # after/times/seconds are meta, not context
    assert (error.point, error.action) == ("train", "error")


def test_parse_allows_empty_segments_and_whitespace():
    specs = parse_faults(" train_crash , ,serve_error ")
    assert [(s.point, s.action) for s in specs] == [
        ("train", "crash"),
        ("serve", "error"),
    ]


@pytest.mark.parametrize(
    "bad",
    ["crash", "train-crash", "train_explode", "_crash", "train_crash:member", "train_crash:=x"],
)
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(FaultError):
        parse_faults(bad)


# ----------------------------------------------------------------- matching


def test_matches_filters_on_point_and_context():
    (spec,) = parse_faults("train_error:member=m1:attempt=0")
    assert spec.matches("train", {"member": "m1", "attempt": 0})
    assert not spec.matches("train", {"member": "m1", "attempt": 1})
    assert not spec.matches("train", {"member": "m2", "attempt": 0})
    assert not spec.matches("train", {"attempt": 0})  # missing context key
    assert not spec.matches("serve", {"member": "m1", "attempt": 0})


def test_should_fire_honours_after_and_times():
    (spec,) = parse_faults("train_error:after=1:times=2")
    assert [spec.should_fire() for _ in range(5)] == [False, True, True, False, False]


# -------------------------------------------------------------------- fire


def test_fire_error_action_raises(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "train_error:member=m1")
    with pytest.raises(InjectedFault, match="train_error"):
        fire("train", member="m1", attempt=0)
    # Non-matching contexts are a no-op.
    assert fire("train", member="m2", attempt=0) is None


def test_fire_hang_action_sleeps_then_reports(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "serve_hang:seconds=0.2")
    start = time.monotonic()
    outcome = fire("serve", worker=0)
    assert time.monotonic() - start >= 0.2
    assert outcome is not None and outcome[0] == "hang"


def test_no_faults_is_near_free():
    assert fire("train", member="m1", attempt=0) is None
    assert active_plan() == []


def test_plan_cache_keyed_on_env_value(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "train_error")
    first = active_plan()
    assert len(first) == 1
    # Same value: same (stateful) plan objects.
    assert active_plan() is first
    # Changed value: reparsed immediately, no reset_plan() needed.
    monkeypatch.setenv("REPRO_FAULTS", "train_error:times=1,serve_crash")
    assert len(active_plan()) == 2
    monkeypatch.delenv("REPRO_FAULTS")
    assert active_plan() == []

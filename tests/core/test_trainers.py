"""Integration tests for the ensemble training pipelines.

These train real (tiny) ensembles end-to-end and check the paper's
qualitative claims at miniature scale:

* MotherNets produces members that all start from the MotherNet's function
  and converge in fewer epochs than training from scratch;
* the total training cost of MotherNets is below full-data training;
* the three approaches produce working ensembles under all inference methods.
"""

import numpy as np
import pytest

from repro.arch import mlp_family, small_vgg_ensemble
from repro.core import (
    BaggingTrainer,
    FullDataTrainer,
    MotherNetsTrainer,
    SnapshotEnsembleTrainer,
    summarize_run,
)
from repro.nn import TrainingConfig


@pytest.fixture(scope="module")
def tabular_setup(tiny_tabular_dataset_module=None):
    from repro.data import synthetic_tabular_classification

    dataset = synthetic_tabular_classification(
        train_samples=384, test_samples=192, num_classes=6, num_features=24,
        class_separation=1.6, noise_std=1.2, seed=3,
    )
    specs = mlp_family(
        4, input_features=24, num_classes=6, base_width=20, seed=1
    )
    config = TrainingConfig(
        max_epochs=12, batch_size=64, learning_rate=0.1, momentum=0.9,
        convergence_patience=2, convergence_tolerance=5e-3,
    )
    return dataset, specs, config


@pytest.fixture(scope="module")
def mothernets_run(tabular_setup):
    dataset, specs, config = tabular_setup
    return MotherNetsTrainer(config, tau=0.3).train(specs, dataset, seed=0)


@pytest.fixture(scope="module")
def full_data_run(tabular_setup):
    dataset, specs, config = tabular_setup
    return FullDataTrainer(config).train(specs, dataset, seed=0)


@pytest.fixture(scope="module")
def bagging_run(tabular_setup):
    dataset, specs, config = tabular_setup
    return BaggingTrainer(config).train(specs, dataset, seed=0)


# ---------------------------------------------------------------------------
# MotherNets pipeline
# ---------------------------------------------------------------------------


def test_mothernets_run_structure(mothernets_run, tabular_setup):
    _, specs, _ = tabular_setup
    run = mothernets_run
    assert run.approach == "mothernets"
    assert len(run.ensemble) == len(specs)
    assert run.member_names == [spec.name for spec in specs]
    assert run.clusters is not None and len(run.clusters) >= 1
    assert set(run.mothernet_models) == {c.cluster_id for c in run.clusters}


def test_mothernets_members_are_hatched_and_assigned_to_clusters(mothernets_run):
    for member in mothernets_run.ensemble.members:
        assert member.source == "hatched"
        assert member.cluster_id is not None


def test_mothernets_ledger_contains_both_phases(mothernets_run):
    phases = mothernets_run.ledger.seconds_by_phase()
    assert set(phases) == {"mothernet", "member"}
    assert all(seconds > 0 for seconds in phases.values())


def test_mothernets_members_converge_in_fewer_epochs_than_scratch(mothernets_run, full_data_run):
    """The warm start from hatching lets members converge faster (fewer epochs
    under the shared convergence criterion) than from-scratch training."""
    hatched_epochs = np.mean([r.epochs_run for r in mothernets_run.member_results.values()])
    scratch_epochs = np.mean([r.epochs_run for r in full_data_run.member_results.values()])
    assert hatched_epochs <= scratch_epochs


def test_mothernets_member_phase_cheaper_than_full_data_per_member(mothernets_run, full_data_run):
    mn_member_seconds = mothernets_run.ledger.seconds_by_phase()["member"]
    fd_seconds = full_data_run.total_training_seconds
    assert mn_member_seconds < fd_seconds


def test_mothernets_accuracy_close_to_full_data_and_not_worse_than_bagging(
    mothernets_run, full_data_run, bagging_run, tabular_setup
):
    dataset, _, _ = tabular_setup
    mn = mothernets_run.ensemble.error_rate(dataset.x_test, dataset.y_test, method="average")
    fd = full_data_run.ensemble.error_rate(dataset.x_test, dataset.y_test, method="average")
    bag = bagging_run.ensemble.error_rate(dataset.x_test, dataset.y_test, method="average")
    # Figure 5a shape: MotherNets ~ full-data, and no worse than bagging + margin.
    assert mn <= bag + 5.0
    assert abs(mn - fd) <= 10.0


def test_mothernets_training_time_breakdown_covers_all_networks(mothernets_run, tabular_setup):
    _, specs, _ = tabular_setup
    breakdown = mothernets_run.training_time_breakdown()
    for spec in specs:
        assert spec.name in breakdown
    assert any(name.startswith("mothernet") for name in breakdown)


def test_mothernets_cumulative_series_length_matches_members(mothernets_run, tabular_setup):
    _, specs, _ = tabular_setup
    series = mothernets_run.cumulative_training_seconds()
    assert len(series) == len(specs)
    assert all(b >= a for a, b in zip(series, series[1:]))


def test_summarize_run_fields(mothernets_run):
    summary = summarize_run(mothernets_run)
    assert summary["approach"] == "mothernets"
    assert summary["num_members"] == len(mothernets_run.ensemble)
    assert "num_clusters" in summary and "mothernet_parameters" in summary


def test_mothernets_determinism(tabular_setup):
    dataset, specs, config = tabular_setup
    small_config = TrainingConfig(max_epochs=2, min_epochs=2, batch_size=64, learning_rate=0.05)
    a = MotherNetsTrainer(small_config, tau=0.3).train(specs, dataset, seed=7)
    b = MotherNetsTrainer(small_config, tau=0.3).train(specs, dataset, seed=7)
    ea = a.ensemble.predict_proba(dataset.x_test[:16], method="average")
    eb = b.ensemble.predict_proba(dataset.x_test[:16], method="average")
    np.testing.assert_allclose(ea, eb, atol=1e-12)


def test_mothernets_validates_tau_and_epoch_fraction():
    with pytest.raises(ValueError):
        MotherNetsTrainer(tau=1.5)
    with pytest.raises(ValueError):
        MotherNetsTrainer(member_epoch_fraction=0.0)


def test_member_epoch_fraction_caps_member_budget(tabular_setup):
    dataset, specs, _ = tabular_setup
    config = TrainingConfig(max_epochs=6, min_epochs=1, batch_size=64, learning_rate=0.05,
                            convergence_patience=10)
    run = MotherNetsTrainer(config, tau=0.3, member_epoch_fraction=0.34).train(
        specs, dataset, seed=1
    )
    assert all(result.epochs_run <= 2 for result in run.member_results.values())


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


def test_full_data_run_structure(full_data_run, tabular_setup):
    _, specs, _ = tabular_setup
    assert full_data_run.approach == "full_data"
    assert len(full_data_run.ensemble) == len(specs)
    assert all(member.source == "scratch" for member in full_data_run.ensemble.members)
    assert full_data_run.clusters is None


def test_bagging_members_see_fewer_unique_samples_than_full_data(tabular_setup):
    from repro.data import bootstrap_sample

    dataset, _, _ = tabular_setup
    bag = bootstrap_sample(dataset.x_train, dataset.y_train, seed=0)
    assert bag.size == dataset.train_size
    assert 0.55 < bag.unique_fraction < 0.72


def test_bagging_run_structure(bagging_run, tabular_setup):
    dataset, specs, _ = tabular_setup
    assert bagging_run.approach == "bagging"
    assert len(bagging_run.ensemble) == len(specs)
    error = bagging_run.ensemble.error_rate(dataset.x_test, dataset.y_test)
    assert 0.0 <= error <= 100.0


def test_trainers_reject_duplicate_member_names(tabular_setup):
    dataset, specs, config = tabular_setup
    duplicated = [specs[0], specs[0]]
    with pytest.raises(ValueError, match="unique"):
        FullDataTrainer(config).train(duplicated, dataset, seed=0)


def test_trainers_reject_dataset_mismatch(tabular_setup):
    from repro.data import synthetic_tabular_classification

    _, specs, config = tabular_setup
    wrong = synthetic_tabular_classification(
        train_samples=64, test_samples=32, num_classes=6, num_features=10, seed=0
    )
    with pytest.raises(ValueError, match="input shape"):
        FullDataTrainer(config).train(specs, wrong, seed=0)


def test_snapshot_trainer_produces_requested_snapshots(tabular_setup):
    dataset, specs, _ = tabular_setup
    config = TrainingConfig(max_epochs=2, batch_size=64, learning_rate=0.1)
    run = SnapshotEnsembleTrainer(config, num_snapshots=3, epochs_per_cycle=2).train(
        [specs[0]], dataset, seed=0
    )
    assert len(run.ensemble) == 3
    assert all(member.source == "snapshot" for member in run.ensemble.members)
    # Later snapshots continue training the same weights, so they differ.
    probs = run.ensemble.member_probabilities(dataset.x_test[:8])
    assert not np.allclose(probs[0], probs[-1])


def test_snapshot_trainer_rejects_diverse_architectures(tabular_setup):
    dataset, specs, config = tabular_setup
    with pytest.raises(ValueError, match="monolithic"):
        SnapshotEnsembleTrainer(config).train(specs[:2], dataset, seed=0)


# ---------------------------------------------------------------------------
# Convolutional end-to-end (kept tiny)
# ---------------------------------------------------------------------------


def test_mothernets_on_small_vgg_ensemble(tiny_image_dataset):
    dataset = tiny_image_dataset
    specs = small_vgg_ensemble(
        num_classes=dataset.num_classes, input_shape=dataset.input_shape, width_scale=0.03
    )
    config = TrainingConfig(max_epochs=2, min_epochs=1, batch_size=64, learning_rate=0.05,
                            convergence_patience=1)
    run = MotherNetsTrainer(config, tau=0.5).train(specs, dataset, seed=0)
    assert len(run.ensemble) == 5
    evaluation = run.ensemble.evaluate(dataset.x_test, dataset.y_test, methods=("average", "oracle"))
    assert evaluation["oracle"] <= evaluation["average"]

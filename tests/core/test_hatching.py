"""Unit and integration tests for hatching (§2.2)."""

import numpy as np
import pytest

from repro.arch import (
    count_parameters,
    mlp,
    mlp_family,
    resnet_variant_family,
    small_vgg_ensemble,
    v16_variant_family,
)
from repro.core import (
    HatchingError,
    cluster_ensemble,
    construct_mothernet,
    hatch,
    hatch_ensemble,
    plan_hatching,
    verify_function_preservation,
)
from repro.core.hatching import apply_step
from repro.nn import Model, Trainer, TrainingConfig, default_dtype

TINY = (3, 8, 8)


@pytest.fixture(autouse=True)
def _float64_compute():
    """Hatching's function-preservation guarantee is checked to tight absolute
    tolerances; run these tests at float64 resolution."""
    with default_dtype("float64"):
        yield


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


def test_plan_for_identical_specs_is_empty():
    spec = mlp("m", 16, [8, 8], 4)
    plan = plan_hatching(spec, spec.with_name("copy"))
    assert plan.num_steps == 0
    assert plan.new_parameter_count() == 0


def test_plan_orders_deepen_before_widen_within_a_block():
    parent = small_vgg_ensemble(input_shape=TINY, width_scale=0.1)
    mothernet = construct_mothernet(parent)
    target = parent[4]  # V19: deeper blocks
    plan = plan_hatching(mothernet, target)
    ops = [step.op for step in plan.steps if step.block == 2]
    deepen_positions = [i for i, op in enumerate(ops) if op == "deepen_conv"]
    widen_positions = [i for i, op in enumerate(ops) if op == "widen_conv"]
    if deepen_positions and widen_positions:
        assert max(deepen_positions) < min(widen_positions)


def test_plan_counts_new_parameters():
    parent = mlp("p", 16, [8], 4)
    child = mlp("c", 16, [16, 16], 4)
    plan = plan_hatching(parent, child)
    assert plan.new_parameter_count() == count_parameters(child) - count_parameters(parent)


def test_plan_describe_lists_steps():
    parent = mlp("p", 16, [8], 4)
    child = mlp("c", 16, [16, 16], 4)
    description = plan_hatching(parent, child).describe()
    assert "widen_dense" in description and "deepen_dense" in description


def test_plan_rejects_narrower_appended_tail():
    parent = mlp("p", 16, [32], 4)
    child = mlp("c", 16, [32, 8], 4)  # appended layer narrower than the tail
    with pytest.raises(HatchingError, match="narrower"):
        plan_hatching(parent, child)


def test_plan_rejects_nonuniform_residual_target():
    import dataclasses

    from repro.arch import ConvBlockSpec, ConvLayerSpec

    family = resnet_variant_family(width_scale=0.1, input_shape=TINY)
    parent = construct_mothernet(family[:2])
    target = family[1]
    blocks = list(target.conv_blocks)
    blocks[0] = ConvBlockSpec(
        (blocks[0].layers[0], ConvLayerSpec(3, blocks[0].layers[0].filters + 4)), residual=True
    )
    bad = dataclasses.replace(target, conv_blocks=tuple(blocks))
    with pytest.raises(HatchingError, match="uniform"):
        plan_hatching(parent, bad)


def test_apply_step_rejects_unknown_op():
    from repro.core.hatching import HatchingStep

    model = Model.from_spec(mlp("m", 8, [4], 2), seed=0)
    with pytest.raises(ValueError, match="unknown hatching step"):
        apply_step(model, HatchingStep(op="fold"))


# ---------------------------------------------------------------------------
# Hatching end-to-end: function preservation
# ---------------------------------------------------------------------------


def test_hatch_small_vgg_ensemble_preserves_function():
    members = small_vgg_ensemble(input_shape=TINY, width_scale=0.08)
    mothernet = construct_mothernet(members)
    parent = Model.from_spec(mothernet, seed=0)
    for member in members:
        child = hatch(parent, member, seed=1)
        deviation = verify_function_preservation(parent, child, num_samples=4, atol=1e-8)
        assert deviation < 1e-8
        assert child.spec.name == member.name
        assert child.parameter_count() == count_parameters(member)


def test_hatch_v16_variant_family_preserves_function():
    members = v16_variant_family(6, input_shape=TINY, width_scale=0.08, seed=3)
    mothernet = construct_mothernet(members)
    parent = Model.from_spec(mothernet, seed=1)
    for member in members[1:]:
        child = hatch(parent, member, seed=2)
        verify_function_preservation(parent, child, num_samples=3, atol=1e-8)


def test_hatch_resnet_cluster_preserves_function():
    family = resnet_variant_family(width_scale=0.08, input_shape=TINY)
    clusters = cluster_ensemble(family, tau=0.5)
    cluster = clusters[0]
    parent = Model.from_spec(cluster.mothernet, seed=2)
    for member in cluster.members[:3]:
        child = hatch(parent, member, seed=3)
        verify_function_preservation(parent, child, num_samples=3, atol=1e-7)


def test_hatch_mlp_family_preserves_function():
    members = mlp_family(5, input_features=20, num_classes=4, base_width=12, seed=4)
    mothernet = construct_mothernet(members)
    parent = Model.from_spec(mothernet, seed=3)
    for member in members:
        child = hatch(parent, member, seed=4)
        verify_function_preservation(parent, child, num_samples=8, atol=1e-9)


def test_hatch_after_training_transfers_learnt_function(tiny_tabular_dataset):
    """Hatching a *trained* MotherNet gives children with the MotherNet's
    (non-trivial) accuracy before any further training — the warm start that
    makes members converge in a few epochs."""
    ds = tiny_tabular_dataset
    members = mlp_family(4, input_features=ds.input_shape[0], num_classes=ds.num_classes,
                         base_width=24, seed=5)
    mothernet = construct_mothernet(members)
    parent = Model.from_spec(mothernet, seed=0)
    Trainer(TrainingConfig(max_epochs=15, batch_size=32, learning_rate=0.1, momentum=0.9)).fit(
        parent, ds.x_train, ds.y_train, seed=0
    )
    parent_accuracy = float(np.mean(parent.predict(ds.x_test) == ds.y_test))
    assert parent_accuracy > 0.5
    for member in members:
        child = hatch(parent, member, seed=1)
        child_accuracy = float(np.mean(child.predict(ds.x_test) == ds.y_test))
        assert child_accuracy == pytest.approx(parent_accuracy, abs=1e-12)


def test_hatch_with_noise_is_close_but_not_identical():
    members = small_vgg_ensemble(input_shape=TINY, width_scale=0.08)
    mothernet = construct_mothernet(members)
    parent = Model.from_spec(mothernet, seed=5)
    child = hatch(parent, members[3], seed=6, noise_std=1e-3)
    x = np.random.default_rng(0).normal(size=(4, *TINY))
    deviation = np.max(np.abs(parent.predict_logits(x) - child.predict_logits(x)))
    assert 0 < deviation < 1.0


def test_hatch_is_deterministic_per_seed():
    members = small_vgg_ensemble(input_shape=TINY, width_scale=0.08)
    mothernet = construct_mothernet(members)
    parent = Model.from_spec(mothernet, seed=6)
    x = np.random.default_rng(1).normal(size=(3, *TINY))
    a = hatch(parent, members[2], seed=9).predict_logits(x)
    b = hatch(parent, members[2], seed=9).predict_logits(x)
    np.testing.assert_array_equal(a, b)


def test_hatch_rejects_incompatible_target():
    parent = Model.from_spec(mlp("p", 16, [32], 4), seed=0)
    with pytest.raises(Exception):
        hatch(parent, mlp("c", 16, [8], 4), seed=0)  # narrower than parent


def test_hatch_ensemble_returns_one_model_per_spec():
    members = mlp_family(4, input_features=12, num_classes=3, base_width=8, seed=7)
    mothernet = construct_mothernet(members)
    parent = Model.from_spec(mothernet, seed=7)
    children = hatch_ensemble(parent, members, seed=0)
    assert len(children) == 4
    assert [child.spec.name for child in children] == [member.name for member in members]


def test_verify_function_preservation_raises_on_mismatch():
    a = Model.from_spec(mlp("a", 8, [8], 3), seed=1)
    b = Model.from_spec(mlp("a", 8, [8], 3), seed=2)
    with pytest.raises(AssertionError, match="not preserved"):
        verify_function_preservation(a, b, num_samples=4, atol=1e-6)


def test_every_intermediate_hatching_step_preserves_function():
    """Not just the end-to-end hatch: every prefix of the transformation
    sequence is itself function preserving."""
    members = small_vgg_ensemble(input_shape=TINY, width_scale=0.08)
    mothernet = construct_mothernet(members)
    parent = Model.from_spec(mothernet, seed=8)
    target = members[4]  # V19, the deepest member
    plan = plan_hatching(mothernet, target)
    model = parent
    for index, step in enumerate(plan.steps):
        model = apply_step(model, step, seed=index)
        verify_function_preservation(parent, model, num_samples=2, atol=1e-8)

"""Unit tests for the ensemble container and inference methods (EA, Vote, SL, O)."""

import numpy as np
import pytest

from repro.arch import mlp
from repro.core import Ensemble, EnsembleMember, METHOD_ABBREVIATIONS
from repro.nn import Model


class _ConstantModel:
    """A stub model that always predicts a fixed probability matrix."""

    def __init__(self, probabilities):
        self.probabilities = np.asarray(probabilities, dtype=np.float64)

    def predict_proba(self, x, batch_size=None):
        return np.tile(self.probabilities, (len(x), 1)) if self.probabilities.ndim == 1 else self.probabilities

    def predict(self, x, batch_size=None):
        return self.predict_proba(x).argmax(axis=1)

    def predict_logits(self, x, batch_size=None):
        return np.log(np.clip(self.predict_proba(x), 1e-12, None))

    def parameter_count(self):
        return 0


def _member(name, probabilities):
    return EnsembleMember(name=name, model=_ConstantModel(probabilities))


def _fixed_ensemble():
    """Three members over 4 samples and 3 classes with known behaviour."""
    x = np.zeros((4, 2))
    y = np.array([0, 1, 2, 0])
    m0 = _member("m0", np.array([
        [0.8, 0.1, 0.1],
        [0.2, 0.6, 0.2],
        [0.3, 0.4, 0.3],   # wrong (predicts 1, truth 2)
        [0.7, 0.2, 0.1],
    ]))
    m1 = _member("m1", np.array([
        [0.6, 0.3, 0.1],
        [0.1, 0.8, 0.1],
        [0.1, 0.2, 0.7],
        [0.2, 0.5, 0.3],   # wrong (predicts 1, truth 0)
    ]))
    m2 = _member("m2", np.array([
        [0.1, 0.8, 0.1],   # wrong (predicts 1, truth 0)
        [0.3, 0.5, 0.2],
        [0.2, 0.2, 0.6],
        [0.6, 0.2, 0.2],
    ]))
    return Ensemble([m0, m1, m2], num_classes=3), x, y


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


def test_empty_ensemble_raises():
    with pytest.raises(ValueError):
        Ensemble([], num_classes=3)


def test_invalid_class_count_raises():
    with pytest.raises(ValueError):
        Ensemble([_member("m", np.eye(3))], num_classes=1)


def test_len_and_iteration():
    ensemble, _, _ = _fixed_ensemble()
    assert len(ensemble) == 3
    assert [m.name for m in ensemble] == ["m0", "m1", "m2"]


def test_subset_preserves_member_order():
    ensemble, _, _ = _fixed_ensemble()
    subset = ensemble.subset(2)
    assert [m.name for m in subset.members] == ["m0", "m1"]
    with pytest.raises(ValueError):
        ensemble.subset(0)
    with pytest.raises(ValueError):
        ensemble.subset(4)


def test_add_member_invalidates_super_learner():
    ensemble, x, y = _fixed_ensemble()
    ensemble.fit_super_learner(x, y, iterations=10)
    ensemble.add_member(_member("m3", np.full((4, 3), 1 / 3)))
    with pytest.raises(RuntimeError):
        ensemble.predict_proba(x, method="super_learner")


# ---------------------------------------------------------------------------
# Inference methods
# ---------------------------------------------------------------------------


def test_member_probabilities_shape():
    ensemble, x, _ = _fixed_ensemble()
    assert ensemble.member_probabilities(x).shape == (3, 4, 3)


def test_ensemble_averaging_matches_manual_mean():
    ensemble, x, _ = _fixed_ensemble()
    probs = ensemble.member_probabilities(x)
    np.testing.assert_allclose(ensemble.predict_proba(x, method="average"), probs.mean(axis=0))


def test_averaging_corrects_individual_mistakes():
    ensemble, x, y = _fixed_ensemble()
    predictions = ensemble.predict(x, method="average")
    np.testing.assert_array_equal(predictions, y)
    assert ensemble.error_rate(x, y, method="average") == 0.0


def test_voting_uses_majority():
    ensemble, x, y = _fixed_ensemble()
    # Sample 0: votes are [0, 0, 1] -> majority 0; sample 3: [0, 1, 0] -> 0.
    predictions = ensemble.predict(x, method="vote")
    np.testing.assert_array_equal(predictions, y)


def test_voting_tie_break_is_deterministic():
    m0 = _member("a", np.array([[0.9, 0.1]]))
    m1 = _member("b", np.array([[0.2, 0.8]]))
    ensemble = Ensemble([m0, m1], num_classes=2)
    x = np.zeros((1, 2))
    first = ensemble.predict(x, method="vote")
    for _ in range(3):
        np.testing.assert_array_equal(ensemble.predict(x, method="vote"), first)


def test_unknown_method_raises():
    ensemble, x, _ = _fixed_ensemble()
    with pytest.raises(ValueError, match="unknown inference method"):
        ensemble.predict_proba(x, method="stacking")


def test_unknown_method_raises_eagerly_listing_choices():
    """Method validation must happen before any member inference runs, and
    the error must enumerate the valid choices."""
    ensemble, x, _ = _fixed_ensemble()

    calls = []
    original = ensemble.member_probabilities
    ensemble.member_probabilities = lambda *a, **k: calls.append(1) or original(*a, **k)

    for bad in ("stacking", "AVERAGE", "", None):
        with pytest.raises(ValueError) as excinfo:
            ensemble.predict_proba(x, method=bad)
        message = str(excinfo.value)
        assert "'average'" in message and "'vote'" in message and "'super_learner'" in message
    with pytest.raises(ValueError):
        ensemble.predict(x, method="orakle")
    assert calls == []  # no member was evaluated for any invalid method

    # Unfitted super_learner also fails before member inference.
    with pytest.raises(RuntimeError, match="fit_super_learner"):
        ensemble.predict_proba(x, method="super_learner")
    assert calls == []


def test_super_learner_requires_fitting_first():
    ensemble, x, _ = _fixed_ensemble()
    with pytest.raises(RuntimeError, match="fit_super_learner"):
        ensemble.predict_proba(x, method="super_learner")


def test_super_learner_weights_form_a_distribution():
    ensemble, x, y = _fixed_ensemble()
    weights = ensemble.fit_super_learner(x, y, iterations=100)
    assert weights.shape == (3,)
    assert np.all(weights >= 0)
    assert weights.sum() == pytest.approx(1.0)


def test_super_learner_upweights_the_accurate_member():
    """With one perfect member and one adversarial member, the learned
    combination must put most of the mass on the perfect one."""
    y = np.array([0, 1, 0, 1, 0, 1])
    perfect = np.eye(2)[y]
    adversarial = np.eye(2)[1 - y]
    ensemble = Ensemble([_member("good", perfect), _member("bad", adversarial)], num_classes=2)
    x = np.zeros((6, 2))
    weights = ensemble.fit_super_learner(x, y, iterations=300)
    assert weights[0] > 0.8
    assert ensemble.error_rate(x, y, method="super_learner") == 0.0


def test_oracle_error_zero_if_any_member_is_correct():
    ensemble, x, y = _fixed_ensemble()
    assert ensemble.oracle_error_rate(x, y) == 0.0


def test_oracle_error_counts_jointly_missed_samples():
    y = np.array([0, 1])
    both_wrong_on_second = np.array([[0.9, 0.1], [0.9, 0.1]])
    ensemble = Ensemble(
        [_member("a", both_wrong_on_second), _member("b", both_wrong_on_second)], num_classes=2
    )
    assert ensemble.oracle_error_rate(np.zeros((2, 2)), y) == pytest.approx(50.0)


def test_oracle_never_worse_than_any_single_member():
    ensemble, x, y = _fixed_ensemble()
    member_errors = ensemble.member_error_rates(x, y)
    assert ensemble.oracle_error_rate(x, y) <= min(member_errors.values())


def test_evaluate_returns_requested_methods():
    ensemble, x, y = _fixed_ensemble()
    ensemble.fit_super_learner(x, y, iterations=20)
    results = ensemble.evaluate(x, y)
    assert set(results) == {"average", "vote", "super_learner", "oracle"}


def test_evaluate_skips_unfitted_super_learner():
    ensemble, x, y = _fixed_ensemble()
    results = ensemble.evaluate(x, y)
    assert "super_learner" not in results


def test_method_abbreviations_match_paper():
    assert METHOD_ABBREVIATIONS == {
        "average": "EA",
        "vote": "Vote",
        "super_learner": "SL",
        "oracle": "O",
    }


def test_disagreement_bounds():
    ensemble, x, _ = _fixed_ensemble()
    assert 0.0 <= ensemble.disagreement(x) <= 1.0
    single = Ensemble(ensemble.members[:1], num_classes=3)
    assert single.disagreement(x) == 0.0


def test_identical_members_have_zero_disagreement():
    probs = np.array([[0.9, 0.1], [0.1, 0.9]])
    ensemble = Ensemble([_member("a", probs), _member("b", probs)], num_classes=2)
    assert ensemble.disagreement(np.zeros((2, 2))) == 0.0


# ---------------------------------------------------------------------------
# With real models
# ---------------------------------------------------------------------------


def test_ensemble_of_real_models_end_to_end(tiny_tabular_dataset):
    ds = tiny_tabular_dataset
    members = []
    for i in range(3):
        spec = mlp(f"m{i}", ds.input_shape[0], [12 + 4 * i], ds.num_classes)
        members.append(EnsembleMember(name=spec.name, model=Model.from_spec(spec, seed=i)))
    ensemble = Ensemble(members, num_classes=ds.num_classes)
    probs = ensemble.predict_proba(ds.x_test, method="average")
    assert probs.shape == (ds.test_size, ds.num_classes)
    # float32 member probabilities: rows sum to one up to a few ulps.
    np.testing.assert_allclose(probs.sum(axis=1), np.ones(ds.test_size), atol=1e-6)
    error = ensemble.error_rate(ds.x_test, ds.y_test)
    assert 0.0 <= error <= 100.0

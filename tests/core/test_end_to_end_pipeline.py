"""End-to-end pipeline invariants on a tiny convolutional workload.

These integration tests tie together every stage of the MotherNets pipeline
(construction -> clustering -> MotherNet training -> hatching -> bag
training -> inference -> cost accounting) and check the cross-stage
invariants that the unit tests cannot see in isolation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import ArchitectureSpec, count_parameters
from repro.core import MotherNetsTrainer, FullDataTrainer, construct_mothernet
from repro.data import cifar10_like
from repro.evaluation import incremental_error_curve, oracle_curve
from repro.nn import TrainingConfig
from repro.nn.metrics import error_rate


def _tiny_conv_family(num_classes, input_shape):
    """Four small two-block conv nets with diverse depth/width/filter size."""
    blocks = [
        [["3:4", "3:4"], ["3:6"]],
        [["3:6", "3:4"], ["3:8", "3:8"]],
        [["5:4", "3:6"], ["3:6"]],
        [["3:4", "3:4", "3:8"], ["5:8"]],
    ]
    return [
        ArchitectureSpec.convolutional(
            f"tiny-{i}", input_shape, spec_blocks, num_classes=num_classes
        )
        for i, spec_blocks in enumerate(blocks)
    ]


@pytest.fixture(scope="module")
def pipeline_run(tiny_image_dataset):
    dataset = tiny_image_dataset
    members = _tiny_conv_family(dataset.num_classes, dataset.input_shape)
    config = TrainingConfig(
        max_epochs=3, min_epochs=1, batch_size=64, learning_rate=0.05, momentum=0.9,
        convergence_patience=2,
    )
    trainer = MotherNetsTrainer(config, tau=0.4, member_epoch_fraction=0.67)
    run = trainer.train(members, dataset, seed=0)
    return dataset, members, run


def test_all_members_present_with_target_architectures(pipeline_run):
    dataset, members, run = pipeline_run
    assert [m.name for m in run.ensemble.members] == [s.name for s in members]
    for member, spec in zip(run.ensemble.members, members):
        assert member.model.spec.conv_blocks == spec.conv_blocks
        assert member.model.parameter_count() == count_parameters(spec)


def test_every_member_belongs_to_a_valid_cluster(pipeline_run):
    _, members, run = pipeline_run
    member_names = {m.name for m in run.ensemble.members}
    clustered_names = {m.name for cluster in run.clusters for m in cluster.members}
    assert member_names == clustered_names
    for member in run.ensemble.members:
        cluster = next(c for c in run.clusters if c.cluster_id == member.cluster_id)
        assert member.name in {m.name for m in cluster.members}


def test_mothernet_models_match_cluster_specs(pipeline_run):
    _, _, run = pipeline_run
    for cluster in run.clusters:
        model = run.mothernet_models[cluster.cluster_id]
        assert model.spec.conv_blocks == cluster.mothernet.conv_blocks
        assert model.parameter_count() == count_parameters(cluster.mothernet)


def test_ledger_contains_one_record_per_network(pipeline_run):
    _, members, run = pipeline_run
    member_records = [r for r in run.ledger.records if r.phase == "member"]
    mothernet_records = [r for r in run.ledger.records if r.phase == "mothernet"]
    assert len(member_records) == len(members)
    assert len(mothernet_records) == len(run.clusters)
    assert run.ledger.total_seconds == pytest.approx(
        sum(r.wall_clock_seconds for r in run.ledger.records)
    )


def test_ledger_epochs_match_training_results(pipeline_run):
    _, _, run = pipeline_run
    by_network = {r.network: r for r in run.ledger.records if r.phase == "member"}
    for name, result in run.member_results.items():
        assert by_network[name].epochs == result.epochs_run


def test_cumulative_series_ends_at_total(pipeline_run):
    _, _, run = pipeline_run
    series = run.cumulative_training_seconds()
    assert series[-1] == pytest.approx(run.total_training_seconds)


def test_member_error_not_catastrophically_worse_than_mothernet(pipeline_run):
    """Hatched members, even after bag fine-tuning, should not lose the
    MotherNet's learnt function entirely."""
    dataset, _, run = pipeline_run
    for cluster in run.clusters:
        parent = run.mothernet_models[cluster.cluster_id]
        parent_error = error_rate(parent.predict(dataset.x_test), dataset.y_test)
        for member in run.ensemble.members:
            if member.cluster_id != cluster.cluster_id:
                continue
            member_error = error_rate(member.model.predict(dataset.x_test), dataset.y_test)
            assert member_error <= parent_error + 30.0


def test_error_and_oracle_curves_have_expected_shape(pipeline_run):
    dataset, members, run = pipeline_run
    sizes = list(range(1, len(members) + 1))
    curves = incremental_error_curve(
        run.ensemble, dataset.x_test, dataset.y_test, sizes, methods=("average",)
    )
    oracle = oracle_curve(run.ensemble, dataset.x_test, dataset.y_test, sizes)
    assert len(curves["average"]) == len(sizes)
    assert all(b <= a + 1e-9 for a, b in zip(oracle, oracle[1:]))
    assert oracle[-1] <= min(curves["average"])


def test_mothernets_cheaper_than_full_data_on_same_workload(pipeline_run, tiny_image_dataset):
    dataset, members, run = pipeline_run
    config = TrainingConfig(
        max_epochs=3, min_epochs=3, batch_size=64, learning_rate=0.05, momentum=0.9,
        convergence_patience=5,
    )
    full = FullDataTrainer(config).train(members, dataset, seed=0)
    # The member (fine-tuning) phase must be cheaper than training the same
    # members from scratch — that is where MotherNets saves work; comparing
    # work units (epochs weighted by parameters and samples) keeps the check
    # independent of machine noise.  At this miniature scale (4 members,
    # 3-epoch budget) the shared MotherNet phase is not yet amortised, which
    # is exactly the paper's point about the savings growing with ensemble
    # size (covered by the Figure 6-9 benches).
    member_work = sum(r.work_units for r in run.ledger.records if r.phase == "member")
    assert member_work < full.ledger.total_work_units


def test_mothernet_of_family_is_trained_on_full_data(pipeline_run):
    dataset, _, run = pipeline_run
    for record in run.ledger.records:
        if record.phase == "mothernet":
            assert record.samples_per_epoch == dataset.train_size


def test_members_trained_on_bagged_samples_of_full_size(pipeline_run):
    dataset, _, run = pipeline_run
    for record in run.ledger.records:
        if record.phase == "member":
            assert record.samples_per_epoch == dataset.train_size  # bags keep the original size

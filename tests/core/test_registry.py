"""Unit tests for the string-keyed trainer registry."""

import pytest

from repro.core import (
    BaggingTrainer,
    EnsembleTrainer,
    FullDataTrainer,
    MotherNetsTrainer,
    SnapshotEnsembleTrainer,
    available_trainers,
    create_trainer,
    get_trainer,
    register_trainer,
)
from repro.core.registry import _REGISTRY
from repro.nn import TrainingConfig


def test_builtin_trainers_are_registered():
    assert get_trainer("mothernets") is MotherNetsTrainer
    assert get_trainer("full_data") is FullDataTrainer
    assert get_trainer("bagging") is BaggingTrainer
    assert get_trainer("snapshot") is SnapshotEnsembleTrainer


def test_name_normalisation_accepts_cli_spellings():
    assert get_trainer("full-data") is FullDataTrainer
    assert get_trainer("Full-Data") is FullDataTrainer
    assert get_trainer("MOTHERNETS") is MotherNetsTrainer
    assert get_trainer(" bagging ") is BaggingTrainer


def test_unknown_trainer_lists_registered_names():
    with pytest.raises(KeyError, match="mothernets"):
        get_trainer("boosting")


def test_available_trainers_sorted():
    names = available_trainers()
    assert names == sorted(names)
    assert {"mothernets", "full_data", "bagging", "snapshot"} <= set(names)


def test_create_trainer_forwards_kwargs():
    config = TrainingConfig(max_epochs=2)
    trainer = create_trainer("mothernets", config=config, tau=0.7)
    assert isinstance(trainer, MotherNetsTrainer)
    assert trainer.tau == 0.7
    assert trainer.config is config


def test_create_trainer_rejects_foreign_kwargs():
    with pytest.raises(TypeError):
        create_trainer("full-data", tau=0.5)


def test_register_and_resolve_plugin_trainer():
    @register_trainer("registry-test-plugin", "registry_test_alias")
    class PluginTrainer(EnsembleTrainer):
        approach = "plugin"

    try:
        assert get_trainer("registry-test-plugin") is PluginTrainer
        assert get_trainer("registry_test_plugin") is PluginTrainer
        assert get_trainer("registry-test-alias") is PluginTrainer
    finally:
        _REGISTRY.pop("registry_test_plugin", None)
        _REGISTRY.pop("registry_test_alias", None)


def test_duplicate_registration_is_refused():
    with pytest.raises(ValueError, match="already registered"):

        @register_trainer("mothernets")
        class Impostor(EnsembleTrainer):
            pass


def test_empty_name_is_refused():
    with pytest.raises(ValueError, match="non-empty"):
        register_trainer("  ")

"""Unit tests for the clustering algorithm (Algorithm 1, §2.3)."""

import pytest

from repro.arch import count_parameters, mlp, resnet_variant_family
from repro.core import (
    cluster_ensemble,
    clustering_summary,
    construct_mothernet,
    minimum_cluster_count_bruteforce,
    satisfies_clustering_condition,
)


def _mlp_family_with_sizes(widths_list):
    return [mlp(f"net-{i}", 32, widths, 4) for i, widths in enumerate(widths_list)]


# ---------------------------------------------------------------------------
# Clustering condition
# ---------------------------------------------------------------------------


def test_condition_holds_for_identical_members():
    members = _mlp_family_with_sizes([[16, 16], [16, 16]])
    assert satisfies_clustering_condition(members, tau=1.0)


def test_condition_fails_for_very_different_sizes_at_high_tau():
    members = _mlp_family_with_sizes([[4], [256, 256]])
    assert not satisfies_clustering_condition(members, tau=0.9)
    assert satisfies_clustering_condition(members, tau=0.001)


def test_condition_matches_parameter_fraction_definition():
    members = _mlp_family_with_sizes([[8, 8], [16, 16]])
    mothernet = construct_mothernet(members)
    fraction = count_parameters(mothernet) / max(count_parameters(m) for m in members)
    assert satisfies_clustering_condition(members, tau=fraction - 0.01)
    assert not satisfies_clustering_condition(members, tau=fraction + 0.01)


def test_condition_true_for_empty_cluster():
    assert satisfies_clustering_condition([], tau=0.9)


# ---------------------------------------------------------------------------
# Greedy clustering (Algorithm 1)
# ---------------------------------------------------------------------------


def test_every_member_assigned_to_exactly_one_cluster():
    members = _mlp_family_with_sizes([[8], [8, 8], [64, 64], [64, 64, 64], [512]])
    clusters = cluster_ensemble(members, tau=0.5)
    names = [m.name for cluster in clusters for m in cluster.members]
    assert sorted(names) == sorted(member.name for member in members)


def test_clusters_satisfy_the_condition():
    members = _mlp_family_with_sizes([[8], [12, 8], [64, 48], [80, 64], [400, 300]])
    for tau in (0.25, 0.5, 0.75):
        for cluster in cluster_ensemble(members, tau=tau):
            assert satisfies_clustering_condition(cluster.members, tau)
            assert cluster.min_shared_fraction() >= tau


def test_tau_one_puts_each_distinct_size_alone():
    members = _mlp_family_with_sizes([[8], [16], [32], [64]])
    clusters = cluster_ensemble(members, tau=1.0)
    assert len(clusters) == 4


def test_tau_zero_gives_single_cluster():
    members = _mlp_family_with_sizes([[4], [64, 64], [512, 512]])
    clusters = cluster_ensemble(members, tau=0.0)
    assert len(clusters) == 1


def test_similar_sizes_cluster_together_at_tau_half():
    members = _mlp_family_with_sizes([[32], [33], [34], [512, 512], [520, 512]])
    clusters = cluster_ensemble(members, tau=0.5)
    assert len(clusters) == 2
    sizes = sorted(cluster.size for cluster in clusters)
    assert sizes == [2, 3]


def test_cluster_count_decreases_monotonically_with_tau():
    members = _mlp_family_with_sizes(
        [[8], [12], [24, 16], [48, 32], [96, 64], [192, 128], [384, 256]]
    )
    taus = [0.9, 0.7, 0.5, 0.3, 0.1]
    counts = [len(cluster_ensemble(members, tau=tau)) for tau in taus]
    assert counts == sorted(counts, reverse=True)


def test_greedy_matches_bruteforce_minimum():
    members = _mlp_family_with_sizes([[8], [10], [14, 8], [40, 24], [44, 32], [200, 100]])
    for tau in (0.3, 0.5, 0.7, 0.9):
        greedy = len(cluster_ensemble(members, tau=tau))
        optimal = minimum_cluster_count_bruteforce(members, tau=tau)
        assert greedy == optimal, f"tau={tau}: greedy={greedy}, optimal={optimal}"


def test_members_within_cluster_are_contiguous_in_size_order():
    members = _mlp_family_with_sizes([[8], [16], [64], [70], [75], [300]])
    clusters = cluster_ensemble(members, tau=0.5)
    ordered = sorted(members, key=count_parameters)
    position = {m.name: i for i, m in enumerate(ordered)}
    for cluster in clusters:
        indices = sorted(position[m.name] for m in cluster.members)
        assert indices == list(range(indices[0], indices[-1] + 1))


def test_resnet_family_tau_half_groups_by_depth_scale():
    """The 25-network ResNet ensemble clusters into a handful of size-based
    groups at tau=0.5 (the paper reports three); each cluster's MotherNet must
    cover at least half of every member."""
    family = resnet_variant_family(width_scale=0.25, input_shape=(3, 8, 8))
    clusters = cluster_ensemble(family, tau=0.5)
    assert 2 <= len(clusters) <= 10
    for cluster in clusters:
        assert cluster.min_shared_fraction() >= 0.5


def test_invalid_tau_raises():
    members = _mlp_family_with_sizes([[8], [16]])
    with pytest.raises(ValueError):
        cluster_ensemble(members, tau=1.5)
    with pytest.raises(ValueError):
        cluster_ensemble(members, tau=-0.1)


def test_empty_ensemble_raises():
    with pytest.raises(ValueError):
        cluster_ensemble([], tau=0.5)


def test_clustering_summary_fields():
    members = _mlp_family_with_sizes([[8], [16], [256, 256]])
    summary = clustering_summary(cluster_ensemble(members, tau=0.5))
    assert all(
        {"cluster_id", "size", "members", "mothernet_parameters", "min_shared_fraction"}
        <= set(entry)
        for entry in summary
    )
    assert sum(entry["size"] for entry in summary) == 3

"""Unit tests for the checkpoint journal (``repro.core.checkpoint``)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.arch.zoo import mlp_family
from repro.core.checkpoint import CheckpointedNetwork, RunCheckpoint
from repro.nn.model import Model

FINGERPRINT = {"name": "ckpt-test", "seed": 0}


def _network(name="m0", seed=3, cluster_id=None, aliased=False):
    spec = mlp_family(count=1, input_features=6, num_classes=3, base_width=8, seed=1)[0]
    model = Model.from_spec(spec, seed=seed)
    return CheckpointedNetwork(
        name=name,
        model=model,
        result=None,
        seconds=1.25,
        parameters=model.parameter_count(),
        samples_per_epoch=64,
        compute_phases={"forward": 0.5},
        cluster_id=cluster_id,
        aliased_mothernet=aliased,
    )


def _assert_same_weights(a: Model, b: Model) -> None:
    wa, wb = a.get_weights(), b.get_weights()
    assert wa.keys() == wb.keys()
    for layer in wa:
        for key in wa[layer]:
            np.testing.assert_array_equal(wa[layer][key], wb[layer][key])


def test_fresh_open_writes_fingerprint(tmp_path):
    checkpoint = RunCheckpoint.open(tmp_path, FINGERPRINT)
    state = json.loads((checkpoint.root / "checkpoint.json").read_text())
    assert state["fingerprint"] == FINGERPRINT
    assert checkpoint.members == {} and checkpoint.mothernets == {}


def test_existing_journal_refused_without_resume(tmp_path):
    RunCheckpoint.open(tmp_path, FINGERPRINT)
    with pytest.raises(FileExistsError, match="--resume"):
        RunCheckpoint.open(tmp_path, FINGERPRINT)


def test_fingerprint_mismatch_refused(tmp_path):
    RunCheckpoint.open(tmp_path, FINGERPRINT)
    with pytest.raises(ValueError, match="different experiment"):
        RunCheckpoint.open(tmp_path, {"name": "other", "seed": 1}, resume=True)


def test_resume_without_journal_starts_fresh(tmp_path):
    checkpoint = RunCheckpoint.open(tmp_path, FINGERPRINT, resume=True)
    assert checkpoint.members == {}
    assert (checkpoint.root / "checkpoint.json").is_file()


def test_record_and_reload_roundtrips_bitwise(tmp_path):
    checkpoint = RunCheckpoint.open(tmp_path, FINGERPRINT)
    member = _network("member-a", seed=7, cluster_id=2, aliased=True)
    mothernet = _network("hub", seed=9)
    checkpoint.record_member(1, member)
    checkpoint.record_mothernet(0, mothernet)

    reopened = RunCheckpoint.open(tmp_path, FINGERPRINT, resume=True)
    restored = reopened.member(1)
    assert restored is not None and reopened.member(0) is None
    assert restored.name == "member-a"
    assert restored.cluster_id == 2 and restored.aliased_mothernet
    assert restored.seconds == member.seconds
    assert restored.samples_per_epoch == 64
    assert restored.compute_phases == {"forward": 0.5}
    _assert_same_weights(member.model, restored.model)
    _assert_same_weights(mothernet.model, reopened.mothernet(0).model)


def test_marker_is_the_commit_point(tmp_path):
    """Weights without a done marker (the kill-between-writes window) are
    invisible; a marker without readable weights is skipped, not fatal."""
    checkpoint = RunCheckpoint.open(tmp_path, FINGERPRINT)
    checkpoint.record_member(0, _network("done"))
    checkpoint.record_member(1, _network("torn"))
    member_dir = checkpoint.root / "members"
    # Simulate the torn window: marker removed -> not done.
    (member_dir / "001-torn.json").unlink()
    reopened = RunCheckpoint.open(tmp_path, FINGERPRINT, resume=True)
    assert sorted(reopened.members) == [0]
    # Corrupt weights under a marker -> entry ignored with a warning.
    (member_dir / "000-done.npz").write_bytes(b"not an npz")
    reopened = RunCheckpoint.open(tmp_path, FINGERPRINT, resume=True)
    assert reopened.members == {}


def test_mark_restored_counts_and_discard_removes(tmp_path):
    checkpoint = RunCheckpoint.open(tmp_path, FINGERPRINT)
    checkpoint.record_member(0, _network())
    checkpoint.mark_restored("member", "m0")
    assert checkpoint.restored == 1
    checkpoint.discard()
    assert not checkpoint.root.exists()
    # discard is idempotent
    checkpoint.discard()
